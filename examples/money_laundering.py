"""Financial-network scenario (paper Fig. 1(e)).

Look for individuals who performed a pattern of direct and indirect money
transfers between legal and flagged accounts that can suggest layering: an
individual owns a legal account that transfers directly to some account,
which transfers (possibly through a chain of intermediaries) into a flagged
account, which eventually routes money back to an account owned by the same
individual.

The chain hops are reachability edges — the signature use case for hybrid
patterns, since the number of intermediate hops is unknown.

Run with::

    python examples/money_laundering.py
"""

from __future__ import annotations

import random

from repro import Budget, GraphBuilder, GraphMatcher, PatternQuery, TMMatcher


def build_transfer_graph(num_people: int = 60, accounts_per_person: int = 3, seed: int = 11):
    """Synthetic accounts-and-transfers graph with a few flagged accounts."""
    rng = random.Random(seed)
    builder = GraphBuilder()
    accounts = []
    for person_index in range(num_people):
        person_key = ("person", person_index)
        builder.add_node(person_key, "Person")
        for account_index in range(accounts_per_person):
            flagged = rng.random() < 0.15
            account_key = ("account", person_index, account_index)
            builder.add_node(account_key, "Flagged" if flagged else "Account")
            builder.add_edge(person_key, account_key)  # person owns account
            accounts.append(account_key)

    # Random transfers between accounts (directed, possibly chains).
    for _ in range(len(accounts) * 4):
        source, target = rng.sample(accounts, 2)
        builder.add_edge(source, target)

    return builder.build(name="transfers"), builder.id_mapping()


def build_query() -> PatternQuery:
    """Person owns two accounts; money flows out of one, through a flagged
    account, and back into the other, with unbounded-length hops."""
    return PatternQuery(
        labels=["Person", "Account", "Flagged", "Account"],
        edges=[
            (0, 1, "child"),       # person owns the source account
            (0, 3, "child"),       # person owns the destination account
            (1, 2, "descendant"),  # source account routes (indirectly) to a flagged account
            (2, 3, "descendant"),  # the flagged account routes (indirectly) back
        ],
        name="layering-pattern",
    )


def main() -> None:
    graph, ids = build_transfer_graph()
    names = {node_id: key for key, node_id in ids.items()}
    query = build_query()
    budget = Budget(max_matches=200)

    matcher = GraphMatcher(graph)
    gm_report = matcher.match(query, budget=budget)
    tm_report = TMMatcher(graph).match(query, budget=budget)

    # EXPLAIN ANALYZE: the plan GM ran, with estimate-vs-actual columns.
    plan = matcher.explain(query, analyze=True, budget=budget)
    print(plan.render())
    print()

    print(f"data graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"GM found {gm_report.num_matches} suspicious patterns "
          f"in {gm_report.total_seconds * 1000:.2f} ms "
          f"(RIG size {gm_report.extra.get('rig_size', '?')})")
    print(f"TM found {tm_report.num_matches} suspicious patterns "
          f"in {tm_report.total_seconds * 1000:.2f} ms "
          f"(tree solutions examined: {tm_report.extra.get('tree_solutions', '?')})")

    flagged_people = sorted({names[occ[0]][1] for occ in gm_report.occurrences})
    print(f"people involved in at least one layering pattern: {flagged_people[:15]}")

    if gm_report.status.is_solved() and tm_report.status.is_solved() \
            and gm_report.status.value == "ok" and tm_report.status.value == "ok":
        assert gm_report.occurrence_set() == tm_report.occurrence_set(), "GM and TM must agree"


if __name__ == "__main__":
    main()
