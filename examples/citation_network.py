"""Citation-network scenario (paper Fig. 1(a)).

Find authors who, in a given year, have a VLDB paper that directly or
indirectly cites an ICDE paper of the same year by the same author.  The
"cites" relationship between the two papers is a reachability edge (a paper
may cite through a chain of intermediate papers); the authorship and venue
relationships are direct edges.

Run with::

    python examples/citation_network.py
"""

from __future__ import annotations

import random

from repro import Budget, GraphBuilder, GraphMatcher, JMMatcher, PatternQuery


def build_citation_graph(num_authors: int = 120, papers_per_author: int = 4, seed: int = 7):
    """A synthetic citation network: authors, papers, venues and citations."""
    rng = random.Random(seed)
    builder = GraphBuilder()
    venues = ["VLDB", "ICDE"]
    for venue in venues:
        builder.add_node(("venue", venue), venue)

    papers = []
    for author_index in range(num_authors):
        author_key = ("author", author_index)
        builder.add_node(author_key, "Author")
        for paper_index in range(papers_per_author):
            paper_key = ("paper", author_index, paper_index)
            builder.add_node(paper_key, "Paper")
            builder.add_edge(author_key, paper_key)                     # author wrote paper
            builder.add_edge(paper_key, ("venue", rng.choice(venues)))  # paper appeared at venue
            papers.append(paper_key)

    # Citations: papers cite a few earlier papers, forming citation chains.
    for index, paper in enumerate(papers):
        for _ in range(rng.randint(1, 3)):
            if index == 0:
                break
            cited = papers[rng.randrange(index)]
            if cited != paper:
                builder.add_edge(paper, cited)

    return builder.build(name="citations"), builder.id_mapping()


def build_query() -> PatternQuery:
    """Author -> VLDB paper =cites=> ICDE paper <- same author."""
    return PatternQuery(
        labels=["Author", "Paper", "Paper", "VLDB", "ICDE"],
        edges=[
            (0, 1, "child"),       # author wrote the citing paper
            (0, 2, "child"),       # the same author wrote the cited paper
            (1, 3, "child"),       # citing paper appeared at VLDB
            (2, 4, "child"),       # cited paper appeared at ICDE
            (1, 2, "descendant"),  # citing paper (transitively) cites the other
        ],
        name="self-citation-across-venues",
    )


def main() -> None:
    graph, ids = build_citation_graph()
    names = {node_id: key for key, node_id in ids.items()}
    query = build_query()
    budget = Budget(max_matches=50)

    gm_report = GraphMatcher(graph).match(query, budget=budget)
    jm_report = JMMatcher(graph).match(query, budget=budget)

    print(f"data graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"GM: {gm_report.num_matches} occurrences in {gm_report.total_seconds * 1000:.2f} ms")
    print(f"JM: {jm_report.num_matches} occurrences in {jm_report.total_seconds * 1000:.2f} ms")

    for occurrence in gm_report.occurrences[:10]:
        author, citing, cited, _, _ = occurrence
        print(f"  author {names[author][1]:>3}: paper {names[citing][1:]} "
              f"transitively cites paper {names[cited][1:]}")
    if gm_report.num_matches > 10:
        print(f"  ... and {gm_report.num_matches - 10} more")

    assert gm_report.occurrence_set() == jm_report.occurrence_set(), "GM and JM must agree"


if __name__ == "__main__":
    main()
