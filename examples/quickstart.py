"""Quickstart: one `GraphDB`, the whole stack.

:class:`repro.GraphDB` is the unified entry point: ingest a graph, run
hybrid pattern queries (direct ``->`` and reachability ``=>`` edges),
stream results as they are found, fold updates into new versions, and read
the serving statistics — all through one object.  Underneath it composes
the layers the library grew PR by PR (cached-index sessions, dynamic
deltas, the MVCC store, the concurrent query service), and each of those
remains available on its own — see ``docs/architecture.md`` for the layer
diagram and the migration table from the older entry points.

Run with::

    python examples/quickstart.py
"""

from repro import GraphDB


def main() -> None:
    # 1. Open an empty database and ingest a small graph: people, the
    #    projects they lead, and the tasks those projects (transitively)
    #    contain.  New nodes get the next dense ids, so the edge list may
    #    reference nodes created in the same call.
    db = GraphDB.open()
    names = ["ana", "bob", "atlas", "hermes", "design", "review", "deploy"]
    ids = {name: index for index, name in enumerate(names)}
    db.ingest(
        labels=["Person", "Person", "Project", "Project", "Task", "Task", "Task"],
        edges=[
            (ids["ana"], ids["atlas"]),      # ana leads atlas
            (ids["bob"], ids["hermes"]),     # bob leads hermes
            (ids["atlas"], ids["design"]),   # atlas contains design
            (ids["design"], ids["review"]),  # design is followed by review
            (ids["hermes"], ids["deploy"]),  # hermes contains deploy
        ],
    )

    # 2. A hybrid pattern, written in the query DSL: a person leading a
    #    project (direct edge ->) that directly or indirectly contains a
    #    task (reachability edge =>).
    pattern = """
    node p Person
    node proj Project
    node t Task
    edge p -> proj
    edge proj => t
    """

    # 3. Evaluate to completion.  The GM pipeline (double simulation +
    #    runtime index graph + MJoin) runs on a pinned snapshot through the
    #    service's worker pool.
    report = db.query(pattern, name="person-project-task")
    print(f"query '{report.query_name}': {report.num_matches} occurrences "
          f"({report.total_seconds * 1000:.2f} ms, status={report.status.value})")
    for person, project, task in sorted(report.occurrences):
        print(f"  {names[person]:>4} -> {names[project]:<6} => {names[task]}")
    # The reachability edge is what finds (ana, atlas, review): the task is
    # two hops away from the project.  A child-only pattern would miss it.

    # 4. Stream instead of waiting: pages are fed from the worker as the
    #    matcher produces them, so the first page is consumable *before*
    #    the query finishes — on large graphs this is the difference
    #    between milliseconds and minutes to the first result.
    with db.stream(pattern, page_size=2) as stream:
        for page_number, page in enumerate(stream.pages(timeout=30.0)):
            print(f"  streamed page {page_number}: {len(page)} occurrence(s)")
    # Need only a count?  db.count() drains the same iterator without ever
    # materialising the occurrence list.
    print(f"count via counting drain: {db.count(pattern)}")

    # 5. The graph evolves: a new task lands under atlas, and ana picks up
    #    hermes too.  ingest()/apply() fold the edits into a *new version*
    #    behind any running readers (MVCC: a pinned stream keeps answering
    #    from the version it started on).
    launch = db.num_nodes  # id the new node will receive
    names.append("launch")
    db.ingest(
        labels=["Task"],
        edges=[(ids["review"], launch),        # review is followed by launch
               (ids["ana"], ids["hermes"])],   # ana now co-leads hermes
    )
    requery = db.query(pattern, name="person-project-task")
    print(f"\nafter update (version {db.head_version}): "
          f"{requery.num_matches} occurrences")
    for person, project, task in sorted(requery.occurrences):
        print(f"  {names[person]:>4} -> {names[project]:<6} => {names[task]}")
    # The cached indexes were *patched* in place (not rebuilt) where the
    # delta shape allowed — that is the dynamic subsystem's whole point.

    # 6. Prepared deltas give finer control than ingest(): batch several
    #    edits, then fold them in one version bump (or apply_async to queue
    #    them on the background writer).
    delta = db.delta()
    delta.add_edge(ids["bob"], ids["atlas"])   # bob joins atlas
    db.apply(delta)

    # 7. Serving statistics: service counters (throughput, latency
    #    percentiles, shed counts) merged with the store gauges (head
    #    version, pinned epochs, GC activity).
    stats = db.stats()
    print(f"\nstats: {stats['completed']} queries, "
          f"p95 {stats['latency_p95_seconds'] * 1000:.2f}ms, "
          f"{stats['shed_count']} shed, head v{stats['head_version']}, "
          f"{stats['versions_retained']} version(s) retained")

    # 8. Analytics without materialisation: histogram() drains the same
    #    streaming iterator as count(), tallying the distinct data nodes
    #    of each label that participate in at least one match.
    print(f"participating nodes per label: {db.histogram(pattern)}")

    # 9. EXPLAIN ANALYZE: what plan ran, and what each operator actually
    #    did.  Plan-only explain (analyze=False) never enumerates; with
    #    analyze=True the query executes with live per-operator counters,
    #    and the root row count reconciles exactly with db.query()'s
    #    occurrence count.  The same call exists on the remote client.
    plan = db.explain(pattern, analyze=True)
    print(f"\n{plan.render()}")

    # 10. Serve the database over the network.  A GraphServer fronts a
    #    multi-tenant catalog of named GraphDBs (attach this one, or let
    #    clients create their own); the synchronous GraphClient mirrors
    #    the GraphDB API, so the calls below are the ones used above —
    #    over a length-prefixed JSON frame protocol on a socket.
    from repro import GraphClient, GraphServer
    from repro.server import GraphCatalog

    catalog = GraphCatalog()
    catalog.attach("quickstart", db)
    with GraphServer(catalog) as server:
        host, port = server.address
        with GraphClient(host, port, graph="quickstart") as remote:
            print(f"\nserving on {host}:{port}: "
                  f"{[g['name'] for g in remote.graphs()]}")
            print(f"remote query: {remote.query(pattern).num_matches} occurrences "
                  f"(count {remote.count(pattern)}, "
                  f"histogram {remote.histogram(pattern)})")
            # Remote streaming stays pipelined: pages cross the socket as
            # the server-side worker produces them, under credit-based
            # flow control, and the first page arrives before the query
            # finishes.  Closing early cancels the remote producer.
            with remote.stream(pattern, page_size=2) as stream:
                pages = [len(page) for page in stream.pages(timeout=30.0)]
            print(f"remote stream: {len(pages)} page(s) of sizes {pages}")
            # A second tenant is fully isolated: own store, own workers.
            remote.create_graph("scratch", labels=["X", "Y"], edges=[(0, 1)])
            xy = "node x X\nnode y Y\nedge x -> y"
            print(f"tenant 'scratch': {remote.count(xy)} match(es)")
            # Telemetry is on by default: every layer mirrors its counters
            # into one per-tenant metrics registry, snapshotable over the
            # wire (or as Prometheus text via format="prometheus").  A
            # trace_id on any query forces an end-to-end span tree.
            metrics = remote.server_metrics(graph="quickstart")
            interesting = [
                "service_completed_total", "session_cache_hits_total",
                "store_applies_total", "server_requests_total",
            ]
            print("server metrics (quickstart tenant):")
            for family in interesting:
                values = metrics[family]["values"]
                total = sum(value["value"] for value in values)
                print(f"  {family} = {total:g}")
            traced = remote.query(pattern, trace_id="quickstart-trace")
            spans = ", ".join(
                f"{span['name']} {span['seconds'] * 1000:.2f}ms"
                for span in traced.extra["trace"]["spans"]
            )
            print(f"traced remote query: {spans}")
    catalog.close()

    db.close()

    # 11. Durability: a server opened with data_dir journals every fold to
    #     a per-tenant write-ahead log (fsync'd *before* the fold is
    #     acknowledged) and snapshots on checkpoint().  Kill the process —
    #     even between journal and publish — and a restarted server over
    #     the same data_dir recovers every tenant to the exact head
    #     version that was last acknowledged.
    import shutil
    import tempfile

    data_dir = tempfile.mkdtemp(prefix="quickstart-wal-")
    pattern_versions = {}
    with GraphServer(data_dir=data_dir) as server:
        with GraphClient(*server.address) as remote:
            remote.create_graph(
                "durable",
                labels=["Person", "Person", "Project", "Task"],
                edges=[(0, 2), (1, 2), (2, 3)],
            )
            remote.ingest(labels=["Task"], edges=[(3, 4)])   # journaled fold
            remote.checkpoint()                              # snapshot + truncate
            remote.ingest(labels=["Task"], edges=[(4, 5)])   # in the log tail
            pt = "node p Person\nnode proj Project\nnode t Task\nedge p -> proj\nedge proj => t"
            pattern_versions["before"] = (
                remote.info()["head_version"], remote.count(pt)
            )
    # the server is gone (imagine SIGKILL here — tests/test_wal.py does
    # exactly that); restart over the same directory:
    with GraphServer(data_dir=data_dir) as server:
        with GraphClient(*server.address, graph="durable") as remote:
            pt = "node p Person\nnode proj Project\nnode t Task\nedge p -> proj\nedge proj => t"
            version, matches = pattern_versions["before"]
            assert remote.info()["head_version"] == version
            assert remote.count(pt) == matches
            recovery = remote.stats()["durability"]["recovery"]
            print(f"\nrestarted from {data_dir}: tenant 'durable' back at "
                  f"v{remote.info()['head_version']} "
                  f"(checkpoint v{recovery['checkpoint_version']} + "
                  f"{recovery['entries_applied']} replayed journal entries), "
                  f"{matches} match(es) as before the restart")
    shutil.rmtree(data_dir)

    # 12. Replication: one writer, N read replicas.  A ReplicaServer
    #     bootstraps each tenant from the primary's latest checkpoint and
    #     then tails the delta WAL live, serving the whole read surface at
    #     its replicated version; a RoutedClient splits the facade — writes
    #     go to the primary, reads fan out round-robin across the replicas
    #     under read-your-writes (reads wait for a replica at or above this
    #     client's own last acknowledged write, falling back to the primary
    #     only when none qualifies).
    from repro import ReplicaServer, RoutedClient

    primary_dir = tempfile.mkdtemp(prefix="quickstart-primary-")
    with GraphServer(data_dir=primary_dir) as primary:
        host, port = primary.address
        with GraphClient(host, port) as writer:
            writer.create_graph(
                "routed",
                labels=["Person", "Person", "Project", "Task"],
                edges=[(0, 2), (1, 2), (2, 3)],
            )
        with ReplicaServer(host, port) as replica_a, \
                ReplicaServer(host, port) as replica_b:
            endpoints = [replica_a.address, replica_b.address]
            with RoutedClient((host, port), replicas=endpoints,
                              graph="routed") as routed:
                pt = ("node p Person\nnode proj Project\nnode t Task\n"
                      "edge p -> proj\nedge proj => t")
                routed.ingest(labels=["Task"], edges=[(3, 4)])  # -> primary
                # Read-your-writes: the count below is served by a replica
                # only once it has tailed the v1 journal frame.
                print(f"\nrouted count (>= own write): {routed.count(pt)}")
                print(f"routed query: {routed.query(pt).num_matches} occurrences")
                for status in routed.replica_status():
                    print(f"  {status['target']}: head v{status['head_version']}, "
                          f"lag {status['lag_versions']} version(s)")
                reads = routed.local_metrics()["routed_reads_total"]["values"]
                spread = {v["labels"]["target"]: int(v["value"]) for v in reads}
                print(f"reads by target: {spread}")
    shutil.rmtree(primary_dir)

    # 13. Cluster observability: one write, one trace, every node — and a
    #     federated metrics/health surface over the whole fleet.  The same
    #     primary + 2 replicas topology; trace=True makes the router record
    #     the trace's root span, the primary hang ingest/fold/publish/ship
    #     under it, and each replica join with a replica_apply span, all
    #     stitched back by assemble_trace.  ClusterMonitor scrapes health +
    #     per-tenant metrics from all three nodes into one document (the
    #     `python -m repro.obs.console` dashboard renders it live).
    import time as _time

    from repro.obs import ClusterMonitor, assemble_trace
    from repro.obs.console import render_dashboard

    with GraphServer(node="primary") as primary:
        host, port = primary.address
        with GraphClient(host, port) as writer:
            writer.create_graph(
                "fleet",
                labels=["Person", "Project", "Task"],
                edges=[(0, 1), (1, 2)],
            )
        with ReplicaServer(host, port, node="replica-a") as replica_a, \
                ReplicaServer(host, port, node="replica-b") as replica_b:
            endpoints = [replica_a.address, replica_b.address]
            with RoutedClient((host, port), replicas=endpoints,
                              graph="fleet") as routed:
                report = routed.ingest(labels=["Task"], edges=[(1, 3)],
                                       trace=True)
                deadline = _time.monotonic() + 30.0
                while _time.monotonic() < deadline and not all(
                    s.get("head_version") == report.new_version
                    for s in routed.replica_status() if s.get("reachable")
                ):
                    _time.sleep(0.05)
                _time.sleep(0.2)  # let the replicas record their spans
                tree = assemble_trace(routed.trace_spans(),
                                      trace_id=routed.last_trace_id)

                def show(node, depth=0):
                    span = node["span"]
                    print(f"  {'  ' * depth}{span['name']:<14} "
                          f"[{span['node']}] {span['seconds'] * 1000:.2f}ms")
                    for child in node["children"]:
                        show(child, depth + 1)

                print(f"\none traced write, trace {tree['trace_id']}:")
                show(tree["root"])

                for entry in routed.health():
                    print(f"health {entry['target']}: {entry['status']}")

                with ClusterMonitor([(host, port), *endpoints],
                                    interval=2.0) as monitor:
                    document = monitor.scrape_once()
                    print("\nops console frame:")
                    print(render_dashboard(
                        document, events=monitor.events(limit=4)))
                    lag_lines = [
                        line for line in monitor.to_prometheus().splitlines()
                        if line.startswith("replication_lag_versions{")
                    ]
                    print("\nfederated lag gauges:")
                    for line in lag_lines:
                        print(f"  {line}")


if __name__ == "__main__":
    main()
