"""Quickstart: build a small graph, write a hybrid pattern, run GM.

Four ways to work with queries:

* one-off: construct a :class:`GraphMatcher` and call ``match`` — simplest,
  but every matcher construction rebuilds the per-graph indexes;
* many queries on one graph: open a :class:`QuerySession` — the reachability
  index, label lists and per-query RIGs are built once, cached, and shared
  by every subsequent query, and ``run_batch`` executes whole workloads
  (optionally on a thread pool) returning latency/throughput statistics;
* an evolving graph: batch edits into a :class:`GraphDelta` and push it
  through ``session.apply`` — the cached indexes are patched in place (not
  rebuilt) and the very next query sees the new data;
* concurrent readers *and* writers: put the graph behind a
  :class:`QueryService` — every batch pins an MVCC snapshot in the
  underlying :class:`VersionedGraphStore`, so reads stay consistent while
  updates publish new versions behind them.

See ``docs/architecture.md`` for how these layers stack (graph → indexes →
session → store → service) and the epoch/pinning lifecycle.

Run with::

    python examples/quickstart.py
"""

from repro import (
    GraphBuilder,
    GraphDelta,
    GraphMatcher,
    QueryService,
    QuerySession,
    ServiceConfig,
    parse_query,
)


def main() -> None:
    # 1. Build a small data graph: people, the projects they lead, and the
    #    tasks those projects (transitively) contain.
    builder = GraphBuilder()
    builder.add_node("ana", "Person")
    builder.add_node("bob", "Person")
    builder.add_node("atlas", "Project")
    builder.add_node("hermes", "Project")
    builder.add_node("design", "Task")
    builder.add_node("review", "Task")
    builder.add_node("deploy", "Task")

    builder.add_edge("ana", "atlas")        # ana leads atlas
    builder.add_edge("bob", "hermes")       # bob leads hermes
    builder.add_edge("atlas", "design")     # atlas contains design
    builder.add_edge("design", "review")    # design is followed by review
    builder.add_edge("hermes", "deploy")    # hermes contains deploy
    graph = builder.build(name="quickstart")
    ids = builder.id_mapping()
    names = {node_id: key for key, node_id in ids.items()}

    # 2. A hybrid pattern: a person leading a project (direct edge ->) that
    #    directly or indirectly contains a task (reachability edge =>).
    query = parse_query(
        """
        node p Person
        node proj Project
        node t Task
        edge p -> proj
        edge proj => t
        """,
        name="person-project-task",
    )

    # 3. Evaluate with GM (double simulation + runtime index graph + MJoin).
    matcher = GraphMatcher(graph)
    report = matcher.match(query)

    print(f"query '{query.name}': {report.num_matches} occurrences "
          f"({report.total_seconds * 1000:.2f} ms, status={report.status.value})")
    for person, project, task in sorted(report.occurrences):
        print(f"  {names[person]:>4} -> {names[project]:<6} => {names[task]}")

    # The reachability edge is what finds (ana, atlas, review): the task is
    # two hops away from the project.  A child-only pattern would miss it.

    # 4. Serving many queries on the same graph?  Open a QuerySession: the
    #    per-graph indexes are built once on the first query and reused by
    #    every later one (the cache counters prove it), and run_batch gives
    #    aggregate latency / throughput statistics for a whole workload.
    session = QuerySession(graph)
    session.query(query)  # warm-up: builds the indexes and this query's RIG
    workload = {
        "person-project-task": query,  # identical query: served from the RIG cache
        "person-any-task": parse_query(
            """
            node p Person
            node t Task
            edge p => t
            """,
            name="person-any-task",
        ),
        "repeat": query,  # cache-served too
    }
    batch = session.run_batch(workload, workers=2)
    print()
    print(batch.summary())
    print(f"cache counters after the batch: {session.stats}")

    # 5. The graph evolves: a new task lands under atlas, and ana picks up
    #    hermes too.  Batch the edits into a GraphDelta and apply it to the
    #    running session — the reachability index and friends are *patched*
    #    (see report.patched), not rebuilt, and the next query answers
    #    against the new state immediately.
    delta = GraphDelta.for_graph(session.graph)
    launch = delta.add_node("Task")
    names[launch] = "launch"
    delta.add_edge(ids["review"], launch)   # review is followed by launch
    delta.add_edge(ids["ana"], ids["hermes"])  # ana now co-leads hermes
    report = session.apply(delta)
    print()
    print(f"applied update: {report.summary()}")

    requery = session.query(query)
    print(f"re-query after update: {requery.num_matches} occurrences "
          f"(graph version {session.version})")
    for person, project, task in sorted(requery.occurrences):
        print(f"  {names[person]:>4} -> {names[project]:<6} => {names[task]}")
    # The new (ana, atlas, launch), (ana, hermes, deploy) rows appear without
    # any index rebuild — that is the dynamic subsystem's whole point.

    # 6. Serving readers *while* the graph changes?  Put the session behind
    #    a QueryService: batches pin an MVCC snapshot of the store, so a
    #    batch started before an update answers its whole workload from the
    #    pre-update version — no torn reads, no locking readers out.
    with QueryService(session.graph, config=ServiceConfig(workers=2)) as service:
        snapshot = service.store.pin()           # e.g. a long-running batch
        delta = GraphDelta.for_graph(service.store.graph)
        delta.add_edge(ids["bob"], ids["atlas"])  # bob joins atlas...
        service.apply(delta)                      # ...published as a new version
        stale_free = service.run_batch(workload)  # new batches see the update
        pinned = snapshot.run_batch(workload)     # the pinned one does not
        pinned_version = snapshot.version
        snapshot.release()
        print()
        print(f"service: pinned batch answered at v{pinned_version}, "
              f"fresh batch at v{stale_free.version} "
              f"(bob->atlas visible: "
              f"{stale_free.total_matches > pinned.total_matches})")
        stats = service.stats_snapshot()
        print(f"service stats: {stats['completed']} queries, "
              f"p95 {stats['latency_p95_seconds'] * 1000:.2f}ms, "
              f"{stats['shed_count']} shed, head v{stats['head_version']}")


if __name__ == "__main__":
    main()
