"""Quickstart: build a small graph, write a hybrid pattern, run GM.

Run with::

    python examples/quickstart.py
"""

from repro import GraphBuilder, GraphMatcher, parse_query


def main() -> None:
    # 1. Build a small data graph: people, the projects they lead, and the
    #    tasks those projects (transitively) contain.
    builder = GraphBuilder()
    builder.add_node("ana", "Person")
    builder.add_node("bob", "Person")
    builder.add_node("atlas", "Project")
    builder.add_node("hermes", "Project")
    builder.add_node("design", "Task")
    builder.add_node("review", "Task")
    builder.add_node("deploy", "Task")

    builder.add_edge("ana", "atlas")        # ana leads atlas
    builder.add_edge("bob", "hermes")       # bob leads hermes
    builder.add_edge("atlas", "design")     # atlas contains design
    builder.add_edge("design", "review")    # design is followed by review
    builder.add_edge("hermes", "deploy")    # hermes contains deploy
    graph = builder.build(name="quickstart")
    ids = builder.id_mapping()
    names = {node_id: key for key, node_id in ids.items()}

    # 2. A hybrid pattern: a person leading a project (direct edge ->) that
    #    directly or indirectly contains a task (reachability edge =>).
    query = parse_query(
        """
        node p Person
        node proj Project
        node t Task
        edge p -> proj
        edge proj => t
        """,
        name="person-project-task",
    )

    # 3. Evaluate with GM (double simulation + runtime index graph + MJoin).
    matcher = GraphMatcher(graph)
    report = matcher.match(query)

    print(f"query '{query.name}': {report.num_matches} occurrences "
          f"({report.total_seconds * 1000:.2f} ms, status={report.status.value})")
    for person, project, task in sorted(report.occurrences):
        print(f"  {names[person]:>4} -> {names[project]:<6} => {names[task]}")

    # The reachability edge is what finds (ana, atlas, review): the task is
    # two hops away from the project.  A child-only pattern would miss it.


if __name__ == "__main__":
    main()
