"""Service-provider / supply-chain scenario (paper Fig. 1(c)-(d)).

Search for a supplier, a retailer, a wholesaler and a bank such that the
supplier directly or indirectly supplies products to both the retailer and
the wholesaler, and both of them receive services directly from the same
bank.  The "supplies" relationships are reachability edges (goods may pass
through intermediaries); the banking relationships are direct edges.

This example also shows the effect of the GM ablations (GM-F, GM-S) and
prints RIG size statistics, mirroring the paper's Fig. 13 analysis.

Run with::

    python examples/supply_chain.py
"""

from __future__ import annotations

import random

from repro import Budget, GMVariant, GraphMatcher, GraphBuilder, PatternQuery
from repro.rig.stats import rig_statistics
from repro.simulation.context import MatchContext


def build_supply_graph(num_companies: int = 200, seed: int = 19):
    """A synthetic supply network of suppliers, wholesalers, retailers, banks."""
    rng = random.Random(seed)
    builder = GraphBuilder()
    roles = ["Supplier", "Wholesaler", "Retailer", "Bank"]
    companies = []
    for index in range(num_companies):
        role = rng.choices(roles, weights=[3, 3, 3, 1], k=1)[0]
        key = (role.lower(), index)
        builder.add_node(key, role)
        companies.append((key, role))

    banks = [key for key, role in companies if role == "Bank"]
    non_banks = [key for key, role in companies if role != "Bank"]

    # Supply edges flow supplier -> wholesaler -> retailer (with shortcuts).
    for key, role in companies:
        if role == "Bank":
            continue
        for _ in range(rng.randint(1, 4)):
            target = rng.choice(non_banks)
            if target != key:
                builder.add_edge(key, target)
    # Banks serve companies directly.
    for bank in banks:
        for _ in range(rng.randint(3, 10)):
            builder.add_edge(bank, rng.choice(non_banks))

    return builder.build(name="supply-chain")


def build_query() -> PatternQuery:
    return PatternQuery(
        labels=["Supplier", "Retailer", "Wholesaler", "Bank"],
        edges=[
            (0, 1, "descendant"),  # supplier (indirectly) supplies the retailer
            (0, 2, "descendant"),  # supplier (indirectly) supplies the wholesaler
            (3, 1, "child"),       # the bank serves the retailer directly
            (3, 2, "child"),       # the same bank serves the wholesaler directly
        ],
        name="supplier-retailer-wholesaler-bank",
    )


def main() -> None:
    graph = build_supply_graph()
    query = build_query()
    budget = Budget(max_matches=5_000)
    context = MatchContext(graph)

    print(f"data graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"{graph.num_labels()} labels")

    reference = None
    for variant in (GMVariant.GM, GMVariant.GM_S, GMVariant.GM_F):
        matcher = GraphMatcher(graph, context=context, variant=variant, budget=budget)
        build_report = matcher.build_rig(query)
        stats = rig_statistics(build_report.rig, graph)
        report = matcher.match(query)
        print(
            f"{variant.value:>5}: {report.num_matches:>6} occurrences, "
            f"query {report.total_seconds * 1000:7.2f} ms, "
            f"RIG {stats.rig_size:>6} items ({stats.ratio_percent():.2f}% of graph)"
        )
        if reference is None:
            reference = report.occurrence_set()
        elif report.status.value == "ok":
            assert report.occurrence_set() == reference, "all GM variants must agree"


if __name__ == "__main__":
    main()
