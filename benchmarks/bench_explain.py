"""EXPLAIN ANALYZE overhead — instrumented enumeration vs plain queries.

Not a paper figure: this benchmark proves the per-operator profiling that
EXPLAIN ANALYZE threads through the enumeration hot loops (PR 8) stays
cheap enough to use in production.  One warm :class:`QuerySession` over
the full-scale ``em`` graph runs the same hybrid workload two ways:

* **plain** — ``session.query``: the uninstrumented path every caller
  already pays for;
* **analyze** — ``session.explain(..., analyze=True)``: the same
  enumeration with per-position candidate / intersection / row counters
  live, plus plan assembly.

Each round runs both arms back to back in rotating order and contributes
one *paired* ratio (analyze round time over the plain round time measured
moments apart); the median of those ratios is the overhead estimate —
robust against shared-runner drift, like ``bench_obs.py``.

The regenerate test also re-checks the reconciliation contract at scale:
for GM and all four comparator engines, the analyzed plan's root row
count must exactly equal the eager :class:`MatchReport` occurrence count
of the same query under the same budget.  It asserts the overhead stays
at or below ``TARGET_OVERHEAD`` (10%), writes the table to
``results/explain.txt`` and the machine-readable record to the
``explain`` section of ``results/BENCH_explain.json``.
"""

import time

from conftest import RESULTS_DIR, update_explain_json
from repro.bench.workloads import bench_graph, query_set
from repro.matching.result import Budget
from repro.session import QuerySession

#: Full-scale em graph — the acceptance criterion names em@1.0.
EXPLAIN_BENCH_SCALE = 1.0

#: Per-query budget for the overhead workload (enumeration-bound).
EXPLAIN_BUDGET = Budget(
    max_matches=50_000, time_limit_seconds=60.0, max_intermediate_results=None
)

#: Per-query budget for the cross-engine reconciliation checks (the
#: comparator engines pay a closure-expansion precompute at this scale;
#: the cap keeps the check exact — both runs truncate identically —
#: while bounding its cost).
ENGINE_BUDGET = Budget(
    max_matches=2_000, time_limit_seconds=60.0, max_intermediate_results=None
)

#: Acceptance bar on EXPLAIN ANALYZE vs the plain query path.
TARGET_OVERHEAD = 0.10

#: Interleaved rounds (one paired ratio per round; the median is taken).
ROUNDS = 12

#: Engines whose analyzed plans must reconcile with their eager reports.
RECONCILE_ENGINES = ("GM", "GF", "Neo4j", "EH", "RM")


def _workload(graph):
    """The enumeration-bound workload of ``bench_obs.py``: two large
    hybrid instances plus two match-capped descendant instances."""
    queries = dict(query_set(graph, kind="H", templates=("HQ1", "HQ2")))
    queries.update(query_set(graph, kind="D", templates=("HQ1", "HQ2")))
    return queries


def _run_plain(session, queries) -> float:
    start = time.perf_counter()
    for name, query in queries.items():
        session.query(query, budget=EXPLAIN_BUDGET)
    return time.perf_counter() - start


def _run_analyze(session, queries) -> float:
    start = time.perf_counter()
    for name, query in queries.items():
        session.explain(query, analyze=True, budget=EXPLAIN_BUDGET)
    return time.perf_counter() - start


def run_explain_bench(scale: float = EXPLAIN_BENCH_SCALE):
    graph = bench_graph("em", scale=scale)
    queries = _workload(graph)
    session = QuerySession(graph)

    # Warm both paths: index builds and RIG caching happen once, outside
    # the measurement (profiling must not be charged for cold caches).
    _run_plain(session, queries)
    _run_analyze(session, queries)

    arms = {"plain": _run_plain, "analyze": _run_analyze}
    order = list(arms)
    rounds = {name: [] for name in arms}
    for index in range(ROUNDS):
        for offset in range(len(order)):
            name = order[(index + offset) % len(order)]
            rounds[name].append(arms[name](session, queries))

    ratios = sorted(
        analyze_seconds / max(plain_seconds, 1e-9)
        for plain_seconds, analyze_seconds in zip(rounds["plain"], rounds["analyze"])
    )
    overhead = ratios[len(ratios) // 2] - 1.0

    # Cross-engine reconciliation at scale: analyzed root rows must equal
    # the eager report of the same (engine, query, budget) run exactly.
    reconcile_query = next(iter(queries.values()))
    reconciled = {}
    for engine in RECONCILE_ENGINES:
        plan = session.explain(
            reconcile_query, engine=engine, analyze=True, budget=ENGINE_BUDGET
        )
        report = session.query(reconcile_query, engine=engine, budget=ENGINE_BUDGET)
        reconciled[engine] = {
            "plan_rows": plan.root.actual.get("rows"),
            "report_rows": report.num_matches,
            "digest": plan.digest(),
            "reconciled": plan.root.actual.get("rows") == report.num_matches,
        }

    best = {name: min(times) for name, times in rounds.items()}
    return {
        "graph": "em",
        "scale": scale,
        "num_queries": len(queries),
        "rounds": ROUNDS,
        "plain_seconds": round(best["plain"], 6),
        "analyze_seconds": round(best["analyze"], 6),
        "round_seconds": {
            name: [round(value, 6) for value in times]
            for name, times in rounds.items()
        },
        "overhead_fraction": round(overhead, 4),
        "target_overhead": TARGET_OVERHEAD,
        "reconciled": reconciled,
        "all_reconciled": all(
            entry["reconciled"] for entry in reconciled.values()
        ),
    }


def format_table(payload: dict) -> str:
    lines = [
        "EXPLAIN ANALYZE overhead: instrumented enumeration vs plain queries "
        f"(em graph, scale {payload['scale']})",
        f"workload: {payload['num_queries']} enumeration-bound queries; "
        f"overhead is the median paired ratio over {payload['rounds']} "
        f"interleaved rounds (times shown are each arm's best round)",
        f"plain    {payload['plain_seconds'] * 1000:>10.2f}ms",
        f"analyze  {payload['analyze_seconds'] * 1000:>10.2f}ms  "
        f"{payload['overhead_fraction'] * 100:+.2f}% "
        f"(target <= {payload['target_overhead'] * 100:.0f}%)",
        "reconciliation (analyzed root rows == eager report rows):",
    ]
    for engine, entry in payload["reconciled"].items():
        lines.append(
            f"  {engine:<6} plan={entry['plan_rows']:>6} "
            f"report={entry['report_rows']:>6} "
            f"digest={entry['digest']}  "
            f"{'ok' if entry['reconciled'] else 'MISMATCH'}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# micro-benchmarks
# ---------------------------------------------------------------------- #


def test_plan_only_explain(benchmark, em_graph):
    """Benchmark plan-only EXPLAIN (planning without enumeration)."""
    session = QuerySession(em_graph)
    queries = _workload(em_graph)
    query = next(iter(queries.values()))
    session.explain(query)  # warm the shared artifacts
    plan = benchmark(lambda: session.explain(query))
    assert plan.vertex_order


def test_analyze_explain_warm(benchmark, em_graph, fast_budget):
    """Benchmark a warm EXPLAIN ANALYZE through the session."""
    session = QuerySession(em_graph)
    queries = _workload(em_graph)
    query = next(iter(queries.values()))
    session.explain(query, analyze=True, budget=fast_budget)  # warm
    plan = benchmark(
        lambda: session.explain(query, analyze=True, budget=fast_budget)
    )
    assert plan.root.actual["rows"] == plan.execution["rows"]


# ---------------------------------------------------------------------- #
# the regenerate benchmark: the <=10% overhead bar
# ---------------------------------------------------------------------- #


def test_regenerate_explain(benchmark):
    payload = benchmark.pedantic(run_explain_bench, rounds=1, iterations=1)
    assert payload["all_reconciled"], (
        "EXPLAIN ANALYZE root rows diverged from the eager reports: "
        f"{payload['reconciled']}"
    )
    assert payload["overhead_fraction"] <= TARGET_OVERHEAD, (
        f"EXPLAIN ANALYZE overhead {payload['overhead_fraction'] * 100:.2f}% "
        f"above the {TARGET_OVERHEAD * 100:.0f}% bar"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "explain.txt").write_text(
        format_table(payload) + "\n", encoding="utf-8"
    )
    json_path = update_explain_json("explain", payload)
    benchmark.extra_info["overhead_fraction"] = payload["overhead_fraction"]
    benchmark.extra_info["all_reconciled"] = payload["all_reconciled"]
    benchmark.extra_info["json_path"] = str(json_path)


if __name__ == "__main__":
    result = run_explain_bench()
    print(format_table(result))
    path = update_explain_json("explain", result)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "explain.txt").write_text(format_table(result) + "\n", encoding="utf-8")
    print(f"wrote {path}")
