"""Fig. 11 — query time on increasingly larger subsets of the dblp graph."""

import pytest

from conftest import BENCH_SCALE_FAST, matcher_benchmark, write_report
from repro.bench.experiments import fig11_size_scaling
from repro.bench.workloads import bench_graph
from repro.graph.transform import node_prefix_subgraph
from repro.query.generators import instantiate_template
from repro.simulation.context import MatchContext


@pytest.mark.parametrize("fraction", [0.5, 1.0])
@pytest.mark.parametrize("matcher", ["GM", "TM"])
def test_query_time_by_graph_size(benchmark, fraction, matcher, fast_budget):
    full = bench_graph("db", scale=BENCH_SCALE_FAST)
    graph = node_prefix_subgraph(full, int(full.num_nodes * fraction))
    context = MatchContext(graph)
    query = instantiate_template("HQ8", graph, seed=41)
    matcher_benchmark(benchmark, matcher, graph, context, query, fast_budget)
    benchmark.extra_info["nodes"] = graph.num_nodes


def test_regenerate_fig11(benchmark, fast_budget):
    report = benchmark.pedantic(
        lambda: fig11_size_scaling(
            fractions=(0.5, 1.0), scale=BENCH_SCALE_FAST, budget=fast_budget
        ),
        rounds=1,
        iterations=1,
    )
    path = write_report(report)
    benchmark.extra_info["rows"] = len(report.rows)
    benchmark.extra_info["table_path"] = str(path)
