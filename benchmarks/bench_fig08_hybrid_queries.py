"""Fig. 8 — H-query evaluation time of GM, TM and JM on em, ep, hu.

Micro-benchmarks time each matcher on a representative hybrid query (one
acyclic, one cyclic instance); the regeneration benchmark runs the full
Fig. 8 driver and writes ``results/fig8.txt``.
"""

import pytest

from conftest import BENCH_SCALE_FAST, matcher_benchmark, representative_query, write_report
from repro.bench.experiments import fig08_hybrid_queries


@pytest.mark.parametrize("matcher", ["GM", "TM", "JM"])
def test_hybrid_acyclic_query_em(benchmark, matcher, em_graph, em_context, fast_budget):
    query = representative_query(em_graph, kind="H", template="HQ3")
    matcher_benchmark(benchmark, matcher, em_graph, em_context, query, fast_budget)


@pytest.mark.parametrize("matcher", ["GM", "TM", "JM"])
def test_hybrid_cyclic_query_ep(benchmark, matcher, ep_graph, ep_context, fast_budget):
    query = representative_query(ep_graph, kind="H", template="HQ8")
    matcher_benchmark(benchmark, matcher, ep_graph, ep_context, query, fast_budget)


@pytest.mark.parametrize("matcher", ["GM", "TM", "JM"])
def test_hybrid_combo_query_hu(benchmark, matcher, hu_graph, hu_context, fast_budget):
    query = representative_query(hu_graph, kind="H", template="HQ10")
    matcher_benchmark(benchmark, matcher, hu_graph, hu_context, query, fast_budget)


def test_regenerate_fig8(benchmark, fast_budget):
    report = benchmark.pedantic(
        lambda: fig08_hybrid_queries(datasets=("em", "ep"), scale=BENCH_SCALE_FAST, budget=fast_budget),
        rounds=1,
        iterations=1,
    )
    path = write_report(report)
    benchmark.extra_info["rows"] = len(report.rows)
    benchmark.extra_info["table_path"] = str(path)
