"""Session batch execution — repeated-query throughput with cached indexes.

Not a paper figure: this benchmark demonstrates the economics the paper's
design implies.  A repeated-query workload is pushed through (a) the *cold*
path — a fresh :class:`GraphMatcher` (and thus a fresh reachability index,
label summaries and RIG) per query, and (b) the *warm* path — one
:class:`QuerySession` whose cached artifacts every query reuses.  The
regenerate test writes both timings to ``results/session_batch.txt``, the
machine-readable numbers (latency percentiles, throughput, cache counters,
speedup) to the ``session_batch`` section of ``results/BENCH_session.json``,
and asserts the warm path is faster.
"""

import time

from conftest import RESULTS_DIR, update_bench_json
from repro.bench.workloads import bench_graph, query_set
from repro.matching.gm import GraphMatcher
from repro.matching.result import Budget
from repro.session import QuerySession

#: Graph scale for this benchmark (bigger than BENCH_SCALE_FAST so index
#: construction is clearly visible in the cold path, still sub-second).
SESSION_BENCH_SCALE = 0.25

#: How many times the template queries repeat in the workload.
REPEATS = 8

BATCH_BUDGET = Budget(max_matches=5_000, time_limit_seconds=10.0,
                      max_intermediate_results=200_000)


def repeated_workload(graph, repeats: int = REPEATS):
    """The same three hybrid template queries, repeated ``repeats`` times."""
    base = query_set(graph, kind="H", templates=("HQ0", "HQ4", "HQ8"))
    queries = {}
    for round_index in range(repeats):
        for name, query in base.items():
            queries[f"{name}#{round_index}"] = query
    return queries


def run_cold(graph, queries, budget):
    """Per-query engine construction: rebuild every index for every query."""
    total = 0
    for query in queries.values():
        matcher = GraphMatcher(graph, budget=budget)
        total += matcher.match(query).num_matches
    return total


def run_warm(session, queries, budget, workers: int = 1):
    """One session; every query reuses the cached indexes."""
    return session.run_batch(queries, engine="GM", budget=budget, workers=workers)


def test_cold_per_query_construction(benchmark):
    graph = bench_graph("em", scale=SESSION_BENCH_SCALE)
    queries = repeated_workload(graph)
    matches = benchmark.pedantic(
        lambda: run_cold(graph, queries, BATCH_BUDGET), rounds=3, iterations=1
    )
    benchmark.extra_info["matches"] = matches


def test_warm_session_batch(benchmark):
    graph = bench_graph("em", scale=SESSION_BENCH_SCALE)
    queries = repeated_workload(graph)
    session = QuerySession(graph, budget=BATCH_BUDGET)
    run_warm(session, queries, BATCH_BUDGET)  # warm the caches once
    report = benchmark(lambda: run_warm(session, queries, BATCH_BUDGET))
    benchmark.extra_info["matches"] = report.total_matches
    benchmark.extra_info["p50_ms"] = report.p50 * 1000
    benchmark.extra_info["cache_hits"] = report.total_cache_hits


def test_warm_session_batch_parallel(benchmark):
    graph = bench_graph("em", scale=SESSION_BENCH_SCALE)
    queries = repeated_workload(graph)
    session = QuerySession(graph, budget=BATCH_BUDGET)
    run_warm(session, queries, BATCH_BUDGET)
    report = benchmark(lambda: run_warm(session, queries, BATCH_BUDGET, workers=4))
    benchmark.extra_info["throughput_qps"] = report.throughput_qps


def test_regenerate_session_speedup(benchmark):
    """Measure cold vs warm once and record the speedup table."""
    graph = bench_graph("em", scale=SESSION_BENCH_SCALE)
    queries = repeated_workload(graph)

    def measure():
        start = time.perf_counter()
        cold_matches = run_cold(graph, queries, BATCH_BUDGET)
        cold_seconds = time.perf_counter() - start

        session = QuerySession(graph, budget=BATCH_BUDGET)
        start = time.perf_counter()
        batch = run_warm(session, queries, BATCH_BUDGET)
        warm_seconds = time.perf_counter() - start
        return cold_seconds, warm_seconds, cold_matches, batch

    cold_seconds, warm_seconds, cold_matches, batch = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # The headline claim: cached-index execution beats per-query construction.
    assert batch.total_matches == cold_matches
    assert warm_seconds < cold_seconds, (
        f"session batch ({warm_seconds:.4f}s) not faster than per-query "
        f"construction ({cold_seconds:.4f}s)"
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "session_batch.txt"
    lines = [
        "Session batch execution (repeated-query workload, em graph)",
        f"queries: {len(queries)} ({REPEATS}x 3 hybrid templates)",
        f"cold (per-query index construction): {cold_seconds:.4f}s",
        f"warm (QuerySession cached indexes):  {warm_seconds:.4f}s",
        f"speedup: {cold_seconds / warm_seconds:.1f}x",
        f"warm throughput: {batch.throughput_qps:.0f} q/s, p50 {batch.p50 * 1000:.2f}ms",
        f"cache: {batch.total_cache_hits} hits / {batch.total_cache_misses} builds",
        batch.summary(),
    ]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    json_path = update_bench_json("session_batch", session_batch_payload(
        queries, cold_seconds, warm_seconds, batch
    ))
    benchmark.extra_info["speedup"] = cold_seconds / warm_seconds
    benchmark.extra_info["table_path"] = str(path)
    benchmark.extra_info["json_path"] = str(json_path)


def session_batch_payload(queries, cold_seconds, warm_seconds, batch) -> dict:
    """The machine-readable record for the ``session_batch`` JSON section."""
    hits, misses = batch.cache_hits, batch.cache_misses
    return {
        "graph": "em",
        "scale": SESSION_BENCH_SCALE,
        "num_queries": len(queries),
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "speedup": round(cold_seconds / warm_seconds, 2),
        "p50_seconds": round(batch.p50, 6),
        "p90_seconds": round(batch.p90, 6),
        "p95_seconds": round(batch.latency_percentile(0.95), 6),
        "p99_seconds": round(batch.p99, 6),
        "throughput_qps": round(batch.throughput_qps, 2),
        "total_matches": batch.total_matches,
        "cache_hits": dict(hits),
        "cache_misses": dict(misses),
        "total_cache_hits": batch.total_cache_hits,
        "total_cache_misses": batch.total_cache_misses,
    }


if __name__ == "__main__":
    # src/ is already importable: `from conftest import ...` above resolves to
    # benchmarks/conftest.py (this script's directory), which inserts it.
    graph = bench_graph("em", scale=SESSION_BENCH_SCALE)
    queries = repeated_workload(graph)
    start = time.perf_counter()
    run_cold(graph, queries, BATCH_BUDGET)
    cold = time.perf_counter() - start
    session = QuerySession(graph, budget=BATCH_BUDGET)
    start = time.perf_counter()
    batch = run_warm(session, queries, BATCH_BUDGET)
    warm = time.perf_counter() - start
    print(f"cold {cold:.4f}s vs warm {warm:.4f}s ({cold / warm:.1f}x)")
    print(batch.summary())
    path = update_bench_json(
        "session_batch", session_batch_payload(queries, cold, warm, batch)
    )
    print(f"wrote {path}")
