"""Fig. 16 — GF catalog build time and GM-vs-GF C-query evaluation."""

import pytest

from conftest import BENCH_SCALE_FAST, matcher_benchmark, representative_query, write_report
from repro.bench.experiments import fig16_wcoj_engine
from repro.bench.workloads import bench_graph
from repro.engines.wcoj import build_catalog
from repro.simulation.context import MatchContext


@pytest.mark.parametrize("dataset", ["am", "hu", "em"])
def test_catalog_build_time(benchmark, dataset):
    graph = bench_graph(dataset, scale=BENCH_SCALE_FAST)
    catalog = benchmark(lambda: build_catalog(graph))
    benchmark.extra_info["path_entries"] = len(catalog.path_counts)


@pytest.mark.parametrize("matcher", ["GM", "GF"])
def test_child_query_on_few_label_graph(benchmark, matcher, fast_budget):
    graph = bench_graph("am", scale=BENCH_SCALE_FAST)
    context = MatchContext(graph)
    query = representative_query(graph, kind="C", template="HQ17")
    matcher_benchmark(benchmark, matcher, graph, context, query, fast_budget)


@pytest.mark.parametrize("matcher", ["GM", "GF"])
def test_child_query_on_label_rich_graph(benchmark, matcher, hu_graph, hu_context, fast_budget):
    query = representative_query(hu_graph, kind="C", template="HQ16")
    matcher_benchmark(benchmark, matcher, hu_graph, hu_context, query, fast_budget)


def test_regenerate_fig16(benchmark, fast_budget):
    report = benchmark.pedantic(
        lambda: fig16_wcoj_engine(
            catalog_datasets=("em", "hu", "am", "bs"),
            query_datasets=("am", "hu"),
            scale=BENCH_SCALE_FAST,
            budget=fast_budget,
        ),
        rounds=1,
        iterations=1,
    )
    path = write_report(report)
    benchmark.extra_info["rows"] = len(report.rows)
    benchmark.extra_info["table_path"] = str(path)
