"""Pipelined streaming — time-to-first-match vs full materialisation.

Not a paper figure: this benchmark demonstrates the payoff of the
incremental match-iterator redesign.  The paper caps every query at 10^7
enumerated matches because enumeration dominates query time; under the
eager API a consumer waits for that whole enumeration before seeing the
first occurrence.  With ``iter_matches`` / ``MatchStream`` the first match
costs one root-to-leaf descent of the search.

Two levels are measured on the large ``em`` workload (scale 1.0):

* **session level** — warm :class:`QuerySession`, per query: wall time of
  a full eager ``query()`` vs wall time until ``next(session.stream(q))``
  yields the first occurrence;
* **service level** — time until the first *page* of
  ``QueryService.stream(...).pages()`` arrives vs the wall time of the
  full report.

The regenerate test asserts the **minimum** per-query first-match speedup
is at least ``TARGET_FIRST_MATCH_SPEEDUP`` (5x), writes the table to
``results/streaming.txt`` and the machine-readable record to the
``streaming`` section of ``results/BENCH_streaming.json``.
"""

import statistics
import time

from conftest import RESULTS_DIR, update_streaming_json
from repro.bench.workloads import bench_graph, query_set
from repro.matching.result import Budget
from repro.service import QueryService, ServiceConfig
from repro.session import QuerySession

#: The "large workload": full-scale em graph (2600 nodes at scale 1.0).
STREAMING_BENCH_SCALE = 1.0

#: Queries chosen for result sizes where enumeration dominates: a hybrid
#: template with >10^4 matches and two descendant templates that hit the
#: match cap (the paper's D-query regime).
SESSION_QUERIES = (("H", "HQ1"), ("H", "HQ2"), ("D", "DQ0"), ("D", "DQ1"))

#: Per-query budget: a high match cap (enumeration-bound, still CI-sized).
STREAMING_BUDGET = Budget(
    max_matches=200_000, time_limit_seconds=120.0, max_intermediate_results=None
)

#: Acceptance bar: minimum full-materialisation / time-to-first-match ratio.
TARGET_FIRST_MATCH_SPEEDUP = 5.0

#: Repetitions per measurement (median taken, first-match times are tiny).
ROUNDS = 3


def _workload(graph):
    queries = {}
    for kind, template in SESSION_QUERIES:
        generated = query_set(graph, kind=kind, templates=(template.replace(kind + "Q", "HQ"),))
        for name, query in generated.items():
            queries[name] = query
    return queries


def measure_session(graph, queries, budget=STREAMING_BUDGET):
    """Per query: median full-materialisation wall vs time-to-first-match."""
    session = QuerySession(graph)
    results = {}
    for name, query in queries.items():
        session.query(query, budget=budget)  # warm: indexes + RIG cached
        fulls, firsts = [], []
        num_matches = 0
        for _ in range(ROUNDS):
            start = time.perf_counter()
            report = session.query(query, budget=budget)
            fulls.append(time.perf_counter() - start)
            num_matches = report.num_matches
            start = time.perf_counter()
            stream = session.stream(query, budget=budget)
            next(stream)
            firsts.append(time.perf_counter() - start)
            stream.close()
        full = statistics.median(fulls)
        first = statistics.median(firsts)
        results[name] = {
            "num_matches": num_matches,
            "full_seconds": round(full, 6),
            "first_match_seconds": round(first, 6),
            "speedup": round(full / max(first, 1e-9), 1),
        }
    return results


def measure_service(graph, query, budget=STREAMING_BUDGET, page_size=256):
    """Time to the first streamed page vs the full report, via the service."""
    with QueryService(graph, config=ServiceConfig(workers=2)) as service:
        service.query(query, budget=budget)  # warm the epoch's artifacts
        start = time.perf_counter()
        report = service.query(query, budget=budget)
        full = time.perf_counter() - start

        start = time.perf_counter()
        result = service.stream(query, budget=budget, page_size=page_size)
        page_iter = result.pages(timeout=120.0)
        first_page = next(page_iter)
        first = time.perf_counter() - start
        query_done_at_first_page = result.ticket.done
        result.close()
        return {
            "num_matches": report.num_matches,
            "page_size": page_size,
            "full_seconds": round(full, 6),
            "first_page_seconds": round(first, 6),
            "first_page_len": len(first_page),
            "speedup": round(full / max(first, 1e-9), 1),
            "query_done_at_first_page": query_done_at_first_page,
        }


def run_streaming_bench(scale: float = STREAMING_BENCH_SCALE):
    graph = bench_graph("em", scale=scale)
    queries = _workload(graph)
    session_results = measure_session(graph, queries)
    # The service measurement uses the largest-result query of the set.
    largest = max(queries, key=lambda name: session_results[name]["num_matches"])
    service_results = measure_service(graph, queries[largest])
    min_speedup = min(entry["speedup"] for entry in session_results.values())
    payload = {
        "graph": "em",
        "scale": scale,
        "budget_max_matches": STREAMING_BUDGET.max_matches,
        "queries": session_results,
        "service": {"query": largest, **service_results},
        "min_first_match_speedup": min_speedup,
        "target_first_match_speedup": TARGET_FIRST_MATCH_SPEEDUP,
    }
    return payload


def format_table(payload: dict) -> str:
    lines = [
        "Pipelined streaming: time-to-first-match vs full materialisation "
        f"(em graph, scale {payload['scale']})",
        f"{'query':<8} {'matches':>9} {'full':>12} {'first':>12} {'speedup':>9}",
    ]
    for name, entry in payload["queries"].items():
        lines.append(
            f"{name:<8} {entry['num_matches']:>9} "
            f"{entry['full_seconds'] * 1000:>10.2f}ms "
            f"{entry['first_match_seconds'] * 1000:>10.3f}ms "
            f"{entry['speedup']:>8.1f}x"
        )
    service = payload["service"]
    lines.append(
        f"service ({service['query']}, pages of {service['page_size']}): "
        f"first page {service['first_page_seconds'] * 1000:.2f}ms vs full "
        f"{service['full_seconds'] * 1000:.2f}ms "
        f"({service['speedup']:.1f}x; query still running at first page: "
        f"{not service['query_done_at_first_page']})"
    )
    lines.append(
        f"min first-match speedup: {payload['min_first_match_speedup']:.1f}x "
        f"(target {payload['target_first_match_speedup']}x)"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# micro-benchmarks
# ---------------------------------------------------------------------- #


def test_time_to_first_match_gm(benchmark):
    """Benchmark the streamed first match of the capped descendant query."""
    graph = bench_graph("em", scale=STREAMING_BENCH_SCALE)
    queries = _workload(graph)
    query = queries["DQ0"]
    session = QuerySession(graph)
    session.query(query, budget=STREAMING_BUDGET)  # warm

    def first_match():
        stream = session.stream(query, budget=STREAMING_BUDGET)
        occurrence = next(stream)
        stream.close()
        return occurrence

    benchmark(first_match)


def test_counting_drain_vs_materialised(benchmark):
    """Benchmark ``count()`` (counting drain) on the big hybrid query."""
    graph = bench_graph("em", scale=STREAMING_BENCH_SCALE)
    queries = _workload(graph)
    query = queries["HQ1"]
    session = QuerySession(graph)
    session.query(query, budget=STREAMING_BUDGET)

    count = benchmark(lambda: session.count(query, budget=STREAMING_BUDGET))
    assert count == session.query(query, budget=STREAMING_BUDGET).num_matches


# ---------------------------------------------------------------------- #
# the regenerate benchmark: the >=5x time-to-first-match bar
# ---------------------------------------------------------------------- #


def test_regenerate_streaming(benchmark):
    payload = benchmark.pedantic(run_streaming_bench, rounds=1, iterations=1)
    assert payload["min_first_match_speedup"] >= TARGET_FIRST_MATCH_SPEEDUP, (
        f"min first-match speedup {payload['min_first_match_speedup']}x below "
        f"the {TARGET_FIRST_MATCH_SPEEDUP}x bar"
    )
    assert not payload["service"]["query_done_at_first_page"], (
        "the first streamed page only arrived after the query finished"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "streaming.txt").write_text(
        format_table(payload) + "\n", encoding="utf-8"
    )
    json_path = update_streaming_json("streaming", payload)
    benchmark.extra_info["min_speedup"] = payload["min_first_match_speedup"]
    benchmark.extra_info["json_path"] = str(json_path)


if __name__ == "__main__":
    # src/ is importable via benchmarks/conftest.py (imported above).
    started = time.perf_counter()
    payload = run_streaming_bench()
    print(format_table(payload))
    assert payload["min_first_match_speedup"] >= TARGET_FIRST_MATCH_SPEEDUP, (
        f"min first-match speedup {payload['min_first_match_speedup']}x below "
        f"the {TARGET_FIRST_MATCH_SPEEDUP}x bar"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "streaming.txt").write_text(
        format_table(payload) + "\n", encoding="utf-8"
    )
    path = update_streaming_json("streaming", payload)
    print(f"wrote {path} ({time.perf_counter() - started:.1f}s)")
