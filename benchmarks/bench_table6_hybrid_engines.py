"""Table 6 — Neo4j vs GM on H-queries over an em fragment."""

import pytest

from conftest import BENCH_SCALE_FAST, matcher_benchmark, representative_query, write_report
from repro.bench.experiments import table6_hybrid_engines


@pytest.mark.parametrize("matcher", ["Neo4j", "GM"])
def test_hybrid_acyclic_query(benchmark, matcher, em_graph, em_context, fast_budget):
    query = representative_query(em_graph, kind="H", template="HQ0")
    matcher_benchmark(benchmark, matcher, em_graph, em_context, query, fast_budget)


@pytest.mark.parametrize("matcher", ["Neo4j", "GM"])
def test_hybrid_cyclic_query(benchmark, matcher, em_graph, em_context, fast_budget):
    query = representative_query(em_graph, kind="H", template="HQ17")
    matcher_benchmark(benchmark, matcher, em_graph, em_context, query, fast_budget)


def test_regenerate_table6(benchmark, fast_budget):
    report = benchmark.pedantic(
        lambda: table6_hybrid_engines(scale=BENCH_SCALE_FAST, budget=fast_budget),
        rounds=1,
        iterations=1,
    )
    path = write_report(report)
    benchmark.extra_info["rows"] = len(report.rows)
    benchmark.extra_info["table_path"] = str(path)
