"""Table 5 — EH, Neo4j and GM on C-queries over em and ep."""

import pytest

from conftest import BENCH_SCALE_FAST, matcher_benchmark, representative_query, write_report
from repro.bench.experiments import table5_engines
from repro.engines.relational import RelationalEngine


@pytest.mark.parametrize("matcher", ["EH", "Neo4j", "GM"])
def test_child_acyclic_query_em(benchmark, matcher, em_graph, em_context, fast_budget):
    query = representative_query(em_graph, kind="C", template="HQ0")
    matcher_benchmark(benchmark, matcher, em_graph, em_context, query, fast_budget)


@pytest.mark.parametrize("matcher", ["EH", "Neo4j", "GM"])
def test_child_cyclic_query_ep(benchmark, matcher, ep_graph, ep_context, fast_budget):
    query = representative_query(ep_graph, kind="C", template="HQ6")
    matcher_benchmark(benchmark, matcher, ep_graph, ep_context, query, fast_budget)


def test_eh_precomputation_cost(benchmark, ep_graph):
    """EmptyHeaded's expensive load/index step, charged before any query runs."""
    engine = benchmark(lambda: RelationalEngine(ep_graph))
    benchmark.extra_info["precompute_seconds"] = engine.precompute_seconds


def test_regenerate_table5(benchmark, fast_budget):
    report = benchmark.pedantic(
        lambda: table5_engines(datasets=("em", "ep"), scale=BENCH_SCALE_FAST, budget=fast_budget),
        rounds=1,
        iterations=1,
    )
    path = write_report(report)
    benchmark.extra_info["rows"] = len(report.rows)
    benchmark.extra_info["table_path"] = str(path)
