"""Table 3 — large D-queries on hu, hp, yt: solved counts and average times."""

import pytest

from conftest import BENCH_SCALE_FAST, matcher_benchmark, write_report
from repro.bench.experiments import table3_descendant_queries
from repro.bench.workloads import random_query_set


@pytest.mark.parametrize("matcher", ["GM", "TM", "JM"])
def test_descendant_random_query_hu(benchmark, matcher, hu_graph, hu_context, fast_budget):
    queries = random_query_set(hu_graph, (8,), kind="D", per_size=1, seed=23)
    query = next(iter(queries.values()))
    matcher_benchmark(benchmark, matcher, hu_graph, hu_context, query, fast_budget)


def test_regenerate_table3(benchmark, fast_budget):
    report = benchmark.pedantic(
        lambda: table3_descendant_queries(
            datasets=("hu", "yt"), scale=BENCH_SCALE_FAST, budget=fast_budget, node_counts=(4, 8)
        ),
        rounds=1,
        iterations=1,
    )
    path = write_report(report)
    benchmark.extra_info["rows"] = len(report.rows)
    benchmark.extra_info["table_path"] = str(path)
