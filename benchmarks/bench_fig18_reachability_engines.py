"""Fig. 18 — reachability D-queries: index/catalog build times and GM vs GF vs Neo4j."""

import pytest

from conftest import BENCH_SCALE_FAST, matcher_benchmark, write_report
from repro.bench.experiments import fig18_reachability_engines
from repro.bench.workloads import bench_graph
from repro.engines.wcoj import build_catalog
from repro.graph.transform import node_prefix_subgraph
from repro.query.generators import instantiate_template, to_descendant_only
from repro.reachability.bfl import BloomFilterLabeling
from repro.reachability.transitive_closure import TransitiveClosureIndex
from repro.simulation.context import MatchContext


@pytest.fixture(scope="module")
def em_fragment():
    return node_prefix_subgraph(bench_graph("em", scale=BENCH_SCALE_FAST), 250)


def test_bfl_build_time(benchmark, em_fragment):
    benchmark(lambda: BloomFilterLabeling(em_fragment))


def test_transitive_closure_build_time(benchmark, em_fragment):
    benchmark(lambda: TransitiveClosureIndex(em_fragment))


def test_catalog_build_time(benchmark, em_fragment):
    benchmark(lambda: build_catalog(em_fragment))


@pytest.mark.parametrize("matcher", ["GM", "GF", "Neo4j"])
def test_descendant_query_time(benchmark, matcher, em_fragment, fast_budget):
    context = MatchContext(em_fragment)
    query = to_descendant_only(instantiate_template("HQ4", em_fragment, seed=83))
    matcher_benchmark(benchmark, matcher, em_fragment, context, query, fast_budget)


def test_regenerate_fig18(benchmark, fast_budget):
    report = benchmark.pedantic(
        lambda: fig18_reachability_engines(
            label_counts=(5, 20), node_counts=(150, 250), scale=BENCH_SCALE_FAST, budget=fast_budget
        ),
        rounds=1,
        iterations=1,
    )
    path = write_report(report)
    benchmark.extra_info["rows"] = len(report.rows)
    benchmark.extra_info["table_path"] = str(path)
