"""Telemetry overhead — instrumented facades vs telemetry disabled.

Not a paper figure: this benchmark proves the unified observability
subsystem (PR 7) stays out of the hot path.  Three :class:`GraphDB`
instances run the same query workload over the full-scale ``em`` graph:

* **baseline** — opened with ``telemetry=None``: no registry, no tracer,
  no slow log; the stats objects never mirror anywhere;
* **default** — what ``GraphDB.open()`` ships with: every layer mirroring
  its counters into one :class:`~repro.obs.MetricsRegistry` (tracing and
  the slow log are opt-in, so this is the cost every user pays);
* **debug** — the worst-case configuration: every query traced
  (``sample_rate=1.0``) *and* recorded by the slow-query log
  (``slow_query_seconds=0.0``) on top of the metrics.

Each round executes the whole hybrid query set several times for every
arm, back to back and in rotating order, and contributes one *paired*
ratio per instrumented arm (its round time over the baseline's round
time measured moments apart).  The median of those ratios is the
overhead estimate — robust against the large round-to-round drift shared
CI runners exhibit, which a plain best-of or mean comparison is not.
The regenerate test asserts the always-on (default) overhead stays at or
below ``TARGET_OVERHEAD`` (5%) and the debug configuration below the
looser ``TARGET_DEBUG_OVERHEAD`` sanity bound, writes the table to
``results/obs.txt`` and the machine-readable record to the ``obs``
section of ``results/BENCH_obs.json``.
"""

import time

from conftest import RESULTS_DIR, update_obs_json
from repro.api import GraphDB
from repro.bench.workloads import bench_graph, query_set
from repro.matching.result import Budget
from repro.obs import Telemetry

#: Full-scale em graph — the acceptance criterion names em@1.0.
OBS_BENCH_SCALE = 1.0

#: Per-query budget (CI-sized but enumeration still dominates).
OBS_BUDGET = Budget(
    max_matches=50_000, time_limit_seconds=60.0, max_intermediate_results=None
)

#: Acceptance bar on the always-on configuration (metrics mirroring).
TARGET_OVERHEAD = 0.05

#: Sanity bound on the everything-on debug configuration (trace + log
#: every query).  Its true cost is a few percent; the looser bound keeps
#: the assertion meaningful without flaking on a noisy CI runner.
TARGET_DEBUG_OVERHEAD = 0.15

#: Interleaved rounds (one paired ratio per round; the median is taken).
ROUNDS = 12

#: Workload repetitions per round (one pass is already ~170ms).
REPEATS_PER_ROUND = 1


def _workload(graph):
    """Enumeration-bound queries: two large hybrid instances plus two
    match-capped descendant instances — the paper's regime (the 10^7
    match cap exists because enumeration dominates query time), and the
    regime in which per-query telemetry cost must prove itself amortised.
    """
    queries = dict(query_set(graph, kind="H", templates=("HQ1", "HQ2")))
    queries.update(query_set(graph, kind="D", templates=("HQ1", "HQ2")))
    return queries


def _debug_telemetry() -> Telemetry:
    """The worst-case configuration: metrics + tracing + slow log all on."""
    return Telemetry(sample_rate=1.0, slow_query_seconds=0.0)


def _run_workload(db, queries, repeats: int = REPEATS_PER_ROUND) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        for name, query in queries.items():
            db.query(query, budget=OBS_BUDGET, name=name)
    return time.perf_counter() - start


def run_obs_bench(scale: float = OBS_BENCH_SCALE):
    graph = bench_graph("em", scale=scale)
    queries = _workload(graph)
    arms = {
        "baseline": GraphDB.open(graph, telemetry=None),
        "default": GraphDB.open(graph),
        "debug": GraphDB.open(graph, telemetry=_debug_telemetry()),
    }
    order = list(arms)
    try:
        # Warm every arm: index builds and RIG caching happen once, outside
        # the measurement (telemetry must not be charged for cold caches).
        for db in arms.values():
            _run_workload(db, queries, repeats=1)
        rounds = {name: [] for name in arms}
        for index in range(ROUNDS):
            # All arms run back-to-back inside one round, and the order
            # rotates each round: machine drift between rounds cancels in
            # the per-round ratios, drift *within* a round debiases across
            # the rotation.
            for offset in range(len(order)):
                name = order[(index + offset) % len(order)]
                rounds[name].append(_run_workload(arms[name], queries))
        instrumented = arms["debug"]
        num_matches = sum(
            instrumented.query(query, budget=OBS_BUDGET).num_matches
            for query in queries.values()
        )
        metric_families = len(instrumented.metrics())
        slow_entries = len(instrumented.slow_queries())
    finally:
        for db in arms.values():
            db.close()

    best = {name: min(times) for name, times in rounds.items()}
    # Paired estimator: the overhead of an arm is the *median over rounds*
    # of its per-round ratio to the baseline measured moments before/after
    # it — robust against the round-to-round drift a shared CI runner shows.
    def _paired_overhead(name: str) -> float:
        ratios = sorted(
            instrumented_seconds / max(baseline_seconds, 1e-9)
            for baseline_seconds, instrumented_seconds in zip(
                rounds["baseline"], rounds[name]
            )
        )
        return ratios[len(ratios) // 2] - 1.0

    overhead = _paired_overhead("default")
    debug_overhead = _paired_overhead("debug")
    return {
        "graph": "em",
        "scale": scale,
        "num_queries": len(queries),
        "num_matches": num_matches,
        "rounds": ROUNDS,
        "repeats_per_round": REPEATS_PER_ROUND,
        "baseline_seconds": round(best["baseline"], 6),
        "instrumented_seconds": round(best["default"], 6),
        "debug_seconds": round(best["debug"], 6),
        "round_seconds": {
            name: [round(value, 6) for value in times]
            for name, times in rounds.items()
        },
        "overhead_fraction": round(overhead, 4),
        "debug_overhead_fraction": round(debug_overhead, 4),
        "target_overhead": TARGET_OVERHEAD,
        "target_debug_overhead": TARGET_DEBUG_OVERHEAD,
        "metric_families": metric_families,
        "slow_log_entries": slow_entries,
    }


def format_table(payload: dict) -> str:
    return "\n".join(
        [
            "Telemetry overhead: instrumented facades vs telemetry disabled "
            f"(em graph, scale {payload['scale']})",
            f"workload: {payload['num_queries']} enumeration-bound queries, "
            f"{payload['num_matches']} matches; overheads are the median "
            f"paired ratio over {payload['rounds']} interleaved rounds "
            f"(times shown are each arm's best round)",
            f"baseline {payload['baseline_seconds'] * 1000:>10.2f}ms  (telemetry=None)",
            f"default  {payload['instrumented_seconds'] * 1000:>10.2f}ms  "
            f"(metrics mirroring, {payload['metric_families']} families): "
            f"{payload['overhead_fraction'] * 100:+.2f}% "
            f"(target <= {payload['target_overhead'] * 100:.0f}%)",
            f"debug    {payload['debug_seconds'] * 1000:>10.2f}ms  "
            f"(+ every query traced and slow-logged): "
            f"{payload['debug_overhead_fraction'] * 100:+.2f}% "
            f"(sanity <= {payload['target_debug_overhead'] * 100:.0f}%)",
        ]
    )


# ---------------------------------------------------------------------- #
# micro-benchmarks
# ---------------------------------------------------------------------- #


def test_registry_labelled_counter_inc(benchmark):
    """Benchmark the hot-path cost of one labelled counter increment."""
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    child = registry.counter("ops_total", "ops", labelnames=("op",)).labels("query")
    benchmark(child.inc)
    assert registry.get("ops_total") is not None


def test_histogram_observe(benchmark):
    """Benchmark one histogram observation (bisect into default buckets)."""
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    histogram = registry.histogram("latency_seconds", "latency")
    benchmark(lambda: histogram.observe(0.0042))


def test_traced_query_session_level(benchmark):
    """Benchmark a fully-traced warm query through the facade."""
    graph = bench_graph("em", scale=0.25)
    queries = _workload(graph)
    name, query = next(iter(queries.items()))
    with GraphDB.open(graph, telemetry=_debug_telemetry()) as db:
        db.query(query, budget=OBS_BUDGET)  # warm
        benchmark(lambda: db.query(query, budget=OBS_BUDGET, trace_id="bench"))


# ---------------------------------------------------------------------- #
# the regenerate benchmark: the <=5% overhead bar
# ---------------------------------------------------------------------- #


def test_regenerate_obs(benchmark):
    payload = benchmark.pedantic(run_obs_bench, rounds=1, iterations=1)
    assert payload["overhead_fraction"] <= TARGET_OVERHEAD, (
        f"always-on telemetry overhead {payload['overhead_fraction'] * 100:.2f}% "
        f"above the {TARGET_OVERHEAD * 100:.0f}% bar"
    )
    assert payload["debug_overhead_fraction"] <= TARGET_DEBUG_OVERHEAD, (
        f"debug telemetry overhead {payload['debug_overhead_fraction'] * 100:.2f}% "
        f"above the {TARGET_DEBUG_OVERHEAD * 100:.0f}% sanity bound"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs.txt").write_text(format_table(payload) + "\n", encoding="utf-8")
    json_path = update_obs_json("obs", payload)
    benchmark.extra_info["overhead_fraction"] = payload["overhead_fraction"]
    benchmark.extra_info["debug_overhead_fraction"] = payload["debug_overhead_fraction"]
    benchmark.extra_info["json_path"] = str(json_path)


if __name__ == "__main__":
    result = run_obs_bench()
    print(format_table(result))
    path = update_obs_json("obs", result)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs.txt").write_text(format_table(result) + "\n", encoding="utf-8")
    print(f"wrote {path}")
