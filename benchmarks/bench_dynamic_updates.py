"""Dynamic updates — update-then-query vs cold session rebuild.

Not a paper figure: this benchmark demonstrates the payoff of the dynamic
subsystem.  A warm :class:`QuerySession` (reachability index, transitive
closure, bitmaps and partitions built) receives a stream of small
insertion-only deltas — new nodes arriving with edges into the existing
graph, the shape of a streaming feed.  Each batch is applied twice:

* **patched** — :meth:`QuerySession.apply` updates the cached artifacts in
  place (incremental BFL / closure maintenance, bitmap and partition
  refresh);
* **cold** — a fresh session is constructed on the materialised post-delta
  graph and brought to the same serving state (same artifacts built).

The regenerate test asserts the patched path is >= 10x faster, checks the
patched session's answers are bit-identical to the cold session's, writes a
table to ``results/dynamic_updates.txt`` and the machine-readable numbers
to the ``dynamic_updates`` section of ``results/BENCH_session.json``.
"""

import random
import time

from conftest import RESULTS_DIR, update_bench_json
from repro.bench.workloads import bench_graph, query_set
from repro.dynamic import GraphDelta
from repro.matching.result import Budget
from repro.session import QuerySession, percentile

#: Graph scale (matches bench_session_batch so the two sections of
#: BENCH_session.json describe the same graph).
DYNAMIC_BENCH_SCALE = 0.25

#: Number of delta batches in the stream.
NUM_DELTAS = 5

#: Shape of each delta batch: a few new nodes, each linking into the graph.
NODES_PER_DELTA = 3
EDGES_PER_DELTA = 9

UPDATE_BUDGET = Budget(max_matches=5_000, time_limit_seconds=10.0,
                       max_intermediate_results=200_000)

#: Acceptance bar: patching must beat the cold rebuild by at least this much.
TARGET_SPEEDUP = 10.0


def make_delta(graph, seed: int) -> GraphDelta:
    """A small insertion-only delta: new nodes citing existing nodes.

    Edges always point *out of* new nodes (into existing or earlier-new
    nodes), like citations from freshly published papers: the existing
    graph can never reach a new node, so no SCC merge occurs and the
    incremental reachability paths stay on the fast patch route.
    """
    rng = random.Random(seed)
    labels = graph.label_alphabet()
    delta = GraphDelta.for_graph(graph)
    new_nodes = [delta.add_node(rng.choice(labels)) for _ in range(NODES_PER_DELTA)]
    for index in range(EDGES_PER_DELTA):
        source = new_nodes[index % len(new_nodes)]
        # Mostly cite existing nodes; occasionally an earlier new node.
        if rng.random() < 0.8 or source == new_nodes[0]:
            target = rng.randrange(graph.num_nodes)
        else:
            target = rng.choice([n for n in new_nodes if n < source])
        if source != target:
            delta.add_edge(source, target)
    return delta


def warm_session(graph, budget=UPDATE_BUDGET) -> QuerySession:
    """A session brought to full serving state (all shared artifacts built)."""
    session = QuerySession(graph, budget=budget)
    session.context
    session.transitive_closure
    session.label_bitmaps
    session.bitmap_universe
    session.partitions
    return session


def build_cold(graph) -> QuerySession:
    """Cold construction: what serving would pay without the patch path."""
    return warm_session(graph)


def update_workload(graph):
    """Three hybrid template queries re-run after every delta."""
    return query_set(graph, kind="H", templates=("HQ0", "HQ4", "HQ8"))


def test_apply_insert_delta(benchmark):
    """Benchmark one small insert-only apply() on a warm session."""
    graph = bench_graph("em", scale=DYNAMIC_BENCH_SCALE)
    session = warm_session(graph)
    state = {"seed": 0}

    def setup():
        state["seed"] += 1
        return (make_delta(session.graph, state["seed"]),), {}

    def run(delta):
        return session.apply(delta)

    report = benchmark.pedantic(run, setup=setup, rounds=10, iterations=1)
    benchmark.extra_info["patched"] = ",".join(report.patched)
    benchmark.extra_info["ops"] = report.num_ops


def test_cold_session_rebuild(benchmark):
    """Benchmark the alternative: cold session construction after a delta."""
    graph = bench_graph("em", scale=DYNAMIC_BENCH_SCALE)
    from repro.dynamic import MutableDataGraph

    materialized = MutableDataGraph(graph, make_delta(graph, 1)).materialize()
    benchmark.pedantic(lambda: build_cold(materialized), rounds=3, iterations=1)


def test_regenerate_dynamic_speedup(benchmark):
    """Stream NUM_DELTAS update batches; record patched-vs-cold numbers."""
    base = bench_graph("em", scale=DYNAMIC_BENCH_SCALE)
    session = warm_session(base)
    queries = update_workload(base)
    session.run_batch(queries, budget=UPDATE_BUDGET)  # warm the RIG caches too

    def measure():
        apply_seconds = []
        cold_seconds = []
        for round_index in range(NUM_DELTAS):
            delta = make_delta(session.graph, seed=round_index + 1)
            started = time.perf_counter()
            session.apply(delta)
            apply_seconds.append(time.perf_counter() - started)

            started = time.perf_counter()
            cold = build_cold(session.graph)
            cold_seconds.append(time.perf_counter() - started)

            warm_batch = session.run_batch(queries, budget=UPDATE_BUDGET)
            cold_batch = cold.run_batch(queries, budget=UPDATE_BUDGET)
            assert warm_batch.answers() == cold_batch.answers(), (
                f"patched session diverged from cold session on round {round_index}"
            )
        return apply_seconds, cold_seconds

    apply_seconds, cold_seconds = benchmark.pedantic(measure, rounds=1, iterations=1)

    mean_apply = sum(apply_seconds) / len(apply_seconds)
    mean_cold = sum(cold_seconds) / len(cold_seconds)
    # Medians, not means: a single scheduler stall on a shared CI runner
    # must not sink the ratio below the bar.
    speedup = percentile(cold_seconds, 0.50) / percentile(apply_seconds, 0.50)
    full = session.stats.full_snapshot()

    assert speedup >= TARGET_SPEEDUP, (
        f"apply ({percentile(apply_seconds, 0.50) * 1000:.2f}ms median) only "
        f"{speedup:.1f}x faster than cold rebuild "
        f"({percentile(cold_seconds, 0.50) * 1000:.2f}ms median); "
        f"target {TARGET_SPEEDUP}x"
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = dynamic_payload(apply_seconds, cold_seconds, session)
    table = RESULTS_DIR / "dynamic_updates.txt"
    table.write_text(
        "\n".join(
            [
                "Dynamic updates (insert-only delta stream, em graph)",
                f"deltas: {NUM_DELTAS} x ({NODES_PER_DELTA} nodes, {EDGES_PER_DELTA} edges)",
                f"apply (patched session):  mean {mean_apply * 1000:.2f}ms, "
                f"p95 {payload['apply_p95_seconds'] * 1000:.2f}ms",
                f"cold session rebuild:     mean {mean_cold * 1000:.2f}ms",
                f"speedup: {speedup:.1f}x",
                f"artifact patches: {full['patches']}",
                f"artifact invalidations: {full['invalidations']}",
            ]
        )
        + "\n",
        encoding="utf-8",
    )
    json_path = update_bench_json("dynamic_updates", payload)
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["json_path"] = str(json_path)


def dynamic_payload(apply_seconds, cold_seconds, session) -> dict:
    """The machine-readable record for the ``dynamic_updates`` JSON section."""
    full = session.stats.full_snapshot()
    mean_apply = sum(apply_seconds) / len(apply_seconds)
    mean_cold = sum(cold_seconds) / len(cold_seconds)
    return {
        "graph": "em",
        "scale": DYNAMIC_BENCH_SCALE,
        "num_deltas": len(apply_seconds),
        "nodes_per_delta": NODES_PER_DELTA,
        "edges_per_delta": EDGES_PER_DELTA,
        "apply_mean_seconds": round(mean_apply, 6),
        "apply_p50_seconds": round(percentile(apply_seconds, 0.50), 6),
        "apply_p95_seconds": round(percentile(apply_seconds, 0.95), 6),
        "cold_mean_seconds": round(mean_cold, 6),
        "cold_p50_seconds": round(percentile(cold_seconds, 0.50), 6),
        "speedup": round(
            percentile(cold_seconds, 0.50) / percentile(apply_seconds, 0.50), 2
        ),
        "target_speedup": TARGET_SPEEDUP,
        "final_version": session.version,
        "patches": full["patches"],
        "invalidations": full["invalidations"],
    }


if __name__ == "__main__":
    # src/ is importable via benchmarks/conftest.py (imported above).
    base = bench_graph("em", scale=DYNAMIC_BENCH_SCALE)
    session = warm_session(base)
    queries = update_workload(base)
    session.run_batch(queries, budget=UPDATE_BUDGET)
    apply_seconds = []
    cold_seconds = []
    for round_index in range(NUM_DELTAS):
        delta = make_delta(session.graph, seed=round_index + 1)
        started = time.perf_counter()
        report = session.apply(delta)
        apply_seconds.append(time.perf_counter() - started)
        started = time.perf_counter()
        cold = build_cold(session.graph)
        cold_seconds.append(time.perf_counter() - started)
        warm_batch = session.run_batch(queries, budget=UPDATE_BUDGET)
        cold_batch = cold.run_batch(queries, budget=UPDATE_BUDGET)
        assert warm_batch.answers() == cold_batch.answers()
        print(f"round {round_index}: {report.summary()}")
    mean_apply = sum(apply_seconds) / len(apply_seconds)
    mean_cold = sum(cold_seconds) / len(cold_seconds)
    print(
        f"apply mean {mean_apply * 1000:.2f}ms vs cold rebuild "
        f"{mean_cold * 1000:.2f}ms ({mean_cold / mean_apply:.1f}x)"
    )
    path = update_bench_json(
        "dynamic_updates", dynamic_payload(apply_seconds, cold_seconds, session)
    )
    print(f"wrote {path}")
