"""Write-ahead-log durability — fold overhead and recovery vs re-ingest.

Not a paper figure: this benchmark prices the durability guarantee the
WAL adds to the graph server.  Two phases on the ``em`` workload:

* **durable fold overhead** — the same insert-delta stream is folded
  through three identically-seeded databases: in-memory (no durability),
  WAL without per-append fsync, and WAL with fsync (the real guarantee).
  The per-fold wall times quantify what journaling and what the fsync
  each cost on top of the copy-on-write fold itself;
* **recovery vs re-ingest** — after a durable run (checkpoint mid-way,
  journal tail beyond it), the database is reopened two ways: crash
  recovery (load checkpoint, replay the log tail through cheap graph
  overlays, build the serving stack once) and full re-ingest (rebuild
  from the base graph, re-folding every delta through the store with its
  index maintenance).  Both must land on the *same head* — verified by
  graph equality and a query — and the regenerate test asserts recovery
  is at least ``TARGET_RECOVERY_SPEEDUP`` (3x) faster.

Results go to ``results/wal.txt`` and the ``wal`` section of
``results/BENCH_wal.json``.
"""

import itertools
import statistics
import tempfile
import time
from pathlib import Path

from conftest import RESULTS_DIR, update_wal_json
from repro.api import GraphDB
from repro.bench.workloads import bench_graph, query_set
from repro.dynamic import GraphDelta
from repro.matching.result import Budget
from repro.store import VersionedGraphStore
from repro.wal import WalDurability

#: Graph scale (matches the service/server benchmark family).
WAL_BENCH_SCALE = 0.25

#: Deltas folded per phase; the recovery phase checkpoints after half,
#: so recovery replays a real journal tail, not an empty log.
NUM_DELTAS = 40
EDGES_PER_DELTA = 5

#: Acceptance bar: re-ingest wall time / recovery wall time.
TARGET_RECOVERY_SPEEDUP = 3.0

WAL_BUDGET = Budget(
    max_matches=2_000, time_limit_seconds=30.0, max_intermediate_results=200_000
)


def delta_stream(graph):
    """NUM_DELTAS deterministic insert-only deltas against a rolling head.

    Each delta re-routes existing edges into fresh pairs (the modulus
    keeps every id valid on every version), exactly like the server
    benchmark's writer churn — the deltas fold against whatever head the
    previous fold produced, so the same stream replays on any store.
    """
    seed_edges = list(graph.edges())
    deltas = []
    num_nodes = graph.num_nodes
    for index in range(NUM_DELTAS):
        delta = GraphDelta(num_nodes)
        for offset in range(EDGES_PER_DELTA):
            source, target = seed_edges[
                (index * EDGES_PER_DELTA + offset) % len(seed_edges)
            ]
            delta.add_edge((source + index + 1) % num_nodes, (target + 2) % num_nodes)
        deltas.append(delta)
    return deltas


def fold_all(db, deltas):
    """Apply every delta, returning per-fold wall times."""
    times = []
    for delta in deltas:
        start = time.perf_counter()
        db.apply(delta)
        times.append(time.perf_counter() - start)
    return times


def run_fold_overhead_phase(graph, deltas, workdir: Path):
    """Phase 1: per-fold cost — in-memory vs WAL vs WAL+fsync."""
    modes = {}
    for mode, fsync in (("memory", None), ("wal", False), ("wal_fsync", True)):
        store = None
        if fsync is None:
            db = GraphDB.open(graph)
        else:
            durability = WalDurability.create(
                str(workdir / f"overhead-{mode}"), graph, fsync=fsync
            )
            store = VersionedGraphStore(graph, durability=durability)
            db = GraphDB.open(store)
        try:
            times = fold_all(db, deltas)
            entry = {
                "folds": len(times),
                "total_seconds": round(sum(times), 6),
                "median_fold_ms": round(statistics.median(times) * 1000, 3),
                "head_version": db.head_version,
            }
            if db.store.durability is not None:
                counters = db.store.durability.counters()
                entry["journal_bytes"] = counters["journal_bytes"]
                entry["journal_seconds"] = counters["journal_seconds"]
            modes[mode] = entry
        finally:
            db.close()
            if store is not None:
                store.close()  # the facade does not own an attached store
    baseline = modes["memory"]["median_fold_ms"] or 1e-6
    for mode in ("wal", "wal_fsync"):
        modes[mode]["overhead_vs_memory"] = round(
            modes[mode]["median_fold_ms"] / baseline, 2
        )
    return {
        "deltas": NUM_DELTAS,
        "edges_per_delta": EDGES_PER_DELTA,
        "modes": modes,
    }


def run_recovery_phase(graph, deltas, workdir: Path):
    """Phase 2: crash recovery vs full re-ingest, same head required."""
    tenant = workdir / "recovery-tenant"
    query = next(iter(query_set(graph, kind="H", templates=("HQ8",)).values()))

    # the "pre-crash" run: durable folds, checkpoint halfway through
    db = GraphDB.open_durable(
        str(tenant), name=graph.name, labels=graph.labels, edges=graph.edges()
    )
    try:
        for index, delta in enumerate(deltas):
            db.apply(delta)
            if index == NUM_DELTAS // 2:
                db.checkpoint()
        head_version = db.head_version
        expected_answer = db.query(query, budget=WAL_BUDGET).occurrence_set()
    finally:
        db.close()  # the "crash": log tail beyond the checkpoint remains

    start = time.perf_counter()
    recovered = GraphDB.open_durable(str(tenant))
    recovery_seconds = time.perf_counter() - start
    try:
        report = recovered.last_recovery
        assert recovered.head_version == head_version
        recovered_graph = recovered.graph
        recovery_answer = recovered.query(query, budget=WAL_BUDGET).occurrence_set()
        replay = {
            "entries_applied": report.entries_applied,
            "entries_skipped": report.entries_skipped,
            "checkpoint_version": report.checkpoint_version,
            "replay_seconds": round(report.seconds, 6),
        }
    finally:
        recovered.close()

    start = time.perf_counter()
    reingested = GraphDB.open(graph)
    try:
        for delta in deltas:
            reingested.apply(delta)
        reingest_seconds = time.perf_counter() - start
        assert reingested.head_version == head_version
        heads_match = reingested.graph == recovered_graph
        answers_match = (
            reingested.query(query, budget=WAL_BUDGET).occurrence_set()
            == recovery_answer
            == expected_answer
        )
    finally:
        reingested.close()

    return {
        "deltas": NUM_DELTAS,
        "head_version": head_version,
        "recovery_seconds": round(recovery_seconds, 6),
        "reingest_seconds": round(reingest_seconds, 6),
        "recovery_speedup": round(reingest_seconds / max(recovery_seconds, 1e-9), 1),
        "target_recovery_speedup": TARGET_RECOVERY_SPEEDUP,
        "heads_match": bool(heads_match),
        "answers_match": bool(answers_match),
        "replay": replay,
    }


def run_wal_bench():
    """Both phases; returns the ``wal`` JSON section."""
    graph = bench_graph("em", scale=WAL_BENCH_SCALE)
    deltas = delta_stream(graph)
    with tempfile.TemporaryDirectory(prefix="bench-wal-") as workdir:
        workdir = Path(workdir)
        fold_overhead = run_fold_overhead_phase(graph, deltas, workdir)
        recovery = run_recovery_phase(graph, deltas, workdir)
    return {
        "graph": "em",
        "scale": WAL_BENCH_SCALE,
        "fold_overhead": fold_overhead,
        "recovery": recovery,
        "recovery_speedup": recovery["recovery_speedup"],
        "target_recovery_speedup": TARGET_RECOVERY_SPEEDUP,
        "heads_match": recovery["heads_match"],
    }


def format_table(payload: dict) -> str:
    overhead = payload["fold_overhead"]
    recovery = payload["recovery"]
    lines = [
        "Write-ahead log: durable fold overhead + recovery vs re-ingest "
        f"(em@{payload['scale']})",
        f"phase 1: {overhead['deltas']} insert deltas "
        f"({overhead['edges_per_delta']} edges each) per mode",
        f"{'mode':<12} {'median fold':>12} {'total':>10} {'vs memory':>10}",
    ]
    for mode, entry in overhead["modes"].items():
        factor = entry.get("overhead_vs_memory")
        lines.append(
            f"{mode:<12} {entry['median_fold_ms']:>10.3f}ms "
            f"{entry['total_seconds']:>9.3f}s "
            f"{'' if factor is None else f'{factor:>9.2f}x'}"
        )
    lines.extend(
        [
            f"phase 2: recover to head v{recovery['head_version']} "
            f"(checkpoint v{recovery['replay']['checkpoint_version']} + "
            f"{recovery['replay']['entries_applied']} replayed entries) "
            "vs re-ingesting every delta",
            f"  recovery: {recovery['recovery_seconds']:.3f}s   "
            f"re-ingest: {recovery['reingest_seconds']:.3f}s   "
            f"speedup: {recovery['recovery_speedup']:.1f}x "
            f"(target {recovery['target_recovery_speedup']}x)",
            f"  heads match: {recovery['heads_match']}; "
            f"query answers match: {recovery['answers_match']}",
        ]
    )
    return "\n".join(lines)


def check_payload(payload: dict) -> None:
    """The acceptance bars (shared by the pytest path and __main__)."""
    recovery = payload["recovery"]
    assert recovery["heads_match"] is True
    assert recovery["answers_match"] is True
    modes = payload["fold_overhead"]["modes"]
    assert len({entry["head_version"] for entry in modes.values()}) == 1
    assert payload["recovery_speedup"] >= TARGET_RECOVERY_SPEEDUP, (
        f"recovery only {payload['recovery_speedup']}x faster than re-ingest; "
        f"target {TARGET_RECOVERY_SPEEDUP}x"
    )


# ---------------------------------------------------------------------- #
# micro-benchmarks
# ---------------------------------------------------------------------- #


def test_durable_fold(benchmark):
    """Benchmark one fsync'd durable fold (journal + publish)."""
    graph = bench_graph("em", scale=WAL_BENCH_SCALE)
    counter = itertools.count()
    with tempfile.TemporaryDirectory(prefix="bench-wal-") as workdir:
        with GraphDB.open_durable(
            str(workdir) + "/tenant",
            name=graph.name,
            labels=graph.labels,
            edges=graph.edges(),
        ) as db:

            def fold():
                # always-effective delta: one fresh node + one edge, so
                # every round journals and publishes (no-ops skip both)
                delta = db.delta()
                node = delta.add_node("B")
                delta.add_edge(next(counter) % graph.num_nodes, node)
                return db.apply(delta)

            report = benchmark(fold)
            benchmark.extra_info["head_version"] = report.new_version


def test_recovery_open(benchmark):
    """Benchmark reopening a durable tenant (checkpoint + tail replay)."""
    graph = bench_graph("em", scale=WAL_BENCH_SCALE)
    deltas = delta_stream(graph)
    with tempfile.TemporaryDirectory(prefix="bench-wal-") as workdir:
        tenant = str(workdir) + "/tenant"
        with GraphDB.open_durable(
            tenant, name=graph.name, labels=graph.labels, edges=graph.edges()
        ) as db:
            for delta in deltas:
                db.apply(delta)
            head = db.head_version

        def reopen():
            with GraphDB.open_durable(tenant) as db:
                return db.head_version

        assert benchmark(reopen) == head


# ---------------------------------------------------------------------- #
# the regenerate benchmark: same head both ways + the >= 3x recovery bar
# ---------------------------------------------------------------------- #


def test_regenerate_wal(benchmark):
    payload = benchmark.pedantic(run_wal_bench, rounds=1, iterations=1)
    check_payload(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "wal.txt").write_text(format_table(payload) + "\n", encoding="utf-8")
    json_path = update_wal_json("wal", payload)
    benchmark.extra_info["recovery_speedup"] = payload["recovery_speedup"]
    benchmark.extra_info["json_path"] = str(json_path)


if __name__ == "__main__":
    # src/ is importable via benchmarks/conftest.py (imported above).
    started = time.perf_counter()
    payload = run_wal_bench()
    print(format_table(payload))
    check_payload(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "wal.txt").write_text(format_table(payload) + "\n", encoding="utf-8")
    path = update_wal_json("wal", payload)
    print(f"wrote {path} ({time.perf_counter() - started:.1f}s)")
