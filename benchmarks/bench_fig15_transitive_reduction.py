"""Fig. 15 — pattern transitive reduction: GM vs GM-NR vs TM on redundant D-queries."""

import pytest

from conftest import BENCH_SCALE_FAST, matcher_benchmark, write_report
from repro.bench.experiments import _queries_with_redundant_edges, fig15_transitive_reduction
from repro.query.transitive import transitive_reduction


@pytest.mark.parametrize("matcher", ["GM", "GM-NR", "TM"])
def test_redundant_descendant_query(benchmark, matcher, em_graph, em_context, fast_budget):
    queries = _queries_with_redundant_edges(em_graph, ("HQ3",))
    query = next(iter(queries.values()))
    matcher_benchmark(benchmark, matcher, em_graph, em_context, query, fast_budget)


def test_transitive_reduction_cost(benchmark, em_graph):
    queries = _queries_with_redundant_edges(em_graph, ("HQ3", "HQ9", "HQ5"))
    benchmark(lambda: [transitive_reduction(query) for query in queries.values()])


def test_regenerate_fig15(benchmark, fast_budget):
    report = benchmark.pedantic(
        lambda: fig15_transitive_reduction(
            datasets=("em",), scale=BENCH_SCALE_FAST, budget=fast_budget
        ),
        rounds=1,
        iterations=1,
    )
    path = write_report(report)
    benchmark.extra_info["rows"] = len(report.rows)
    benchmark.extra_info["table_path"] = str(path)
