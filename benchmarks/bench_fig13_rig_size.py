"""Fig. 13 — RIG size, construction time and query time for GM, GM-S, GM-F, TM."""

import pytest

from conftest import BENCH_SCALE_FAST, matcher_benchmark, representative_query, write_report
from repro.bench.experiments import fig13_rig_size
from repro.matching.gm import GMVariant, GraphMatcher
from repro.rig.stats import rig_statistics


@pytest.mark.parametrize("variant", [GMVariant.GM, GMVariant.GM_S, GMVariant.GM_F],
                         ids=["GM", "GM-S", "GM-F"])
def test_rig_construction_by_variant(benchmark, variant, ep_graph, ep_context):
    query = representative_query(ep_graph, kind="H", template="HQ10")
    matcher = GraphMatcher(ep_graph, context=ep_context, variant=variant)
    report = benchmark(lambda: matcher.build_rig(query))
    stats = rig_statistics(report.rig, ep_graph)
    benchmark.extra_info["rig_size_ratio_pct"] = round(stats.ratio_percent(), 3)


@pytest.mark.parametrize("matcher", ["GM", "GM-F", "TM"])
def test_query_time_by_variant(benchmark, matcher, ep_graph, ep_context, fast_budget):
    query = representative_query(ep_graph, kind="H", template="HQ10")
    matcher_benchmark(benchmark, matcher, ep_graph, ep_context, query, fast_budget)


def test_regenerate_fig13(benchmark, fast_budget):
    report = benchmark.pedantic(
        lambda: fig13_rig_size(scale=BENCH_SCALE_FAST, budget=fast_budget),
        rounds=1,
        iterations=1,
    )
    path = write_report(report)
    benchmark.extra_info["rows"] = len(report.rows)
    benchmark.extra_info["table_path"] = str(path)
