"""Concurrent service — MVCC readers racing a writer vs a serialised session.

Not a paper figure: this benchmark demonstrates the payoff of the
versioned-store + query-service subsystem.  A mixed workload — reader
batches over a fixed hybrid query set, racing a delta feed that alternates
insert-only batches (fast incremental folds) with removal-bearing ones
(which force index rebuilds) — runs through both execution models of
:mod:`repro.bench.concurrency`:

* **serialised** — one :class:`QuerySession` under a single lock, folds
  interleaved ahead of batches, serving state restored inline (the
  single-owner design the store replaces);
* **concurrent** — a :class:`VersionedGraphStore` with its background
  writer folding the same feed while reader threads pin epochs through a
  :class:`QueryService`.

The regenerate test asserts the MVCC reader-batch throughput is at least
``TARGET_SPEEDUP`` times the serialised baseline, then verifies **every**
batch's answers — in both modes — against a cold rebuild of the exact
version the batch was pinned to.  Results go to
``results/service_concurrency.txt`` and the ``service_concurrency``
section of ``results/BENCH_service.json``.
"""

import random
import time

from conftest import RESULTS_DIR, update_service_json
from repro.bench.concurrency import (
    run_concurrent_workload,
    run_serialised_workload,
    verify_batch_consistency,
)
from repro.bench.workloads import bench_graph, query_set
from repro.dynamic import GraphDelta
from repro.matching.result import Budget
from repro.store import VersionedGraphStore

#: Graph scale (matches the session/dynamic benchmarks: same graph family).
SERVICE_BENCH_SCALE = 0.25

#: Reader side: how many batches the workload drains, over how many threads.
NUM_BATCHES = 48
READER_THREADS = 4

#: Writer side: length of the delta feed (alternating insert-only /
#: removal-bearing, see :func:`make_delta_feed`).
NUM_DELTAS = 10
INSERTS_PER_DELTA = 3

SERVICE_BUDGET = Budget(
    max_matches=2_000, time_limit_seconds=10.0, max_intermediate_results=200_000
)

#: Acceptance bar: concurrent reader-batch throughput over serialised.
TARGET_SPEEDUP = 3.0


def make_delta_feed(graph, count: int = NUM_DELTAS, seed: int = 3):
    """An alternating update feed against ``graph``'s initial state.

    Every delta inserts a few random edges; every second delta also removes
    an existing edge, which is the shape that forces the reachability /
    closure rebuilds a serialised owner pays inline.  The feed adds no
    nodes, so every delta stays valid against the evolving head (the
    overlay validates a delta's node base at fold time); re-inserted or
    re-removed edges fold as no-ops, like a real feed replayed in order.
    """
    rng = random.Random(seed)
    edges = list(graph.edges())
    num_nodes = graph.num_nodes
    feed = []
    for index in range(count):
        delta = GraphDelta(num_nodes)
        if index % 2:
            source, target = edges[rng.randrange(len(edges))]
            delta.remove_edge(source, target)
        for _ in range(INSERTS_PER_DELTA):
            a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
            if a != b:
                delta.add_edge(a, b)
        feed.append(delta)
    return feed


def service_workload(graph):
    """Three hybrid template queries per reader batch."""
    return query_set(graph, kind="H", templates=("HQ0", "HQ4", "HQ8"))


def run_both(scale: float = SERVICE_BENCH_SCALE, num_batches: int = NUM_BATCHES,
             num_deltas: int = NUM_DELTAS, reader_threads: int = READER_THREADS):
    """Run the mixed workload through both models; return (serialised, concurrent)."""
    graph = bench_graph("em", scale=scale)
    queries = service_workload(graph)
    deltas = make_delta_feed(graph, num_deltas)
    serialised = run_serialised_workload(
        graph, queries, num_batches, deltas, budget=SERVICE_BUDGET
    )
    concurrent = run_concurrent_workload(
        graph, queries, num_batches, deltas,
        reader_threads=reader_threads, budget=SERVICE_BUDGET,
    )
    return graph, queries, serialised, concurrent


# ---------------------------------------------------------------------- #
# micro-benchmarks
# ---------------------------------------------------------------------- #


def test_store_pin_release(benchmark):
    """Benchmark the reader fast path: pin the head, release the pin."""
    graph = bench_graph("em", scale=SERVICE_BENCH_SCALE)
    store = VersionedGraphStore(graph)

    def pin_release():
        store.pin().release()

    benchmark(pin_release)


def test_store_fold_insert_delta(benchmark):
    """Benchmark one copy-on-write fold+publish of a small insert delta."""
    graph = bench_graph("em", scale=SERVICE_BENCH_SCALE)
    store = VersionedGraphStore(graph)
    with store.pin() as snap:
        snap.session.context
        snap.session.label_bitmaps
    rng = random.Random(11)
    state = {"count": 0}

    def setup():
        head = store.graph
        delta = GraphDelta.for_graph(head)
        node = delta.add_node("L0")
        for _ in range(3):
            delta.add_edge(node, rng.randrange(head.num_nodes))
        return (delta,), {}

    def fold(delta):
        state["count"] += 1
        return store.apply(delta)

    benchmark.pedantic(fold, setup=setup, rounds=10, iterations=1)
    benchmark.extra_info["versions_published"] = state["count"]


# ---------------------------------------------------------------------- #
# the regenerate benchmark: throughput bar + snapshot-exactness
# ---------------------------------------------------------------------- #


def test_regenerate_service_concurrency(benchmark):
    """Mixed readers/writer: assert >= TARGET_SPEEDUP and verify snapshots."""
    graph, queries, serialised, concurrent = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    speedup = concurrent.batch_throughput / max(serialised.batch_throughput, 1e-9)
    assert speedup >= TARGET_SPEEDUP, (
        f"concurrent batches only {speedup:.1f}x the serialised baseline "
        f"({concurrent.batch_throughput:.1f} vs "
        f"{serialised.batch_throughput:.1f} batches/s); target {TARGET_SPEEDUP}x"
    )
    # Readers must have proceeded during folds: the concurrent reader wall
    # cannot have absorbed the serialised apply+rebuild total.
    assert concurrent.reader_wall_seconds < serialised.reader_wall_seconds

    # Every batch, in both modes, must match a cold rebuild of its version.
    verify_batch_consistency(serialised, queries, budget=SERVICE_BUDGET)
    verify_batch_consistency(concurrent, queries, budget=SERVICE_BUDGET)

    payload = service_payload(serialised, concurrent, speedup)
    RESULTS_DIR.mkdir(exist_ok=True)
    table = RESULTS_DIR / "service_concurrency.txt"
    table.write_text(format_table(payload) + "\n", encoding="utf-8")
    json_path = update_service_json("service_concurrency", payload)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["json_path"] = str(json_path)


def service_payload(serialised, concurrent, speedup) -> dict:
    """The machine-readable record for the ``service_concurrency`` section."""
    stats = concurrent.service_stats or {}
    return {
        "graph": "em",
        "scale": SERVICE_BENCH_SCALE,
        "num_batches": serialised.num_batches,
        "queries_per_batch": serialised.num_queries_per_batch,
        "num_deltas": len(serialised.apply_seconds),
        "reader_threads": READER_THREADS,
        "serialised": {
            "reader_wall_seconds": round(serialised.reader_wall_seconds, 6),
            "apply_seconds_total": round(sum(serialised.apply_seconds), 6),
            "batch_throughput": round(serialised.batch_throughput, 2),
        },
        "concurrent": {
            "reader_wall_seconds": round(concurrent.reader_wall_seconds, 6),
            "total_wall_seconds": round(concurrent.total_wall_seconds, 6),
            "batch_throughput": round(concurrent.batch_throughput, 2),
            "versions_served": {
                str(version): count
                for version, count in sorted(concurrent.versions_served.items())
            },
            "store_gc_count": stats.get("store", {}).get("gc_count"),
            "head_version": stats.get("head_version"),
        },
        "speedup": round(speedup, 2),
        "target_speedup": TARGET_SPEEDUP,
        "snapshot_consistency_verified": True,
    }


def format_table(payload: dict) -> str:
    """Human-readable summary written next to the JSON."""
    serialised = payload["serialised"]
    concurrent = payload["concurrent"]
    return "\n".join(
        [
            "Service concurrency (mixed readers + delta feed, em graph)",
            f"workload: {payload['num_batches']} batches x "
            f"{payload['queries_per_batch']} queries, {payload['num_deltas']} deltas, "
            f"{payload['reader_threads']} reader threads",
            f"serialised session:  reader wall {serialised['reader_wall_seconds'] * 1000:.1f}ms "
            f"({serialised['batch_throughput']:.1f} batches/s, "
            f"applies {serialised['apply_seconds_total'] * 1000:.1f}ms inline)",
            f"concurrent service:  reader wall {concurrent['reader_wall_seconds'] * 1000:.1f}ms "
            f"({concurrent['batch_throughput']:.1f} batches/s; folds finished at "
            f"{concurrent['total_wall_seconds'] * 1000:.1f}ms)",
            f"versions served: {concurrent['versions_served']}",
            f"speedup: {payload['speedup']:.1f}x (target {payload['target_speedup']}x)",
            "every batch verified against a cold rebuild of its pinned version",
        ]
    )


if __name__ == "__main__":
    # src/ is importable via benchmarks/conftest.py (imported above).
    started = time.perf_counter()
    graph, queries, serialised, concurrent = run_both()
    speedup = concurrent.batch_throughput / max(serialised.batch_throughput, 1e-9)
    verify_batch_consistency(serialised, queries, budget=SERVICE_BUDGET)
    verify_batch_consistency(concurrent, queries, budget=SERVICE_BUDGET)
    payload = service_payload(serialised, concurrent, speedup)
    print(format_table(payload))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "service_concurrency.txt").write_text(
        format_table(payload) + "\n", encoding="utf-8"
    )
    path = update_service_json("service_concurrency", payload)
    print(f"wrote {path} ({time.perf_counter() - started:.1f}s)")
