"""Fig. 12 — (a) child-constraint check methods; (b) FB construction methods."""

import pytest

from conftest import BENCH_SCALE_FAST, representative_query, write_report
from repro.bench.experiments import fig12_constraint_checking
from repro.rig.build import RIGOptions, build_rig
from repro.simulation.context import ChildCheckMethod
from repro.simulation.fbsim import SimulationOptions, fbsim, fbsim_basic


@pytest.mark.parametrize(
    "method", [ChildCheckMethod.BIN_SEARCH, ChildCheckMethod.BIT_ITER, ChildCheckMethod.BIT_BAT],
    ids=["binSearch", "bitIter", "bitBat"],
)
def test_rig_construction_by_child_check_method(benchmark, method, em_graph, em_context):
    query = representative_query(em_graph, kind="C", template="HQ11")
    options = RIGOptions(child_check=method, simulation_options=SimulationOptions(child_check=method))
    benchmark(lambda: build_rig(em_context, query, options))


@pytest.mark.parametrize("algorithm", ["Gra", "Dag", "DagMap"])
def test_double_simulation_construction(benchmark, algorithm, em_graph, em_context):
    query = representative_query(em_graph, kind="H", template="HQ17")
    if algorithm == "Gra":
        benchmark(lambda: fbsim_basic(em_context, query))
    elif algorithm == "Dag":
        benchmark(lambda: fbsim(em_context, query, options=SimulationOptions(use_change_flags=False)))
    else:
        benchmark(lambda: fbsim(em_context, query, options=SimulationOptions(use_change_flags=True)))


def test_regenerate_fig12(benchmark):
    report = benchmark.pedantic(
        lambda: fig12_constraint_checking(scale=BENCH_SCALE_FAST),
        rounds=1,
        iterations=1,
    )
    path = write_report(report)
    benchmark.extra_info["rows"] = len(report.rows)
    benchmark.extra_info["table_path"] = str(path)
