"""Fig. 9 — C-query evaluation time of GM, TM, JM and ISO on ep, bs, hu."""

import pytest

from conftest import BENCH_SCALE_FAST, matcher_benchmark, representative_query, write_report
from repro.bench.experiments import fig09_child_queries


@pytest.mark.parametrize("matcher", ["GM", "TM", "JM", "ISO"])
def test_child_cyclic_query_ep(benchmark, matcher, ep_graph, ep_context, fast_budget):
    query = representative_query(ep_graph, kind="C", template="HQ8")
    matcher_benchmark(benchmark, matcher, ep_graph, ep_context, query, fast_budget)


@pytest.mark.parametrize("matcher", ["GM", "TM", "JM", "ISO"])
def test_child_clique_query_hu(benchmark, matcher, hu_graph, hu_context, fast_budget):
    query = representative_query(hu_graph, kind="C", template="HQ11")
    matcher_benchmark(benchmark, matcher, hu_graph, hu_context, query, fast_budget)


def test_regenerate_fig9(benchmark, fast_budget):
    report = benchmark.pedantic(
        lambda: fig09_child_queries(datasets=("ep", "hu"), scale=BENCH_SCALE_FAST, budget=fast_budget),
        rounds=1,
        iterations=1,
    )
    path = write_report(report)
    benchmark.extra_info["rows"] = len(report.rows)
    benchmark.extra_info["table_path"] = str(path)
