"""Fig. 10 — query time as the number of data labels varies on em."""

import pytest

from conftest import BENCH_SCALE_FAST, matcher_benchmark, write_report
from repro.bench.experiments import fig10_label_scaling
from repro.graph.generators import with_label_count
from repro.query.generators import instantiate_template
from repro.simulation.context import MatchContext


@pytest.mark.parametrize("num_labels", [5, 20])
def test_gm_query_time_by_label_count(benchmark, num_labels, em_graph, fast_budget):
    graph = with_label_count(em_graph, num_labels, seed=5)
    context = MatchContext(graph)
    query = instantiate_template("HQ4", graph, seed=31)
    matcher_benchmark(benchmark, "GM", graph, context, query, fast_budget)
    benchmark.extra_info["labels"] = num_labels


@pytest.mark.parametrize("matcher", ["TM", "JM"])
def test_baseline_query_time_few_labels(benchmark, matcher, em_graph, fast_budget):
    graph = with_label_count(em_graph, 5, seed=5)
    context = MatchContext(graph)
    query = instantiate_template("HQ4", graph, seed=31)
    matcher_benchmark(benchmark, matcher, graph, context, query, fast_budget)


def test_regenerate_fig10(benchmark, fast_budget):
    report = benchmark.pedantic(
        lambda: fig10_label_scaling(
            label_counts=(5, 10, 20), scale=BENCH_SCALE_FAST, budget=fast_budget
        ),
        rounds=1,
        iterations=1,
    )
    path = write_report(report)
    benchmark.extra_info["rows"] = len(report.rows)
    benchmark.extra_info["table_path"] = str(path)
