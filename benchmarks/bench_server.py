"""Wire-protocol server — concurrent remote clients vs in-process truth.

Not a paper figure: this benchmark demonstrates that putting the
:class:`~repro.api.GraphDB` facade on the wire keeps both its semantics
and its streaming character.  One :class:`~repro.server.GraphServer`
process-local instance serves the ``em`` workload; two phases run:

* **correctness under concurrency** — ``NUM_CLIENTS`` (>= 8) concurrent
  :class:`~repro.client.GraphClient` connections each pin a version, run
  query batches and drain streams against their pin while a writer thread
  keeps publishing insert deltas behind them.  *Every* remote batch and
  stream result is verified occurrence-for-occurrence against an
  in-process run of the very version the remote pin named (the remote pin
  keeps that version retained, so the in-process comparison pins it too);
* **remote time-to-first-page** — on the full-scale ``em`` graph, the
  wall time until the first streamed page crosses the socket is compared
  with the wall time of the same query's full remote completion.  The
  regenerate test asserts the speedup is at least
  ``TARGET_FIRST_PAGE_SPEEDUP`` (3x) — pipelining must survive the
  network hop, not just the in-process queue.

Results go to ``results/server.txt`` and the ``server`` section of
``results/BENCH_server.json``.
"""

import statistics
import threading
import time

from conftest import RESULTS_DIR, update_server_json
from repro.api import GraphDB
from repro.bench.workloads import bench_graph, query_set
from repro.client import GraphClient
from repro.dynamic import GraphDelta
from repro.matching.result import Budget
from repro.server import GraphCatalog, GraphServer

#: Phase-1 graph scale (matches the service-concurrency benchmark family).
SERVER_BENCH_SCALE = 0.25

#: Phase-2 graph scale: the full-size em graph of the streaming benchmark.
STREAMING_SCALE = 1.0

#: Concurrent remote clients (the acceptance bar requires >= 8).
NUM_CLIENTS = 8

#: Verified batches per client (each against a freshly pinned version).
BATCHES_PER_CLIENT = 3

#: Writer churn behind the readers: insert-only deltas, edges per delta.
NUM_DELTAS = 12
EDGES_PER_DELTA = 3

SERVER_BUDGET = Budget(
    max_matches=2_000, time_limit_seconds=30.0, max_intermediate_results=200_000
)

#: Phase-2 budget: enumeration-bound, like the streaming benchmark.
FIRST_PAGE_BUDGET = Budget(
    max_matches=200_000, time_limit_seconds=120.0, max_intermediate_results=None
)

#: Acceptance bar: remote full completion / remote time-to-first-page.
TARGET_FIRST_PAGE_SPEEDUP = 3.0

#: Measurement repetitions for phase 2 (median taken).
ROUNDS = 3


def batch_workload(graph):
    """Three hybrid template queries per remote batch."""
    return query_set(graph, kind="H", templates=("HQ0", "HQ4", "HQ8"))


def streaming_workload(graph):
    """The enumeration-bound queries of the streaming benchmark."""
    queries = {}
    for kind, template in (("H", "HQ1"), ("D", "DQ0")):
        generated = query_set(
            graph, kind=kind, templates=(template.replace(kind + "Q", "HQ"),)
        )
        queries.update(generated)
    return queries


def writer_churn(db, stop_event, seed_edges, applied):
    """Publish small insert-only deltas until asked to stop."""
    index = 0
    while not stop_event.is_set() and index < NUM_DELTAS:
        head = db.graph
        delta = GraphDelta.for_graph(head)
        for offset in range(EDGES_PER_DELTA):
            source, target = seed_edges[(index * EDGES_PER_DELTA + offset) % len(seed_edges)]
            # Re-route an existing edge's endpoints into a fresh pair; the
            # modulus keeps ids valid on every published version.
            delta.add_edge((source + 1) % head.num_nodes, (target + 2) % head.num_nodes)
        report = db.apply(delta)
        applied.append(report.new_version)
        index += 1
        time.sleep(0.01)


def run_client(index, address, db, queries, results, errors):
    """One remote client: pinned batches + a pinned stream, all verified."""
    try:
        verified_batches = 0
        verified_streams = 0
        versions = set()
        with GraphClient(*address, graph="em", timeout=120.0) as client:
            for _ in range(BATCHES_PER_CLIENT):
                snapshot = client.pin()
                try:
                    versions.add(snapshot.version)
                    remote = snapshot.run_batch(
                        queries, engine="GM", budget=SERVER_BUDGET
                    )
                    assert remote.version == snapshot.version
                    # The remote pin keeps the version retained, so the
                    # in-process store can pin the same epoch for truth.
                    with db.store.pin(snapshot.version) as local_snap:
                        for outcome in remote.outcomes:
                            local = local_snap.query(
                                queries[outcome.name], engine="GM", budget=SERVER_BUDGET
                            )
                            assert outcome.occurrence_set() == local.occurrence_set(), (
                                f"client {index}: batch query {outcome.name} diverged "
                                f"at version {snapshot.version}"
                            )
                            assert outcome.num_matches == local.num_matches
                        verified_batches += 1

                        # Stream one query under the same pin and verify the
                        # concatenated pages against the same local truth.
                        name = next(iter(queries))
                        streamed = []
                        with snapshot.stream(
                            queries[name], engine="GM", budget=SERVER_BUDGET,
                            page_size=64,
                        ) as stream:
                            assert stream.version == snapshot.version
                            for page in stream.pages(timeout=120.0):
                                streamed.extend(page)
                        local = local_snap.query(
                            queries[name], engine="GM", budget=SERVER_BUDGET
                        )
                        assert set(streamed) == local.occurrence_set(), (
                            f"client {index}: streamed pages diverged at "
                            f"version {snapshot.version}"
                        )
                        verified_streams += 1
                finally:
                    snapshot.release()
        results[index] = {
            "verified_batches": verified_batches,
            "verified_streams": verified_streams,
            "versions": sorted(versions),
        }
    except Exception as exc:  # pragma: no cover - surfaced by the driver
        errors.append((index, repr(exc)))


def run_concurrent_phase(server, db, graph):
    """Phase 1: NUM_CLIENTS concurrent verified clients racing a writer."""
    queries = batch_workload(graph)
    stop_event = threading.Event()
    applied = []
    writer = threading.Thread(
        target=writer_churn,
        args=(db, stop_event, list(graph.edges()), applied),
        daemon=True,
    )
    results = {}
    errors = []
    clients = [
        threading.Thread(
            target=run_client,
            args=(index, server.address, db, queries, results, errors),
            daemon=True,
        )
        for index in range(NUM_CLIENTS)
    ]
    started = time.perf_counter()
    writer.start()
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join(timeout=600.0)
    stop_event.set()
    writer.join(timeout=60.0)
    wall = time.perf_counter() - started
    if errors:
        raise AssertionError(f"remote verification failed: {errors}")
    versions_served = sorted({v for entry in results.values() for v in entry["versions"]})
    return {
        "clients": NUM_CLIENTS,
        "batches_per_client": BATCHES_PER_CLIENT,
        "queries_per_batch": len(queries),
        "wall_seconds": round(wall, 6),
        "deltas_published": len(applied),
        "versions_served": versions_served,
        "verified_batches": sum(e["verified_batches"] for e in results.values()),
        "verified_streams": sum(e["verified_streams"] for e in results.values()),
        "remote_matches_verified": True,
    }


def run_first_page_phase(server):
    """Phase 2: remote time-to-first-page vs remote full completion (em@1.0)."""
    graph = bench_graph("em", scale=STREAMING_SCALE)
    db = GraphDB.open(graph)
    server.catalog.attach("em-large", db)
    try:
        queries = streaming_workload(graph)
        with GraphClient(*server.address, graph="em-large", timeout=300.0) as client:
            per_query = {}
            for name, query in queries.items():
                client.query(query, budget=FIRST_PAGE_BUDGET)  # warm the epoch
                fulls, firsts = [], []
                num_matches = 0
                still_running = False
                for _ in range(ROUNDS):
                    start = time.perf_counter()
                    report = client.query(query, budget=FIRST_PAGE_BUDGET)
                    fulls.append(time.perf_counter() - start)
                    num_matches = report.num_matches

                    start = time.perf_counter()
                    stream = client.stream(
                        query, budget=FIRST_PAGE_BUDGET, page_size=256
                    )
                    pages = stream.pages(timeout=300.0)
                    first_page = next(pages)
                    firsts.append(time.perf_counter() - start)
                    # The query is still enumerating while we already hold
                    # occurrences: the pipelining proof, across the socket.
                    still_running = (
                        still_running
                        or client.stats()["pinned_epochs"] >= 1
                    )
                    assert len(first_page) >= 1
                    stream.close()
                full = statistics.median(fulls)
                first = statistics.median(firsts)
                per_query[name] = {
                    "num_matches": num_matches,
                    "remote_full_seconds": round(full, 6),
                    "remote_first_page_seconds": round(first, 6),
                    "speedup": round(full / max(first, 1e-9), 1),
                    "stream_open_during_first_page": still_running,
                }
            min_speedup = min(entry["speedup"] for entry in per_query.values())
            return {
                "graph": "em",
                "scale": STREAMING_SCALE,
                "budget_max_matches": FIRST_PAGE_BUDGET.max_matches,
                "queries": per_query,
                "min_first_page_speedup": min_speedup,
                "target_first_page_speedup": TARGET_FIRST_PAGE_SPEEDUP,
            }
    finally:
        server.catalog.drop("em-large")
        db.close()


def run_server_bench():
    """Both phases against one server; returns the ``server`` JSON section."""
    graph = bench_graph("em", scale=SERVER_BENCH_SCALE)
    db = GraphDB.open(graph)
    catalog = GraphCatalog()
    catalog.attach("em", db)
    server = GraphServer(catalog)
    server.start()
    try:
        concurrency = run_concurrent_phase(server, db, graph)
        first_page = run_first_page_phase(server)
    finally:
        server.close()
        catalog.close()
        db.close()
    return {
        "concurrency": concurrency,
        "first_page": first_page,
        "min_first_page_speedup": first_page["min_first_page_speedup"],
        "target_first_page_speedup": TARGET_FIRST_PAGE_SPEEDUP,
        "remote_matches_verified": concurrency["remote_matches_verified"],
    }


def format_table(payload: dict) -> str:
    concurrency = payload["concurrency"]
    first_page = payload["first_page"]
    lines = [
        "Wire-protocol server: concurrent remote clients + streaming over the socket",
        f"phase 1 (em@{SERVER_BENCH_SCALE}): {concurrency['clients']} clients x "
        f"{concurrency['batches_per_client']} pinned batches "
        f"({concurrency['queries_per_batch']} queries each) racing "
        f"{concurrency['deltas_published']} published deltas "
        f"in {concurrency['wall_seconds']:.2f}s",
        f"  versions served: {concurrency['versions_served']}; "
        f"{concurrency['verified_batches']} batches + "
        f"{concurrency['verified_streams']} streams verified against "
        "in-process runs of the same pinned versions",
        f"phase 2 (em@{first_page['scale']}): remote first page vs remote full query",
        f"{'query':<8} {'matches':>9} {'full':>12} {'first page':>12} {'speedup':>9}",
    ]
    for name, entry in first_page["queries"].items():
        lines.append(
            f"{name:<8} {entry['num_matches']:>9} "
            f"{entry['remote_full_seconds'] * 1000:>10.2f}ms "
            f"{entry['remote_first_page_seconds'] * 1000:>10.3f}ms "
            f"{entry['speedup']:>8.1f}x"
        )
    lines.append(
        f"min remote first-page speedup: {first_page['min_first_page_speedup']:.1f}x "
        f"(target {first_page['target_first_page_speedup']}x)"
    )
    return "\n".join(lines)


def check_payload(payload: dict) -> None:
    """The acceptance bars (shared by the pytest path and __main__)."""
    concurrency = payload["concurrency"]
    assert concurrency["clients"] >= 8
    assert concurrency["remote_matches_verified"] is True
    assert concurrency["verified_batches"] == NUM_CLIENTS * BATCHES_PER_CLIENT
    assert concurrency["verified_streams"] == NUM_CLIENTS * BATCHES_PER_CLIENT
    assert payload["min_first_page_speedup"] >= TARGET_FIRST_PAGE_SPEEDUP, (
        f"remote first page only {payload['min_first_page_speedup']}x faster than "
        f"remote full completion; target {TARGET_FIRST_PAGE_SPEEDUP}x"
    )


# ---------------------------------------------------------------------- #
# micro-benchmarks
# ---------------------------------------------------------------------- #


def test_remote_query_roundtrip(benchmark):
    """Benchmark one warm remote query round trip (protocol overhead)."""
    graph = bench_graph("em", scale=SERVER_BENCH_SCALE)
    with GraphDB.open(graph) as db:
        catalog = GraphCatalog()
        catalog.attach("em", db)
        with GraphServer(catalog) as server:
            queries = batch_workload(graph)
            name = next(iter(queries))
            with GraphClient(*server.address, graph="em") as client:
                client.query(queries[name], budget=SERVER_BUDGET)  # warm
                report = benchmark(
                    lambda: client.query(queries[name], budget=SERVER_BUDGET)
                )
                benchmark.extra_info["matches"] = report.num_matches


def test_remote_ping(benchmark):
    """Benchmark the protocol floor: one empty round trip."""
    with GraphServer() as server:
        with GraphClient(*server.address) as client:
            assert benchmark(client.ping) is True


# ---------------------------------------------------------------------- #
# the regenerate benchmark: >= 8 verified clients + the >= 3x remote bar
# ---------------------------------------------------------------------- #


def test_regenerate_server(benchmark):
    payload = benchmark.pedantic(run_server_bench, rounds=1, iterations=1)
    check_payload(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "server.txt").write_text(
        format_table(payload) + "\n", encoding="utf-8"
    )
    json_path = update_server_json("server", payload)
    benchmark.extra_info["min_speedup"] = payload["min_first_page_speedup"]
    benchmark.extra_info["json_path"] = str(json_path)


if __name__ == "__main__":
    # src/ is importable via benchmarks/conftest.py (imported above).
    started = time.perf_counter()
    payload = run_server_bench()
    print(format_table(payload))
    check_payload(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "server.txt").write_text(
        format_table(payload) + "\n", encoding="utf-8"
    )
    path = update_server_json("server", payload)
    print(f"wrote {path} ({time.perf_counter() - started:.1f}s)")
