"""Replication — aggregate read throughput: 3 replicas vs primary-only.

Not a paper figure: this benchmark demonstrates that the replication
subsystem actually buys read capacity.  The serving fleet it models is
latency-bound, not CPU-bound: every *read* op on every node carries a
fixed emulated per-request service delay (``EMULATED_READ_DELAY`` of
asyncio sleep injected into the bench child-server's dispatch path only —
production code is untouched), the stand-in for the disk/network work a
real deployment performs per request.  Under that model a single node's
read capacity is capped by ``fan_in / (delay + cpu)``, and adding replicas
adds capacity — which is the claim replication makes.

Two arms with **matched per-node client fan-in** (the fair comparison: a
node is equally loaded in both arms):

* **primary-only** — ``CLIENTS_PER_NODE`` concurrent clients drive the
  em@1.0 read mix (warm hybrid ``count`` queries) against the primary;
* **replicated** — the primary plus 3 :class:`~repro.replication.ReplicaServer`
  subprocesses tailing its delta log; ``3 x CLIENTS_PER_NODE`` concurrent
  :class:`~repro.client.RoutedClient` sessions drive the same mix, reads
  fanning out round-robin across the replicas.

The regenerate test asserts the replicated arm's aggregate read
throughput is at least ``TARGET_SPEEDUP`` (2x) of the primary-only arm,
that every routed read observed the written version (read-your-writes),
and that the replication lag metric families are present in the replicas'
``server_metrics()``.

Results go to ``results/replication.txt`` and the ``replication`` section
of ``results/BENCH_replication.json``.
"""

import os
import subprocess
import sys
import tempfile
import textwrap
import threading
import time

from conftest import RESULTS_DIR, update_replication_json
from repro.bench.workloads import bench_graph, query_set
from repro.client import GraphClient, RoutedClient
from repro.matching.result import Budget

#: The read mix runs on the full-scale em graph (the paper's em workload).
REPLICATION_SCALE = float(os.environ.get("REPLICATION_BENCH_SCALE", "1.0"))

#: Concurrent clients per serving node — identical in both arms.
CLIENTS_PER_NODE = int(os.environ.get("REPLICATION_BENCH_CLIENTS", "4"))

#: Read replicas in the replicated arm.
NUM_REPLICAS = 3

#: Measurement window per arm (seconds); CI shrinks this via the env knob.
MEASURE_SECONDS = float(os.environ.get("REPLICATION_BENCH_SECONDS", "6.0"))

#: Emulated per-request service delay on read ops, bench harness only.
EMULATED_READ_DELAY = float(os.environ.get("REPLICATION_BENCH_DELAY", "0.04"))

#: Acceptance bar: replicated aggregate reads / primary-only reads.
TARGET_SPEEDUP = 2.0

#: Hybrid templates of the em read mix.
TEMPLATES = ("HQ0", "HQ4", "HQ8")

READ_BUDGET = Budget(
    max_matches=50, time_limit_seconds=30.0, max_intermediate_results=200_000
)


# The bench child servers: production GraphServer / ReplicaServer with the
# emulated read-service delay patched into the *bench process only*.  The
# patch sleeps on the event loop (no executor thread is held), exactly like
# a real node waiting on disk or a downstream service.
_DELAY_PATCH = """
import asyncio
from repro.server import server as server_module

READ_OPS = {"query", "count", "histogram", "explain", "run_batch"}
_dispatch = server_module._Connection._dispatch

async def _delayed_dispatch(self, frame):
    if frame.get("op") in READ_OPS:
        await asyncio.sleep(DELAY)
    await _dispatch(self, frame)

server_module._Connection._dispatch = _delayed_dispatch
"""

CHILD_PRIMARY = textwrap.dedent(
    """
    import sys, time
    DELAY = float(sys.argv[2])
    {patch}
    from repro.server import GraphServer

    server = GraphServer(data_dir=sys.argv[1])
    host, port = server.start()
    print(f"{{host}} {{port}}", flush=True)
    time.sleep(3600)
    """
).format(patch=_DELAY_PATCH)

CHILD_REPLICA = textwrap.dedent(
    """
    import sys, time
    DELAY = float(sys.argv[3])
    {patch}
    from repro.replication import ReplicaServer

    replica = ReplicaServer(sys.argv[1], int(sys.argv[2]))
    host, port = replica.start()
    print(f"{{host}} {{port}}", flush=True)
    time.sleep(3600)
    """
).format(patch=_DELAY_PATCH)


def _child_env():
    src_dir = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src_dir) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


def _spawn(script, *args):
    child = subprocess.Popen(
        [sys.executable, "-c", script, *[str(arg) for arg in args]],
        stdout=subprocess.PIPE,
        env=_child_env(),
        text=True,
    )
    line = child.stdout.readline().strip()
    if not line:
        child.kill()
        raise AssertionError("bench child never announced its address")
    host, port = line.split()
    return child, (host, int(port))


def _terminate(child):
    if child.poll() is None:
        child.kill()
        child.wait(timeout=30.0)


def _wait_until(predicate, timeout=60.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


def _read_loop(make_client, queries, expected, stop_event, counters, index, errors):
    """One client session: drive the read mix until asked to stop."""
    try:
        client = make_client()
        try:
            names = list(queries)
            position = 0
            served = 0
            while not stop_event.is_set():
                name = names[position % len(names)]
                position += 1
                count = client.count(queries[name], budget=READ_BUDGET)
                if count != expected[name]:
                    raise AssertionError(
                        f"read diverged: {name} -> {count}, expected {expected[name]}"
                    )
                served += 1
                counters[index] = served
        finally:
            client.close()
    except Exception as exc:  # pragma: no cover - surfaced by the driver
        if not stop_event.is_set():
            errors.append((index, repr(exc)))


def _run_arm(name, num_clients, make_client, queries, expected):
    """Measure one arm: aggregate completed reads over the fixed window."""
    stop_event = threading.Event()
    counters = [0] * num_clients
    errors = []
    threads = [
        threading.Thread(
            target=_read_loop,
            args=(make_client, queries, expected, stop_event, counters, index, errors),
            daemon=True,
        )
        for index in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    # brief warm-up so every session holds a warm connection + query cache
    time.sleep(1.0)
    baseline = list(counters)
    started = time.perf_counter()
    time.sleep(MEASURE_SECONDS)
    measured = [after - before for after, before in zip(counters, baseline)]
    wall = time.perf_counter() - started
    stop_event.set()
    for thread in threads:
        thread.join(timeout=30.0)
    if errors:
        raise AssertionError(f"{name} arm failed: {errors}")
    total = sum(measured)
    return {
        "clients": num_clients,
        "reads": total,
        "wall_seconds": round(wall, 6),
        "reads_per_second": round(total / wall, 2),
        "per_client_reads": measured,
    }


def run_replication_bench():
    """Both arms against one primary; returns the ``replication`` section."""
    graph = bench_graph("em", scale=REPLICATION_SCALE)
    queries = query_set(graph, kind="H", templates=TEMPLATES)

    data_dir = tempfile.mkdtemp(prefix="bench-replication-")
    primary, primary_addr = _spawn(CHILD_PRIMARY, data_dir, EMULATED_READ_DELAY)
    replicas = []
    try:
        with GraphClient(*primary_addr, timeout=120.0) as client:
            client.create_graph("em", labels=graph.labels, edges=graph.edges())
            client.ingest(labels=["X"], edges=[(0, graph.num_nodes)])
            head = client.info()["head_version"]
            expected = {
                name: client.count(query, budget=READ_BUDGET)
                for name, query in queries.items()
            }

        def primary_client():
            return GraphClient(*primary_addr, graph="em", timeout=120.0)

        arm_primary = _run_arm(
            "primary-only", CLIENTS_PER_NODE, primary_client, queries, expected
        )

        for _ in range(NUM_REPLICAS):
            child, address = _spawn(
                CHILD_REPLICA, primary_addr[0], primary_addr[1], EMULATED_READ_DELAY
            )
            replicas.append((child, address))

        def replicas_caught_up():
            for _, address in replicas:
                with GraphClient(*address, graph="em", timeout=30.0) as probe:
                    if probe.replica_status().get("head_version") != head:
                        return False
            return True

        _wait_until(replicas_caught_up, message="replica catch-up")

        replica_addrs = [address for _, address in replicas]
        routed_clients = []

        def routed_client():
            client = RoutedClient(
                primary_addr, replicas=replica_addrs, graph="em", timeout=120.0
            )
            routed_clients.append(client)
            return client

        arm_replicated = _run_arm(
            "replicated",
            NUM_REPLICAS * CLIENTS_PER_NODE,
            routed_client,
            queries,
            expected,
        )

        # reads must have been served by the replicas, spread across all 3
        reads_by_target = {}
        for client in routed_clients:
            families = client.registry.snapshot()
            for sample in families.get("routed_reads_total", {}).get("values", ()):
                target = sample["labels"].get("target", "?")
                reads_by_target[target] = reads_by_target.get(target, 0) + sample["value"]
        replica_reads = sum(
            value for target, value in reads_by_target.items() if target != "primary"
        )

        # the lag metric families are live on every replica's server metrics
        lag_families = (
            "replication_lag_versions",
            "replication_lag_seconds",
            "replication_connected",
            "replication_frames_applied_total",
        )
        with GraphClient(*replica_addrs[0], graph="em", timeout=30.0) as probe:
            metrics = probe.server_metrics()
            lag_present = all(name in metrics for name in lag_families)
            lag_versions = metrics["replication_lag_versions"]["values"][0]["value"]

        speedup = arm_replicated["reads_per_second"] / max(
            arm_primary["reads_per_second"], 1e-9
        )
        return {
            "graph": "em",
            "scale": REPLICATION_SCALE,
            "templates": list(TEMPLATES),
            "budget_max_matches": READ_BUDGET.max_matches,
            "head_version": head,
            "emulated_read_delay_seconds": EMULATED_READ_DELAY,
            "delay_note": (
                "fixed per-read service delay injected into the bench child "
                "servers' dispatch path only (asyncio sleep; no executor "
                "thread held) — the fleet is latency-bound, as replicated "
                "serving deployments are; per-node client fan-in is matched "
                "across arms"
            ),
            "clients_per_node": CLIENTS_PER_NODE,
            "num_replicas": NUM_REPLICAS,
            "measure_seconds": MEASURE_SECONDS,
            "primary_only": arm_primary,
            "replicated": arm_replicated,
            "reads_by_target": {k: int(v) for k, v in sorted(reads_by_target.items())},
            "replica_reads": int(replica_reads),
            "replication_lag_metrics_present": lag_present,
            "replication_lag_versions": lag_versions,
            "read_your_writes_verified": True,  # every read checked vs head counts
            "speedup": round(speedup, 2),
            "target_speedup": TARGET_SPEEDUP,
        }
    finally:
        for child, _ in replicas:
            _terminate(child)
        _terminate(primary)
        import shutil

        shutil.rmtree(data_dir, ignore_errors=True)


def format_table(payload: dict) -> str:
    primary = payload["primary_only"]
    replicated = payload["replicated"]
    lines = [
        "Replication: aggregate read throughput, 3 replicas vs primary-only "
        f"(em@{payload['scale']}, {payload['emulated_read_delay_seconds'] * 1000:.0f}ms "
        "emulated read service delay, matched per-node fan-in)",
        f"{'arm':<14} {'nodes':>5} {'clients':>8} {'reads':>8} {'reads/s':>9}",
        f"{'primary-only':<14} {1:>5} {primary['clients']:>8} "
        f"{primary['reads']:>8} {primary['reads_per_second']:>9.1f}",
        f"{'replicated':<14} {payload['num_replicas']:>5} {replicated['clients']:>8} "
        f"{replicated['reads']:>8} {replicated['reads_per_second']:>9.1f}",
        f"reads by target: {payload['reads_by_target']}",
        f"replication lag at measurement end: {payload['replication_lag_versions']} versions",
        f"aggregate read speedup: {payload['speedup']:.2f}x "
        f"(target {payload['target_speedup']}x)",
    ]
    return "\n".join(lines)


def check_payload(payload: dict) -> None:
    """The acceptance bars (shared by the pytest path and __main__)."""
    assert payload["num_replicas"] == NUM_REPLICAS
    assert payload["replication_lag_metrics_present"] is True
    assert payload["read_your_writes_verified"] is True
    assert payload["replica_reads"] > 0, "no read was served by a replica"
    assert payload["speedup"] >= payload["target_speedup"], (
        f"replicated arm only {payload['speedup']}x the primary-only read "
        f"throughput; target {payload['target_speedup']}x"
    )


# ---------------------------------------------------------------------- #
# the regenerate benchmark: the >= 2x aggregate-read-throughput bar
# ---------------------------------------------------------------------- #


def test_regenerate_replication(benchmark):
    payload = benchmark.pedantic(run_replication_bench, rounds=1, iterations=1)
    check_payload(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "replication.txt").write_text(
        format_table(payload) + "\n", encoding="utf-8"
    )
    json_path = update_replication_json("replication", payload)
    benchmark.extra_info["speedup"] = payload["speedup"]
    benchmark.extra_info["json_path"] = str(json_path)


if __name__ == "__main__":
    # src/ is importable via benchmarks/conftest.py (imported above).
    started = time.perf_counter()
    payload = run_replication_bench()
    print(format_table(payload))
    check_payload(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "replication.txt").write_text(
        format_table(payload) + "\n", encoding="utf-8"
    )
    path = update_replication_json("replication", payload)
    print(f"wrote {path} ({time.perf_counter() - started:.1f}s)")
