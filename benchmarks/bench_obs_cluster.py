"""Cluster-observability overhead — traced + federated fleet vs plain fleet.

Not a paper figure: this benchmark proves the cluster observability plane
(PR 10) stays out of the serving hot path.  One in-process fleet — a
primary plus two :class:`~repro.replication.ReplicaServer` tails — serves
the full-scale ``em`` graph through a :class:`~repro.client.RoutedClient`,
and the same mixed workload (enumeration-bound hybrid queries plus small
ingests) runs under two arms:

* **baseline** — writes untraced, no scraper anywhere: exactly the PR 9
  fleet;
* **observed** — every write distributed-traced (``trace=True``: router
  root span, primary fold/journal/publish spans, a ``replica_apply``
  span on each replica) *and* a :class:`~repro.obs.ClusterMonitor`
  scraping health + per-tenant metrics from all three nodes on a short
  interval in the background.

Each round runs both arms back to back in rotating order and contributes
one *paired* ratio (observed round time over the baseline round time
measured moments apart); the median of those ratios is the overhead
estimate — robust against the round-to-round drift shared CI runners
exhibit.  The regenerate test asserts the overhead stays at or below
``TARGET_OVERHEAD`` (5%), writes the table to ``results/obs_cluster.txt``
and the machine-readable record to the ``obs_cluster`` section of
``results/BENCH_obs_cluster.json``.
"""

import os
import time

from conftest import RESULTS_DIR, update_obs_cluster_json
from repro.bench.workloads import bench_graph, query_set
from repro.client import GraphClient, RoutedClient
from repro.matching.result import Budget
from repro.obs import ClusterMonitor
from repro.replication import ReplicaServer
from repro.server import GraphServer

#: Full-scale em graph — the acceptance criterion names em@1.0.
OBS_CLUSTER_SCALE = float(os.environ.get("OBS_CLUSTER_BENCH_SCALE", "1.0"))

#: Per-query budget (CI-sized but enumeration still dominates).
OBS_CLUSTER_BUDGET = Budget(
    max_matches=50_000, time_limit_seconds=60.0, max_intermediate_results=None
)

#: Acceptance bar on the fully-observed configuration.
TARGET_OVERHEAD = 0.05

#: Interleaved rounds (one paired ratio per round; the median is taken).
ROUNDS = int(os.environ.get("OBS_CLUSTER_BENCH_ROUNDS", "12"))

#: Read replicas behind the router.
NUM_REPLICAS = 2

#: Background scrape period of the observed arm's monitor — the
#: :class:`ClusterMonitor` / ops-console default cadence.
SCRAPE_INTERVAL = 2.0

#: Writes folded per round (tiny isolated nodes; the graph stays em-shaped).
WRITES_PER_ROUND = 4


def _workload_queries(graph):
    """Enumeration-bound hybrid queries — the regime in which per-request
    observability cost must prove itself amortised."""
    queries = dict(query_set(graph, kind="H", templates=("HQ1", "HQ2")))
    queries.update(query_set(graph, kind="D", templates=("HQ1", "HQ2")))
    return queries


def _run_round(routed, queries, traced: bool) -> float:
    """One arm's round: the query set plus a few writes, wall-clocked."""
    start = time.perf_counter()
    for index in range(WRITES_PER_ROUND):
        routed.ingest(
            labels=["BenchW"], edges=(), trace=True if traced else None
        )
    for name, query in queries.items():
        routed.query(query, budget=OBS_CLUSTER_BUDGET, name=name)
    return time.perf_counter() - start


def run_obs_cluster_bench(scale: float = OBS_CLUSTER_SCALE):
    graph = bench_graph("em", scale=scale)
    queries = _workload_queries(graph)
    replicas = []
    routed = None
    monitor = None
    with GraphServer(node="bench-primary") as server:
        host, port = server.address
        try:
            with GraphClient(host, port, timeout=120.0) as client:
                client.create_graph("em", labels=graph.labels, edges=graph.edges())
            for index in range(NUM_REPLICAS):
                replica = ReplicaServer(
                    host, port, node=f"bench-replica-{index}"
                )
                replica.start()
                replicas.append(replica)
            routed = RoutedClient(
                (host, port),
                replicas=[replica.address for replica in replicas],
                graph="em",
                timeout=120.0,
            )
            monitor = ClusterMonitor(
                [server.address] + [replica.address for replica in replicas],
                interval=SCRAPE_INTERVAL,
            )

            # Warm both paths once (index builds, connections, replica
            # catch-up) outside the measurement.
            _run_round(routed, queries, traced=False)
            monitor.start()
            _run_round(routed, queries, traced=True)
            monitor.stop()

            rounds = {"baseline": [], "observed": []}
            for index in range(ROUNDS):
                # Both arms run back to back inside one round, order
                # rotating each round: machine drift between rounds
                # cancels in the per-round ratios.  The monitor scrapes
                # only while the observed arm runs — the baseline arm is
                # the genuinely unobserved fleet.
                arms = ["baseline", "observed"]
                if index % 2:
                    arms.reverse()
                for name in arms:
                    if name == "observed":
                        monitor.start()
                        rounds[name].append(
                            _run_round(routed, queries, traced=True)
                        )
                        monitor.stop()
                    else:
                        rounds[name].append(
                            _run_round(routed, queries, traced=False)
                        )

            # The observed plane must actually have observed: a stitched
            # trace and a federated lag gauge per replica.
            trace_spans = routed.trace_spans()
            federated = monitor.scrape_once()
            lag_values = (
                federated["metrics"]
                .get("replication_lag_versions", {})
                .get("values", [])
            )
            lag_nodes = sorted(
                {value["labels"]["node"] for value in lag_values}
            )
            num_matches = sum(
                routed.query(query, budget=OBS_CLUSTER_BUDGET).num_matches
                for query in queries.values()
            )
        finally:
            if monitor is not None:
                monitor.stop()
            if routed is not None:
                routed.close()
            for replica in replicas:
                replica.close()

    ratios = sorted(
        observed_seconds / max(baseline_seconds, 1e-9)
        for baseline_seconds, observed_seconds in zip(
            rounds["baseline"], rounds["observed"]
        )
    )
    overhead = ratios[len(ratios) // 2] - 1.0
    return {
        "graph": "em",
        "scale": scale,
        "num_queries": len(queries),
        "num_matches": num_matches,
        "num_replicas": NUM_REPLICAS,
        "writes_per_round": WRITES_PER_ROUND,
        "rounds": ROUNDS,
        "scrape_interval_seconds": SCRAPE_INTERVAL,
        "baseline_seconds": round(min(rounds["baseline"]), 6),
        "observed_seconds": round(min(rounds["observed"]), 6),
        "round_seconds": {
            name: [round(value, 6) for value in times]
            for name, times in rounds.items()
        },
        "overhead_fraction": round(overhead, 4),
        "target_overhead": TARGET_OVERHEAD,
        "trace_spans_recorded": len(trace_spans),
        "federated_lag_nodes": lag_nodes,
    }


def format_table(payload: dict) -> str:
    return "\n".join(
        [
            "Cluster observability overhead: traced writes + federated scraping "
            f"vs the plain fleet (em graph, scale {payload['scale']}, "
            f"{payload['num_replicas']} replicas)",
            f"workload per round: {payload['num_queries']} enumeration-bound "
            f"queries ({payload['num_matches']} matches) + "
            f"{payload['writes_per_round']} routed writes; overhead is the "
            f"median paired ratio over {payload['rounds']} interleaved rounds",
            f"baseline {payload['baseline_seconds'] * 1000:>10.2f}ms  "
            "(untraced, unscraped)",
            f"observed {payload['observed_seconds'] * 1000:>10.2f}ms  "
            f"(every write traced, fleet scraped every "
            f"{payload['scrape_interval_seconds']}s): "
            f"{payload['overhead_fraction'] * 100:+.2f}% "
            f"(target <= {payload['target_overhead'] * 100:.0f}%)",
            f"evidence: {payload['trace_spans_recorded']} spans in the last "
            f"stitched trace; lag gauge federated from "
            f"{', '.join(payload['federated_lag_nodes'])}",
        ]
    )


# ---------------------------------------------------------------------- #
# micro-benchmarks
# ---------------------------------------------------------------------- #


def test_trace_span_disabled_cost(benchmark):
    """Benchmark the untraced hot path: a trace_span with nothing active."""
    from repro.obs import trace_span

    def untraced():
        with trace_span("fold"):
            pass

    benchmark(untraced)


def test_trace_span_active_cost(benchmark):
    """Benchmark one recorded span inside an activated context."""
    from repro.obs import SpanRecorder, TraceContext, trace_span
    from repro.obs.context import activate

    recorder = SpanRecorder()
    context = TraceContext.new()

    def traced():
        with activate(context, recorder=recorder, node="bench"):
            with trace_span("fold"):
                pass

    benchmark(traced)
    assert recorder.recorded > 0


def test_cluster_merge_cost(benchmark):
    """Benchmark one federation merge over three synthetic node scrapes."""
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    requests = registry.counter(
        "server_requests_total", "requests", labelnames=("op",)
    )
    for op in ("query", "ingest", "count", "stream_open"):
        requests.labels(op).inc(100)
    registry.gauge("replication_lag_versions", "lag").set(1)
    registry.histogram("service_query_seconds", "latency").observe(0.01)
    snapshot = registry.snapshot()
    nodes = [
        {
            "label": f"n{i}",
            "node": f"node-{i}",
            "reachable": True,
            "role": "replica" if i else "primary",
            "status": "ready",
            "tenants": {"em": snapshot},
        }
        for i in range(3)
    ]
    monitor = ClusterMonitor([])
    benchmark(lambda: monitor._merge(nodes))


# ---------------------------------------------------------------------- #
# the regenerate benchmark: the <=5% overhead bar
# ---------------------------------------------------------------------- #


def test_regenerate_obs_cluster(benchmark):
    payload = benchmark.pedantic(run_obs_cluster_bench, rounds=1, iterations=1)
    assert payload["overhead_fraction"] <= TARGET_OVERHEAD, (
        f"cluster observability overhead "
        f"{payload['overhead_fraction'] * 100:.2f}% above the "
        f"{TARGET_OVERHEAD * 100:.0f}% bar"
    )
    assert payload["trace_spans_recorded"] > 0
    assert len(payload["federated_lag_nodes"]) == NUM_REPLICAS
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs_cluster.txt").write_text(
        format_table(payload) + "\n", encoding="utf-8"
    )
    json_path = update_obs_cluster_json("obs_cluster", payload)
    benchmark.extra_info["overhead_fraction"] = payload["overhead_fraction"]
    benchmark.extra_info["json_path"] = str(json_path)


if __name__ == "__main__":
    result = run_obs_cluster_bench()
    print(format_table(result))
    path = update_obs_cluster_json("obs_cluster", result)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "obs_cluster.txt").write_text(
        format_table(result) + "\n", encoding="utf-8"
    )
    print(f"wrote {path}")
