"""Shared helpers for the pytest-benchmark suite.

Each benchmark module corresponds to one paper table or figure (see
DESIGN.md's per-experiment index).  A module typically contains:

* micro-benchmarks of the matchers involved, on a representative query of
  that experiment's workload (what pytest-benchmark times);
* one ``test_regenerate_*`` benchmark that runs the full experiment driver
  once and writes the regenerated table to ``results/<experiment>.txt``.

The drivers run at a reduced scale (``BENCH_SCALE_FAST``) so that the whole
suite completes in a few minutes in pure Python; ``python -m
repro.bench.run_all`` runs the same drivers at the larger default scale.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.harness import make_matcher  # noqa: E402
from repro.bench.workloads import bench_graph, query_set, representative_templates  # noqa: E402
from repro.matching.result import Budget  # noqa: E402
from repro.simulation.context import MatchContext  # noqa: E402

#: Scale used by the pytest-benchmark suite (smaller than the run_all default).
BENCH_SCALE_FAST = 0.12

#: Per-query budget used by the benchmark suite.
BENCH_BUDGET = Budget(max_matches=5_000, time_limit_seconds=10.0, max_intermediate_results=200_000)

#: Directory where regenerated tables are written.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def write_report(report) -> Path:
    """Write an ExperimentReport's table to results/<id>.txt and return the path."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{report.experiment_id.lower()}.txt"
    path.write_text(report.text() + "\n", encoding="utf-8")
    return path


#: Machine-readable benchmark trajectory shared by the session benchmarks.
BENCH_JSON_PATH = RESULTS_DIR / "BENCH_session.json"

#: Machine-readable trajectory of the concurrent-service benchmarks.
SERVICE_JSON_PATH = RESULTS_DIR / "BENCH_service.json"

#: Machine-readable trajectory of the pipelined-streaming benchmarks.
STREAMING_JSON_PATH = RESULTS_DIR / "BENCH_streaming.json"

#: Machine-readable trajectory of the wire-protocol server benchmarks.
SERVER_JSON_PATH = RESULTS_DIR / "BENCH_server.json"

#: Machine-readable trajectory of the write-ahead-log durability benchmarks.
WAL_JSON_PATH = RESULTS_DIR / "BENCH_wal.json"

#: Machine-readable trajectory of the telemetry-overhead benchmarks.
OBS_JSON_PATH = RESULTS_DIR / "BENCH_obs.json"

#: Machine-readable trajectory of the EXPLAIN ANALYZE benchmarks.
EXPLAIN_JSON_PATH = RESULTS_DIR / "BENCH_explain.json"

#: Machine-readable trajectory of the replication benchmarks.
REPLICATION_JSON_PATH = RESULTS_DIR / "BENCH_replication.json"

#: Machine-readable trajectory of the cluster-observability benchmarks.
OBS_CLUSTER_JSON_PATH = RESULTS_DIR / "BENCH_obs_cluster.json"


def _update_json(path: Path, section: str, payload: dict) -> Path:
    """Merge one benchmark's results into a sectioned JSON document.

    Each benchmark module owns a top-level ``section`` key; re-running a
    benchmark overwrites only its own section, so the file accumulates the
    full trajectory across runs.
    """
    import json

    RESULTS_DIR.mkdir(exist_ok=True)
    document = {}
    if path.exists():
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            document = {}
    document[section] = payload
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def update_bench_json(section: str, payload: dict) -> Path:
    """Merge one benchmark's results into ``results/BENCH_session.json``."""
    return _update_json(BENCH_JSON_PATH, section, payload)


def update_service_json(section: str, payload: dict) -> Path:
    """Merge one benchmark's results into ``results/BENCH_service.json``."""
    return _update_json(SERVICE_JSON_PATH, section, payload)


def update_streaming_json(section: str, payload: dict) -> Path:
    """Merge one benchmark's results into ``results/BENCH_streaming.json``."""
    return _update_json(STREAMING_JSON_PATH, section, payload)


def update_server_json(section: str, payload: dict) -> Path:
    """Merge one benchmark's results into ``results/BENCH_server.json``."""
    return _update_json(SERVER_JSON_PATH, section, payload)


def update_wal_json(section: str, payload: dict) -> Path:
    """Merge one benchmark's results into ``results/BENCH_wal.json``."""
    return _update_json(WAL_JSON_PATH, section, payload)


def update_obs_json(section: str, payload: dict) -> Path:
    """Merge one benchmark's results into ``results/BENCH_obs.json``."""
    return _update_json(OBS_JSON_PATH, section, payload)


def update_explain_json(section: str, payload: dict) -> Path:
    """Merge one benchmark's results into ``results/BENCH_explain.json``."""
    return _update_json(EXPLAIN_JSON_PATH, section, payload)


def update_replication_json(section: str, payload: dict) -> Path:
    """Merge one benchmark's results into ``results/BENCH_replication.json``."""
    return _update_json(REPLICATION_JSON_PATH, section, payload)


def update_obs_cluster_json(section: str, payload: dict) -> Path:
    """Merge one benchmark's results into ``results/BENCH_obs_cluster.json``."""
    return _update_json(OBS_CLUSTER_JSON_PATH, section, payload)


@pytest.fixture(scope="session")
def fast_budget() -> Budget:
    """The shared benchmark budget."""
    return BENCH_BUDGET


@pytest.fixture(scope="session")
def em_graph():
    """Email-shaped benchmark graph."""
    return bench_graph("em", scale=BENCH_SCALE_FAST)


@pytest.fixture(scope="session")
def ep_graph():
    """Epinions-shaped benchmark graph."""
    return bench_graph("ep", scale=BENCH_SCALE_FAST)


@pytest.fixture(scope="session")
def hu_graph():
    """Human-shaped benchmark graph."""
    return bench_graph("hu", scale=BENCH_SCALE_FAST)


@pytest.fixture(scope="session")
def em_context(em_graph) -> MatchContext:
    """Shared context (BFL index) over the em graph."""
    return MatchContext(em_graph, reachability_kind="bfl")


@pytest.fixture(scope="session")
def ep_context(ep_graph) -> MatchContext:
    """Shared context (BFL index) over the ep graph."""
    return MatchContext(ep_graph, reachability_kind="bfl")


@pytest.fixture(scope="session")
def hu_context(hu_graph) -> MatchContext:
    """Shared context (BFL index) over the hu graph."""
    return MatchContext(hu_graph, reachability_kind="bfl")


def representative_query(graph, kind: str = "H", template: str = "HQ8"):
    """One representative query instance of the given kind on ``graph``."""
    return query_set(graph, kind=kind, templates=(template,))[
        template if kind == "H" else template.replace("HQ", f"{kind}Q")
    ]


def matcher_benchmark(benchmark, name: str, graph, context, query, budget: Budget):
    """Benchmark one matcher on one query and record the match count."""
    matcher = make_matcher(name, graph, context, budget)
    report = benchmark(lambda: matcher.match(query, budget=budget))
    result = report.report if hasattr(report, "report") else report
    benchmark.extra_info["matches"] = result.num_matches
    benchmark.extra_info["status"] = result.status.value
    return result
