"""Fig. 17 — GM-JO / GM-RI vs RM on dense and sparse query sets (Human graph)."""

import pytest

from conftest import BENCH_SCALE_FAST, matcher_benchmark, write_report
from repro.bench.experiments import fig17_rm_human
from repro.bench.workloads import bench_graph, random_query_set
from repro.graph.transform import undirected_double
from repro.simulation.context import MatchContext


@pytest.fixture(scope="module")
def human_undirected():
    return undirected_double(bench_graph("hu", scale=BENCH_SCALE_FAST))


@pytest.fixture(scope="module")
def human_context(human_undirected):
    return MatchContext(human_undirected)


@pytest.mark.parametrize("matcher", ["GM-JO", "GM-RI", "RM"])
def test_dense_query(benchmark, matcher, human_undirected, human_context, fast_budget):
    queries = random_query_set(human_undirected, (8,), kind="C", dense=True, per_size=1, seed=71)
    query = next(iter(queries.values()))
    matcher_benchmark(benchmark, matcher, human_undirected, human_context, query, fast_budget)


@pytest.mark.parametrize("matcher", ["GM-JO", "GM-RI", "RM"])
def test_sparse_query(benchmark, matcher, human_undirected, human_context, fast_budget):
    queries = random_query_set(human_undirected, (8,), kind="C", dense=False, per_size=1, seed=71)
    query = next(iter(queries.values()))
    matcher_benchmark(benchmark, matcher, human_undirected, human_context, query, fast_budget)


def test_regenerate_fig17(benchmark, fast_budget):
    report = benchmark.pedantic(
        lambda: fig17_rm_human(node_counts=(8, 12), per_size=1, scale=BENCH_SCALE_FAST, budget=fast_budget),
        rounds=1,
        iterations=1,
    )
    path = write_report(report)
    benchmark.extra_info["rows"] = len(report.rows)
    benchmark.extra_info["table_path"] = str(path)
