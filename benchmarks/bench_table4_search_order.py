"""Table 4 — search-order strategies: GM-RI vs GM-JO vs GM-BJ."""

import pytest

from conftest import BENCH_SCALE_FAST, matcher_benchmark, representative_query, write_report
from repro.bench.experiments import table4_search_order
from repro.matching.ordering import OrderingMethod, bj_order, jo_order, ri_order
from repro.rig.build import build_rig


@pytest.mark.parametrize("matcher", ["GM-RI", "GM-JO", "GM-BJ"])
def test_query_time_by_ordering(benchmark, matcher, em_graph, em_context, fast_budget):
    query = representative_query(em_graph, kind="H", template="HQ18")
    matcher_benchmark(benchmark, matcher, em_graph, em_context, query, fast_budget)


@pytest.mark.parametrize("method", ["jo", "ri", "bj"])
def test_ordering_computation_cost(benchmark, method, em_graph, em_context):
    query = representative_query(em_graph, kind="H", template="HQ15")
    rig = build_rig(em_context, query).rig
    if method == "jo":
        benchmark(lambda: jo_order(query, rig))
    elif method == "ri":
        benchmark(lambda: ri_order(query))
    else:
        benchmark(lambda: bj_order(query, rig))


def test_regenerate_table4(benchmark, fast_budget):
    report = benchmark.pedantic(
        lambda: table4_search_order(
            datasets=("em", "ep"), scale=BENCH_SCALE_FAST, budget=fast_budget
        ),
        rounds=1,
        iterations=1,
    )
    path = write_report(report)
    benchmark.extra_info["rows"] = len(report.rows)
    benchmark.extra_info["table_path"] = str(path)
