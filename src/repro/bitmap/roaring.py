"""A pure-Python RoaringBitmap-style compressed bitmap.

The original Roaring design partitions the 32-bit universe into 2^16-value
chunks keyed by the high 16 bits of each value.  Sparse chunks are stored as
sorted arrays of 16-bit "low" values; dense chunks are stored as bit masks.
This module reproduces that container model:

* array containers use ``array('H', ...)`` (sorted, deduplicated);
* bitmap containers use a Python int as a 65536-bit mask;
* containers convert automatically when they cross the density threshold
  (4096 members, as in the reference implementation).

The point of carrying this structure (instead of plain Python sets) is that
the benchmark for Fig. 12(a) compares binary-search adjacency probing against
bitmap-based batch intersection, and the RIG adjacency lists in
:mod:`repro.rig` are stored as these bitmaps exactly as §6 describes.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

CHUNK_BITS = 16
CHUNK_SIZE = 1 << CHUNK_BITS
CHUNK_MASK = CHUNK_SIZE - 1
#: An array container converts to a bitmap container above this cardinality
#: (the threshold used by the reference Roaring implementation).
ARRAY_TO_BITMAP_THRESHOLD = 4096


class _Container:
    """One chunk of the bitmap: either a sorted array or a bit mask."""

    __slots__ = ("values", "mask", "is_bitmap")

    def __init__(self) -> None:
        self.values: array = array("H")
        self.mask: int = 0
        self.is_bitmap: bool = False

    # -- construction -------------------------------------------------- #

    @classmethod
    def from_sorted_lows(cls, lows: List[int]) -> "_Container":
        container = cls()
        if len(lows) > ARRAY_TO_BITMAP_THRESHOLD:
            mask = 0
            for low in lows:
                mask |= 1 << low
            container.mask = mask
            container.is_bitmap = True
        else:
            container.values = array("H", lows)
        return container

    def _to_bitmap(self) -> None:
        mask = 0
        for low in self.values:
            mask |= 1 << low
        self.mask = mask
        self.values = array("H")
        self.is_bitmap = True

    # -- mutation ------------------------------------------------------ #

    def add(self, low: int) -> None:
        if self.is_bitmap:
            self.mask |= 1 << low
            return
        values = self.values
        # Binary search for insertion point.
        lo, hi = 0, len(values)
        while lo < hi:
            mid = (lo + hi) // 2
            if values[mid] < low:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(values) and values[lo] == low:
            return
        values.insert(lo, low)
        if len(values) > ARRAY_TO_BITMAP_THRESHOLD:
            self._to_bitmap()

    def discard(self, low: int) -> None:
        if self.is_bitmap:
            self.mask &= ~(1 << low)
            return
        values = self.values
        lo, hi = 0, len(values)
        while lo < hi:
            mid = (lo + hi) // 2
            if values[mid] < low:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(values) and values[lo] == low:
            values.pop(lo)

    # -- queries ------------------------------------------------------- #

    def __contains__(self, low: int) -> bool:
        if self.is_bitmap:
            return (self.mask >> low) & 1 == 1
        values = self.values
        lo, hi = 0, len(values)
        while lo < hi:
            mid = (lo + hi) // 2
            if values[mid] < low:
                lo = mid + 1
            else:
                hi = mid
        return lo < len(values) and values[lo] == low

    def __len__(self) -> int:
        if self.is_bitmap:
            return self.mask.bit_count()
        return len(self.values)

    def __iter__(self) -> Iterator[int]:
        if self.is_bitmap:
            mask = self.mask
            while mask:
                low_bit = mask & -mask
                yield low_bit.bit_length() - 1
                mask ^= low_bit
        else:
            yield from self.values

    # -- algebra ------------------------------------------------------- #

    def _as_mask(self) -> int:
        if self.is_bitmap:
            return self.mask
        mask = 0
        for low in self.values:
            mask |= 1 << low
        return mask

    def intersect(self, other: "_Container") -> Optional["_Container"]:
        """Return the intersection container, or None if empty."""
        if self.is_bitmap and other.is_bitmap:
            mask = self.mask & other.mask
            if not mask:
                return None
            result = _Container()
            result.mask = mask
            result.is_bitmap = True
            return result
        if not self.is_bitmap and not other.is_bitmap:
            a, b = self.values, other.values
            if len(a) > len(b):
                a, b = b, a
            lows = [low for low in a if low in other] if other.is_bitmap else None
            # Galloping-free two-pointer merge over sorted arrays.
            out: List[int] = []
            i = j = 0
            while i < len(a) and j < len(b):
                if a[i] == b[j]:
                    out.append(a[i])
                    i += 1
                    j += 1
                elif a[i] < b[j]:
                    i += 1
                else:
                    j += 1
            if not out:
                return None
            return _Container.from_sorted_lows(out)
        # Mixed: probe the array container against the bitmap container.
        array_side = other if self.is_bitmap else self
        bitmap_side = self if self.is_bitmap else other
        out = [low for low in array_side.values if (bitmap_side.mask >> low) & 1]
        if not out:
            return None
        return _Container.from_sorted_lows(out)

    def union(self, other: "_Container") -> "_Container":
        mask = self._as_mask() | other._as_mask()
        result = _Container()
        count = mask.bit_count()
        if count > ARRAY_TO_BITMAP_THRESHOLD:
            result.mask = mask
            result.is_bitmap = True
        else:
            lows: List[int] = []
            work = mask
            while work:
                low_bit = work & -work
                lows.append(low_bit.bit_length() - 1)
                work ^= low_bit
            result.values = array("H", lows)
        return result

    def intersection_size(self, other: "_Container") -> int:
        if self.is_bitmap and other.is_bitmap:
            return (self.mask & other.mask).bit_count()
        if not self.is_bitmap and not other.is_bitmap:
            a, b = self.values, other.values
            i = j = count = 0
            while i < len(a) and j < len(b):
                if a[i] == b[j]:
                    count += 1
                    i += 1
                    j += 1
                elif a[i] < b[j]:
                    i += 1
                else:
                    j += 1
            return count
        array_side = other if self.is_bitmap else self
        bitmap_side = self if self.is_bitmap else other
        return sum(1 for low in array_side.values if (bitmap_side.mask >> low) & 1)


class RoaringBitmap:
    """A set of non-negative integers stored in Roaring-style containers."""

    __slots__ = ("_containers",)

    def __init__(self, items: Optional[Iterable[int]] = None) -> None:
        self._containers: Dict[int, _Container] = {}
        if items is not None:
            self.update(items)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_sorted(cls, items: Iterable[int]) -> "RoaringBitmap":
        """Build from an ascending iterable (slightly faster bulk path)."""
        bitmap = cls.__new__(cls)
        bitmap._containers = {}
        current_high: Optional[int] = None
        lows: List[int] = []
        for item in items:
            high = item >> CHUNK_BITS
            if high != current_high:
                if lows:
                    bitmap._containers[current_high] = _Container.from_sorted_lows(lows)
                current_high = high
                lows = []
            lows.append(item & CHUNK_MASK)
        if lows and current_high is not None:
            bitmap._containers[current_high] = _Container.from_sorted_lows(lows)
        return bitmap

    def copy(self) -> "RoaringBitmap":
        """Return a deep copy."""
        return RoaringBitmap(iter(self))

    def update(self, items: Iterable[int]) -> None:
        """Insert every item of ``items``."""
        for item in items:
            self.add(item)

    # ------------------------------------------------------------------ #
    # element access
    # ------------------------------------------------------------------ #

    def add(self, item: int) -> None:
        """Insert ``item``."""
        if item < 0:
            raise ValueError("RoaringBitmap only stores non-negative integers")
        high, low = item >> CHUNK_BITS, item & CHUNK_MASK
        container = self._containers.get(high)
        if container is None:
            container = _Container()
            self._containers[high] = container
        container.add(low)

    def discard(self, item: int) -> None:
        """Remove ``item`` if present."""
        if item < 0:
            return
        high, low = item >> CHUNK_BITS, item & CHUNK_MASK
        container = self._containers.get(high)
        if container is None:
            return
        container.discard(low)
        if not len(container):
            del self._containers[high]

    def __contains__(self, item: int) -> bool:
        if item < 0:
            return False
        container = self._containers.get(item >> CHUNK_BITS)
        return container is not None and (item & CHUNK_MASK) in container

    def __len__(self) -> int:
        return sum(len(container) for container in self._containers.values())

    def __bool__(self) -> bool:
        return any(len(container) for container in self._containers.values())

    def __iter__(self) -> Iterator[int]:
        for high in sorted(self._containers):
            base = high << CHUNK_BITS
            for low in self._containers[high]:
                yield base + low

    def batch_iter(self, batch_size: int = 256) -> Iterator[List[int]]:
        """Yield members in ascending batches (the Roaring batch iterator).

        The paper reports that batch iterators are 2-10x faster than
        element-at-a-time iterators; the enumeration algorithm consumes RIG
        adjacency in batches through this method.
        """
        batch: List[int] = []
        for item in self:
            batch.append(item)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def to_list(self) -> List[int]:
        """Members in ascending order."""
        return list(self)

    def min(self) -> int:
        """Smallest member; raises ``ValueError`` if empty."""
        for item in self:
            return item
        raise ValueError("min() of empty RoaringBitmap")

    # ------------------------------------------------------------------ #
    # set algebra
    # ------------------------------------------------------------------ #

    def __and__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        result = RoaringBitmap()
        small, large = (self, other) if len(self._containers) <= len(other._containers) else (other, self)
        for high, container in small._containers.items():
            other_container = large._containers.get(high)
            if other_container is None:
                continue
            intersected = container.intersect(other_container)
            if intersected is not None:
                result._containers[high] = intersected
        return result

    def __or__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        result = RoaringBitmap()
        for high, container in self._containers.items():
            other_container = other._containers.get(high)
            if other_container is None:
                result._containers[high] = _Container.from_sorted_lows(list(container))
            else:
                result._containers[high] = container.union(other_container)
        for high, container in other._containers.items():
            if high not in self._containers:
                result._containers[high] = _Container.from_sorted_lows(list(container))
        return result

    def __sub__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        result = RoaringBitmap()
        for item in self:
            if item not in other:
                result.add(item)
        return result

    def __iand__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        intersected = self & other
        self._containers = intersected._containers
        return self

    def __ior__(self, other: "RoaringBitmap") -> "RoaringBitmap":
        merged = self | other
        self._containers = merged._containers
        return self

    def intersection_size(self, other: "RoaringBitmap") -> int:
        """``len(self & other)`` without materialising the intersection."""
        total = 0
        small, large = (self, other) if len(self._containers) <= len(other._containers) else (other, self)
        for high, container in small._containers.items():
            other_container = large._containers.get(high)
            if other_container is not None:
                total += container.intersection_size(other_container)
        return total

    def intersects(self, other: "RoaringBitmap") -> bool:
        """True if the two bitmaps share at least one member."""
        small, large = (self, other) if len(self._containers) <= len(other._containers) else (other, self)
        for high, container in small._containers.items():
            other_container = large._containers.get(high)
            if other_container is not None and container.intersection_size(other_container):
                return True
        return False

    def issubset(self, other: "RoaringBitmap") -> bool:
        """True if every member of ``self`` is in ``other``."""
        return all(item in other for item in self)

    # ------------------------------------------------------------------ #
    # comparisons
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoaringBitmap):
            return NotImplemented
        return self.to_list() == other.to_list()

    def __hash__(self) -> int:
        return hash(tuple(self.to_list()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        size = len(self)
        preview = []
        for item in self:
            preview.append(item)
            if len(preview) >= 8:
                break
        suffix = ", ..." if size > 8 else ""
        return f"RoaringBitmap({preview}{suffix} size={size})"
