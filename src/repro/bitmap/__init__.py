"""Compressed bitmap substrate.

The paper implements candidate occurrence sets and adjacency lists as
RoaringBitmap instances and performs all direct-connectivity checks and
multi-way joins as bitmap intersections (§6).  This package provides a
pure-Python equivalent:

* :class:`IntBitSet` — a thin wrapper over Python's arbitrary-precision
  integers used as bit masks (the "bit vector" of Fig. 6);
* :class:`RoaringBitmap` — a chunked container (array containers for sparse
  chunks, bitmap containers for dense chunks) mirroring the original
  Roaring design, including batch iteration;
* aggregation helpers for multi-way intersection / union over either
  representation (the ``FastAggregation`` utilities of the RoaringBitmap API).
"""

from repro.bitmap.intbitset import IntBitSet
from repro.bitmap.roaring import RoaringBitmap
from repro.bitmap.ops import (
    intersect_many,
    union_many,
    intersection_size,
    from_iterable,
)

__all__ = [
    "IntBitSet",
    "RoaringBitmap",
    "intersect_many",
    "union_many",
    "intersection_size",
    "from_iterable",
]
