"""Bit-vector sets backed by Python's arbitrary-precision integers.

A Python ``int`` used as a bit mask gives constant-factor-fast bitwise AND /
OR / XOR implemented in C, which is the closest pure-Python analogue to the
word-level bitwise operations the paper relies on (Fig. 6 shows candidate
sets and adjacency lists as bit vectors combined with bitwise operations).

:class:`IntBitSet` is immutable-by-convention: all operators return new
instances; in-place mutation happens only through :meth:`add` and
:meth:`discard`, which the RIG builder uses while assembling adjacency.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional


class IntBitSet:
    """A set of non-negative integers stored as a single Python int mask."""

    __slots__ = ("_mask",)

    def __init__(self, items: Optional[Iterable[int]] = None, _mask: int = 0) -> None:
        mask = _mask
        if items is not None:
            for item in items:
                if item < 0:
                    raise ValueError("IntBitSet only stores non-negative integers")
                mask |= 1 << item
        self._mask = mask

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_mask(cls, mask: int) -> "IntBitSet":
        """Wrap a raw integer mask without copying."""
        instance = cls.__new__(cls)
        instance._mask = mask
        return instance

    @classmethod
    def full_range(cls, size: int) -> "IntBitSet":
        """The set ``{0, 1, ..., size-1}``."""
        if size <= 0:
            return cls()
        return cls.from_mask((1 << size) - 1)

    def copy(self) -> "IntBitSet":
        """Return a copy of this set."""
        return IntBitSet.from_mask(self._mask)

    # ------------------------------------------------------------------ #
    # element access
    # ------------------------------------------------------------------ #

    @property
    def mask(self) -> int:
        """The raw integer mask (read-only view)."""
        return self._mask

    def add(self, item: int) -> None:
        """Insert ``item`` into the set."""
        if item < 0:
            raise ValueError("IntBitSet only stores non-negative integers")
        self._mask |= 1 << item

    def discard(self, item: int) -> None:
        """Remove ``item`` if present."""
        self._mask &= ~(1 << item)

    def __contains__(self, item: int) -> bool:
        return item >= 0 and (self._mask >> item) & 1 == 1

    def __len__(self) -> int:
        return self._mask.bit_count()

    def __bool__(self) -> bool:
        return self._mask != 0

    def __iter__(self) -> Iterator[int]:
        mask = self._mask
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def to_list(self) -> List[int]:
        """Return the members in ascending order."""
        return list(self)

    def min(self) -> int:
        """Smallest member; raises ``ValueError`` on an empty set."""
        if not self._mask:
            raise ValueError("min() of empty IntBitSet")
        return (self._mask & -self._mask).bit_length() - 1

    def max(self) -> int:
        """Largest member; raises ``ValueError`` on an empty set."""
        if not self._mask:
            raise ValueError("max() of empty IntBitSet")
        return self._mask.bit_length() - 1

    # ------------------------------------------------------------------ #
    # set algebra
    # ------------------------------------------------------------------ #

    def __and__(self, other: "IntBitSet") -> "IntBitSet":
        return IntBitSet.from_mask(self._mask & other._mask)

    def __or__(self, other: "IntBitSet") -> "IntBitSet":
        return IntBitSet.from_mask(self._mask | other._mask)

    def __xor__(self, other: "IntBitSet") -> "IntBitSet":
        return IntBitSet.from_mask(self._mask ^ other._mask)

    def __sub__(self, other: "IntBitSet") -> "IntBitSet":
        return IntBitSet.from_mask(self._mask & ~other._mask)

    def __iand__(self, other: "IntBitSet") -> "IntBitSet":
        self._mask &= other._mask
        return self

    def __ior__(self, other: "IntBitSet") -> "IntBitSet":
        self._mask |= other._mask
        return self

    def intersection_size(self, other: "IntBitSet") -> int:
        """``len(self & other)`` without materialising the intersection."""
        return (self._mask & other._mask).bit_count()

    def intersects(self, other: "IntBitSet") -> bool:
        """True if the two sets share at least one member."""
        return (self._mask & other._mask) != 0

    def issubset(self, other: "IntBitSet") -> bool:
        """True if every member of ``self`` is in ``other``."""
        return (self._mask & ~other._mask) == 0

    def issuperset(self, other: "IntBitSet") -> bool:
        """True if every member of ``other`` is in ``self``."""
        return (other._mask & ~self._mask) == 0

    # ------------------------------------------------------------------ #
    # comparisons
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntBitSet):
            return self._mask == other._mask
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._mask)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = self.to_list()
        if len(preview) > 12:
            shown = ", ".join(map(str, preview[:12]))
            return f"IntBitSet([{shown}, ... {len(preview)} items])"
        return f"IntBitSet({preview})"
