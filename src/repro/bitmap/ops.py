"""Multi-way aggregation helpers over bitmap sets.

These mirror the ``FastAggregation`` utilities of the RoaringBitmap API the
paper uses to implement multi-way intersections in MJoin (§6): the k-way
intersection starts from the smallest operand and intersects pairwise in
ascending size order, short-circuiting as soon as the running result is
empty.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, TypeVar, Union

from repro.bitmap.intbitset import IntBitSet
from repro.bitmap.roaring import RoaringBitmap

BitmapLike = Union[IntBitSet, RoaringBitmap]
TBitmap = TypeVar("TBitmap", IntBitSet, RoaringBitmap)


def from_iterable(items: Iterable[int], kind: str = "roaring") -> BitmapLike:
    """Build a bitmap of the requested kind (``"roaring"`` or ``"int"``)."""
    if kind == "roaring":
        return RoaringBitmap(items)
    if kind == "int":
        return IntBitSet(items)
    raise ValueError(f"unknown bitmap kind {kind!r}")


def intersect_many(operands: Sequence[TBitmap]) -> TBitmap:
    """Intersect all operands, smallest first, short-circuiting on empty.

    Raises ``ValueError`` on an empty operand list because an empty
    intersection is ill-defined (it would be the full universe).
    """
    if not operands:
        raise ValueError("intersect_many needs at least one operand")
    ordered = sorted(operands, key=len)
    result = ordered[0].copy()
    for operand in ordered[1:]:
        result &= operand
        if not result:
            break
    return result


def union_many(operands: Sequence[TBitmap]) -> TBitmap:
    """Union all operands; raises ``ValueError`` on an empty operand list."""
    if not operands:
        raise ValueError("union_many needs at least one operand")
    result = operands[0].copy()
    for operand in operands[1:]:
        result |= operand
    return result


def intersection_size(left: BitmapLike, right: BitmapLike) -> int:
    """Cardinality of ``left & right`` without materialising it."""
    return left.intersection_size(right)  # type: ignore[arg-type]


def intersect_iterables(sets: Sequence[Iterable[int]]) -> List[int]:
    """Plain-Python k-way intersection used by the non-bitmap baselines."""
    if not sets:
        raise ValueError("intersect_iterables needs at least one operand")
    materialised = [set(s) for s in sets]
    materialised.sort(key=len)
    result = materialised[0]
    for other in materialised[1:]:
        result = result & other
        if not result:
            break
    return sorted(result)
