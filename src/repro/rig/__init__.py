"""Runtime Index Graph (RIG) construction.

A RIG (Definition 4.1) is a k-partite graph with one independent node set —
the *candidate occurrence set* ``cos(q)`` — per query node, and one edge set
``cos(e)`` per query edge, sandwiched between the query answer's occurrence
sets and the label-only match sets.  It losslessly encodes every
homomorphism from the query to the data graph (Proposition 4.1) and serves
as the search space for the enumeration phase.

:func:`build_rig` implements Algorithm 4 (BuildRIG): node selection by
double simulation (or by the weaker node pre-filter / no filter, for the
GM-F and match-RIG ablations) followed by node expansion into edges.
"""

from repro.rig.graph import RuntimeIndexGraph
from repro.rig.build import RIGOptions, RIGBuildReport, build_rig, build_match_rig
from repro.rig.stats import RIGStatistics, rig_statistics

__all__ = [
    "RuntimeIndexGraph",
    "RIGOptions",
    "RIGBuildReport",
    "build_rig",
    "build_match_rig",
    "RIGStatistics",
    "rig_statistics",
]
