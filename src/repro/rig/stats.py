"""RIG size statistics (for the Fig. 13 experiment)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.graph.digraph import DataGraph
from repro.rig.graph import RuntimeIndexGraph


@dataclass(frozen=True)
class RIGStatistics:
    """Size of a RIG relative to its data graph."""

    query_name: str
    rig_nodes: int
    rig_edges: int
    rig_size: int
    graph_size: int
    size_ratio: float
    per_query_node: Dict[int, int]

    def ratio_percent(self) -> float:
        """RIG size as a percentage of the data-graph size."""
        return 100.0 * self.size_ratio


def rig_statistics(rig: RuntimeIndexGraph, graph: DataGraph) -> RIGStatistics:
    """Measure ``rig`` against ``graph`` (size = nodes + edges for both)."""
    rig_nodes = rig.num_rig_nodes()
    rig_edges = rig.num_rig_edges()
    graph_size = graph.num_nodes + graph.num_edges
    rig_size = rig_nodes + rig_edges
    return RIGStatistics(
        query_name=rig.query.name,
        rig_nodes=rig_nodes,
        rig_edges=rig_edges,
        rig_size=rig_size,
        graph_size=graph_size,
        size_ratio=(rig_size / graph_size) if graph_size else 0.0,
        per_query_node={node: rig.candidate_count(node) for node in rig.query.nodes()},
    )
