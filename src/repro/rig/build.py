"""BuildRIG: construct a (refined) runtime index graph (Algorithm 4).

Two phases:

1. **node selection** — choose ``cos(q)`` for every query node.  The refined
   RIG uses double simulation (optionally preceded by the node pre-filter);
   the GM-F ablation uses the pre-filter only; the match RIG uses the raw
   match sets.
2. **node expansion** — for every query edge and every tail candidate,
   compute the head candidates it connects to.  Direct edges use adjacency
   intersections (bitIter) or per-pair binary search (binSearch, for the
   Fig. 12(a) ablation); reachability edges use the reachability index, with
   a multi-source-BFS fallback when the head candidate set is large and an
   interval-label early-termination cut on dag data (§4.5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.query.pattern import PatternEdge, PatternQuery
from repro.query.transitive import transitive_reduction
from repro.rig.graph import RuntimeIndexGraph
from repro.simulation.context import ChildCheckMethod, MatchContext
from repro.simulation.fbsim import SimulationOptions, SimulationResult, fbsim, fbsim_basic
from repro.simulation.matchsets import node_prefilter


@dataclass
class RIGOptions:
    """Configuration of BuildRIG (GM and its ablations)."""

    #: Node-selection strategy: "double_sim" (GM / GM-S), "prefilter" (GM-F)
    #: or "match" (no filtering: the match RIG).
    filter_mode: str = "double_sim"
    #: Apply the node pre-filter before double simulation (GM yes, GM-S no).
    prefilter: bool = True
    #: Which double-simulation algorithm to use: "fbsim" (Dag+Δ) or "basic".
    simulation_algorithm: str = "fbsim"
    #: Tuning options forwarded to the simulation algorithm.
    simulation_options: SimulationOptions = field(default_factory=SimulationOptions)
    #: How direct-connectivity constraints are checked during expansion.
    child_check: ChildCheckMethod = ChildCheckMethod.BIT_BAT
    #: Apply query transitive reduction before building (GM yes, GM-NR no).
    transitive_reduction: bool = True
    #: Set representation inside the RIG ("set", "roaring", "intbitset").
    set_kind: str = "set"
    #: Drop candidates with no surviving adjacency after expansion.
    prune_after_expand: bool = True
    #: Head-candidate count above which descendant-edge expansion switches
    #: from per-pair reachability probes to one BFS per tail candidate.
    bfs_expansion_threshold: int = 32


@dataclass
class RIGBuildReport:
    """Timings and intermediate results of one BuildRIG run."""

    rig: RuntimeIndexGraph
    query: PatternQuery
    select_seconds: float
    expand_seconds: float
    simulation: Optional[SimulationResult]
    candidates_after_selection: int

    @property
    def total_seconds(self) -> float:
        """Total construction time (selection + expansion)."""
        return self.select_seconds + self.expand_seconds


def _select_candidates(
    context: MatchContext, query: PatternQuery, options: RIGOptions
) -> tuple[Dict[int, Set[int]], Optional[SimulationResult]]:
    """Node-selection phase: compute ``cos(q)`` for every query node."""
    if options.filter_mode == "match":
        return context.match_sets(query), None
    if options.filter_mode == "prefilter":
        return node_prefilter(context, query), None
    if options.filter_mode != "double_sim":
        raise ValueError(f"unknown filter mode {options.filter_mode!r}")

    initial = node_prefilter(context, query) if options.prefilter else None
    if options.simulation_algorithm == "basic":
        simulation = fbsim_basic(context, query, initial, options.simulation_options)
    else:
        simulation = fbsim(context, query, initial, options.simulation_options)
    return simulation.candidates, simulation


def _expand_edge(
    context: MatchContext,
    rig: RuntimeIndexGraph,
    edge: PatternEdge,
    candidates: Dict[int, Set[int]],
    options: RIGOptions,
) -> None:
    """Node-expansion phase for one query edge."""
    graph = context.graph
    tails = candidates[edge.source]
    heads = candidates[edge.target]
    if not tails or not heads:
        return

    if edge.is_child:
        if options.child_check is ChildCheckMethod.BIN_SEARCH:
            for tail in tails:
                matched = [head for head in heads if graph.has_edge_binary_search(tail, head)]
                rig.add_edge_candidates(edge, tail, matched)
        else:
            # bitIter / bitBat: adjacency-list ∩ candidate-set intersection.
            for tail in tails:
                matched = graph.successor_set(tail) & heads
                if matched:
                    rig.add_edge_candidates(edge, tail, matched)
        return

    # Reachability edge.
    reachability = context.reachability
    use_bfs = len(heads) > options.bfs_expansion_threshold
    for tail in tails:
        if use_bfs:
            reachable = context.forward_reachable_set((tail,))
            matched = [head for head in heads if head in reachable or (head == tail and tail in reachable)]
        else:
            matched = []
            for head in heads:
                if head == tail:
                    if reachability.reaches_strict(tail, head):
                        matched.append(head)
                elif reachability.reaches(tail, head):
                    matched.append(head)
        if matched:
            rig.add_edge_candidates(edge, tail, matched)


def build_rig(
    context: MatchContext,
    query: PatternQuery,
    options: Optional[RIGOptions] = None,
) -> RIGBuildReport:
    """Build a refined RIG for ``query`` over the context's data graph."""
    options = options or RIGOptions()
    if options.transitive_reduction:
        query = transitive_reduction(query)

    start = time.perf_counter()
    candidates, simulation = _select_candidates(context, query, options)
    select_seconds = time.perf_counter() - start

    rig = RuntimeIndexGraph(query, set_kind=options.set_kind)
    start = time.perf_counter()
    for node, nodes in candidates.items():
        rig.set_candidates(node, nodes)
    if not rig.is_empty():
        for edge in query.edges():
            _expand_edge(context, rig, edge, candidates, options)
        if options.prune_after_expand:
            rig.prune_unmatched_candidates()
    expand_seconds = time.perf_counter() - start

    return RIGBuildReport(
        rig=rig,
        query=query,
        select_seconds=select_seconds,
        expand_seconds=expand_seconds,
        simulation=simulation,
        candidates_after_selection=sum(len(nodes) for nodes in candidates.values()),
    )


def build_match_rig(context: MatchContext, query: PatternQuery, set_kind: str = "set") -> RIGBuildReport:
    """Build the match RIG ``G^m_Q`` (no filtering; candidate sets = match sets)."""
    options = RIGOptions(filter_mode="match", transitive_reduction=False,
                         prune_after_expand=False, set_kind=set_kind)
    return build_rig(context, query, options)
