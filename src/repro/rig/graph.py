"""The runtime index graph data structure.

A :class:`RuntimeIndexGraph` stores, for a fixed pattern query:

* ``cos(q)`` — the candidate occurrence set of every query node;
* for every query edge ``(p, q)`` and every candidate ``vp ∈ cos(p)``, the
  *forward adjacency list* — the candidates of ``q`` that ``vp`` connects to
  under the edge's semantics — and symmetrically the *backward adjacency
  list* of every candidate of ``q``.

Adjacency is indexed by query edge, as §4.5 describes ("the outgoing and
incoming edges of vq are indexed by the parents and children of query node
q"), so the enumeration phase can intersect exactly the lists it needs.
The set representation is pluggable: plain Python ``set`` (default, fastest
in CPython) or the library's :class:`RoaringBitmap` / :class:`IntBitSet`
(the paper's §6 representation, exercised by the Fig. 12 ablation).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.bitmap.intbitset import IntBitSet
from repro.bitmap.roaring import RoaringBitmap
from repro.exceptions import MatchingError
from repro.query.pattern import PatternEdge, PatternQuery

#: Factory signature: build a set-like object from an iterable of ints.
SetFactory = Callable[[Iterable[int]], object]

_SET_FACTORIES: Dict[str, SetFactory] = {
    "set": lambda items: set(items),
    "frozenset": lambda items: frozenset(items),
    "roaring": lambda items: RoaringBitmap(items),
    "intbitset": lambda items: IntBitSet(items),
}


class RuntimeIndexGraph:
    """K-partite candidate graph for one pattern query over one data graph."""

    def __init__(self, query: PatternQuery, set_kind: str = "set") -> None:
        if set_kind not in _SET_FACTORIES:
            raise MatchingError(
                f"unknown set kind {set_kind!r}; available: {', '.join(sorted(_SET_FACTORIES))}"
            )
        self.query = query
        self.set_kind = set_kind
        self._factory = _SET_FACTORIES[set_kind]
        self._cos: Dict[int, object] = {node: self._factory(()) for node in query.nodes()}
        # forward adjacency: (edge endpoints) -> {tail candidate -> set of head candidates}
        self._forward: Dict[Tuple[int, int], Dict[int, object]] = {
            edge.endpoints(): {} for edge in query.edges()
        }
        self._backward: Dict[Tuple[int, int], Dict[int, object]] = {
            edge.endpoints(): {} for edge in query.edges()
        }

    # ------------------------------------------------------------------ #
    # construction API (used by BuildRIG)
    # ------------------------------------------------------------------ #

    def make_set(self, items: Iterable[int]):
        """Build a set-like object of the RIG's configured kind."""
        return self._factory(items)

    def set_candidates(self, query_node: int, candidates: Iterable[int]) -> None:
        """Define ``cos(query_node)``."""
        self._cos[query_node] = self._factory(candidates)

    def add_edge_candidates(
        self, edge: PatternEdge, tail: int, heads: Iterable[int]
    ) -> None:
        """Record that ``tail`` connects to each of ``heads`` under ``edge``."""
        key = edge.endpoints()
        head_list = list(heads)
        if not head_list:
            return
        forward = self._forward[key]
        existing = forward.get(tail)
        if existing is None:
            forward[tail] = self._factory(head_list)
        else:
            for head in head_list:
                existing.add(head)  # type: ignore[attr-defined]
        backward = self._backward[key]
        for head in head_list:
            back = backward.get(head)
            if back is None:
                backward[head] = self._factory((tail,))
            else:
                back.add(tail)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ #
    # read API (used by MJoin and statistics)
    # ------------------------------------------------------------------ #

    def candidates(self, query_node: int):
        """``cos(query_node)`` as a set-like object."""
        return self._cos[query_node]

    def candidate_count(self, query_node: int) -> int:
        """``|cos(query_node)|``."""
        return len(self._cos[query_node])  # type: ignore[arg-type]

    def forward_adjacency(self, source: int, target: int, tail: int):
        """Candidates of ``target`` adjacent to ``tail`` under edge (source, target).

        Returns an empty set-like object if ``tail`` has no adjacency.
        """
        adjacency = self._forward[(source, target)].get(tail)
        if adjacency is None:
            return self._factory(())
        return adjacency

    def backward_adjacency(self, source: int, target: int, head: int):
        """Candidates of ``source`` adjacent to ``head`` under edge (source, target)."""
        adjacency = self._backward[(source, target)].get(head)
        if adjacency is None:
            return self._factory(())
        return adjacency

    def edge_candidate_count(self, source: int, target: int) -> int:
        """``|cos(e)|`` for the query edge ``(source, target)``."""
        return sum(len(heads) for heads in self._forward[(source, target)].values())  # type: ignore[arg-type]

    def edge_candidates(self, source: int, target: int) -> Iterator[Tuple[int, int]]:
        """Iterate over the candidate pairs of a query edge."""
        for tail, heads in self._forward[(source, target)].items():
            for head in heads:  # type: ignore[attr-defined]
                yield (tail, head)

    # ------------------------------------------------------------------ #
    # aggregate measures
    # ------------------------------------------------------------------ #

    def num_rig_nodes(self) -> int:
        """Total number of candidate (query node, data node) pairs."""
        return sum(len(candidates) for candidates in self._cos.values())  # type: ignore[arg-type]

    def num_rig_edges(self) -> int:
        """Total number of candidate edge pairs across all query edges."""
        return sum(
            self.edge_candidate_count(source, target) for (source, target) in self._forward
        )

    def size(self) -> int:
        """Total RIG size: candidate nodes plus candidate edges."""
        return self.num_rig_nodes() + self.num_rig_edges()

    def is_empty(self) -> bool:
        """True if some query node has no candidates (the answer is empty)."""
        return any(len(candidates) == 0 for candidates in self._cos.values())  # type: ignore[arg-type]

    def prune_unmatched_candidates(self) -> int:
        """Drop candidates that lost all adjacency on some incident query edge.

        After expansion a candidate may have an empty adjacency list for one
        of its query node's edges, which means it cannot participate in any
        occurrence.  Removing such nodes tightens the RIG; returns the number
        of candidates removed.
        """
        removed_total = 0
        changed = True
        while changed:
            changed = False
            for edge in self.query.edges():
                key = edge.endpoints()
                source_candidates = self._cos[edge.source]
                target_candidates = self._cos[edge.target]
                forward = self._forward[key]
                backward = self._backward[key]
                # Tails must have at least one head among current candidates.
                dead_tails = [
                    tail
                    for tail in list(source_candidates)  # type: ignore[call-overload]
                    if not self._has_live_partner(forward.get(tail), target_candidates)
                ]
                for tail in dead_tails:
                    source_candidates.discard(tail)  # type: ignore[attr-defined]
                    removed_total += 1
                    changed = True
                dead_heads = [
                    head
                    for head in list(target_candidates)  # type: ignore[call-overload]
                    if not self._has_live_partner(backward.get(head), source_candidates)
                ]
                for head in dead_heads:
                    target_candidates.discard(head)  # type: ignore[attr-defined]
                    removed_total += 1
                    changed = True
        return removed_total

    @staticmethod
    def _has_live_partner(adjacency, live_candidates) -> bool:
        if adjacency is None:
            return False
        for partner in adjacency:
            if partner in live_candidates:
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RuntimeIndexGraph(query={self.query.name!r}, nodes={self.num_rig_nodes()}, "
            f"edges={self.num_rig_edges()}, kind={self.set_kind!r})"
        )
