"""Shared evaluation context: match sets, edge matches, batch expansions.

:class:`MatchContext` bundles the data graph, a reachability index and the
derived structures every phase of query evaluation needs:

* per-label inverted lists (match sets);
* per-node label summaries of ancestors / descendants (used by node
  pre-filtering);
* edge-match tests ``(u, v) ∈ ms(e)`` for child and descendant edges;
* *batch* forward / backward expansion over candidate sets, which is the
  set-at-a-time formulation (§4.5 "batch checking direct connectivity
  constraints") that both the simulation algorithms and BuildRIG use.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, FrozenSet, Iterable, Optional, Set

from repro.graph.digraph import DataGraph
from repro.query.pattern import PatternEdge, PatternQuery
from repro.reachability.base import ReachabilityIndex
from repro.reachability.factory import build_reachability_index


class ChildCheckMethod(Enum):
    """How direct-connectivity constraints are checked (Fig. 12a)."""

    #: Per-pair binary search over the sorted adjacency list.
    BIN_SEARCH = "binSearch"
    #: Per-node intersection of the adjacency list with the candidate set.
    BIT_ITER = "bitIter"
    #: Batch: union of adjacency lists, one intersection with the candidate set.
    BIT_BAT = "bitBat"


class MatchContext:
    """Evaluation context shared by simulation, RIG construction and joins."""

    def __init__(
        self,
        graph: DataGraph,
        reachability: Optional[ReachabilityIndex] = None,
        reachability_kind: str = "bfl",
    ) -> None:
        self.graph = graph
        self.reachability = reachability or build_reachability_index(graph, kind=reachability_kind)
        self._descendant_labels: Optional[list] = None
        self._ancestor_labels: Optional[list] = None

    # ------------------------------------------------------------------ #
    # match sets
    # ------------------------------------------------------------------ #

    def match_set(self, query: PatternQuery, node: int) -> FrozenSet[int]:
        """``ms(q)``: the inverted list of the query node's label."""
        return self.graph.inverted_set(query.label(node))

    def match_sets(self, query: PatternQuery) -> Dict[int, Set[int]]:
        """Mutable copies of ``ms(q)`` for every query node."""
        return {node: set(self.match_set(query, node)) for node in query.nodes()}

    # ------------------------------------------------------------------ #
    # edge matches
    # ------------------------------------------------------------------ #

    def edge_match(self, edge: PatternEdge, u: int, v: int) -> bool:
        """Is the data pair ``(u, v)`` a match of the query edge (labels aside)?

        For a direct edge this is an edge test; for a reachability edge it is
        a path-existence test (a path of length >= 1, so a pair ``(u, u)``
        only matches when ``u`` lies on a cycle).
        """
        if edge.is_child:
            return self.graph.has_edge(u, v)
        if u == v:
            return self.reachability.reaches_strict(u, v)
        return self.reachability.reaches(u, v)

    def edge_match_with_method(
        self, edge: PatternEdge, u: int, v: int, method: ChildCheckMethod
    ) -> bool:
        """Like :meth:`edge_match` but honouring the child-check method."""
        if edge.is_child and method is ChildCheckMethod.BIN_SEARCH:
            return self.graph.has_edge_binary_search(u, v)
        return self.edge_match(edge, u, v)

    # ------------------------------------------------------------------ #
    # batch expansions over candidate sets
    # ------------------------------------------------------------------ #

    def forward_reachable_set(self, sources: Iterable[int]) -> Set[int]:
        """All nodes reachable from ``sources`` through a path of length >= 1."""
        graph = self.graph
        visited: Set[int] = set()
        frontier = list({child for source in sources for child in graph.successors(source)})
        visited.update(frontier)
        while frontier:
            next_frontier = []
            for node in frontier:
                for child in graph.successors(node):
                    if child not in visited:
                        visited.add(child)
                        next_frontier.append(child)
            frontier = next_frontier
        return visited

    def backward_reachable_set(self, targets: Iterable[int]) -> Set[int]:
        """All nodes that reach some node of ``targets`` through a path of length >= 1."""
        graph = self.graph
        visited: Set[int] = set()
        frontier = list({parent for target in targets for parent in graph.predecessors(target)})
        visited.update(frontier)
        while frontier:
            next_frontier = []
            for node in frontier:
                for parent in graph.predecessors(node):
                    if parent not in visited:
                        visited.add(parent)
                        next_frontier.append(parent)
            frontier = next_frontier
        return visited

    def forward_targets(self, edge: PatternEdge, sources: Iterable[int]) -> Set[int]:
        """Batch expansion: all data nodes ``v`` with some ``u`` in ``sources``
        such that ``(u, v) ∈ ms(edge)`` (ignoring labels)."""
        if edge.is_child:
            graph = self.graph
            result: Set[int] = set()
            for source in sources:
                result.update(graph.successors(source))
            return result
        return self.forward_reachable_set(sources)

    def backward_sources(self, edge: PatternEdge, targets: Iterable[int]) -> Set[int]:
        """Batch expansion: all data nodes ``u`` with some ``v`` in ``targets``
        such that ``(u, v) ∈ ms(edge)`` (ignoring labels)."""
        if edge.is_child:
            graph = self.graph
            result: Set[int] = set()
            for target in targets:
                result.update(graph.predecessors(target))
            return result
        return self.backward_reachable_set(targets)

    # ------------------------------------------------------------------ #
    # label summaries for node pre-filtering
    # ------------------------------------------------------------------ #

    def _compute_label_summaries(self) -> None:
        """Compute, per data node, the label sets of its ancestors/descendants.

        A fixpoint propagation over the graph: descendant labels flow against
        edge direction (from children to parents), ancestor labels flow along
        edge direction.  On cyclic graphs the fixpoint still converges because
        label sets only grow and are bounded by the alphabet.
        """
        graph = self.graph
        n = graph.num_nodes
        label_bit = {label: 1 << index for index, label in enumerate(graph.label_alphabet())}
        self._label_bit = label_bit

        descendant = [0] * n
        changed = True
        while changed:
            changed = False
            for node in range(n):
                bits = descendant[node]
                for child in graph.successors(node):
                    bits |= descendant[child] | label_bit[graph.label(child)]
                if bits != descendant[node]:
                    descendant[node] = bits
                    changed = True
        ancestor = [0] * n
        changed = True
        while changed:
            changed = False
            for node in range(n):
                bits = ancestor[node]
                for parent in graph.predecessors(node):
                    bits |= ancestor[parent] | label_bit[graph.label(parent)]
                if bits != ancestor[node]:
                    ancestor[node] = bits
                    changed = True
        self._descendant_labels = descendant
        self._ancestor_labels = ancestor

    def descendant_label_bits(self, node: int) -> int:
        """Bit mask of labels appearing among the strict descendants of ``node``."""
        if self._descendant_labels is None:
            self._compute_label_summaries()
        return self._descendant_labels[node]

    def ancestor_label_bits(self, node: int) -> int:
        """Bit mask of labels appearing among the strict ancestors of ``node``."""
        if self._ancestor_labels is None:
            self._compute_label_summaries()
        return self._ancestor_labels[node]

    def label_bit(self, label: str) -> int:
        """Bit assigned to ``label`` in the label summaries (0 if unknown)."""
        if self._descendant_labels is None:
            self._compute_label_summaries()
        return self._label_bit.get(label, 0)
