"""Classic dual simulation (edge-to-edge only).

Dual simulation [Ma et al., TODS 2014] is double simulation's ancestor: the
same forward + backward conditions, but every query edge is treated as a
direct edge (edge-to-edge mapping only).  It is kept as a comparison point:
on hybrid or descendant-edge queries it over-prunes — it may remove data
nodes that *do* participate in edge-to-path homomorphisms — which is exactly
why the paper introduces double simulation (§4.2, "existing simulation-based
pruning techniques consider only edge-to-edge matching").
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.query.pattern import EdgeType, PatternEdge, PatternQuery
from repro.simulation.context import MatchContext
from repro.simulation.fbsim import SimulationOptions, SimulationResult, fbsim_basic


def dual_simulation(
    context: MatchContext,
    query: PatternQuery,
    initial: Optional[Dict[int, Set[int]]] = None,
) -> SimulationResult:
    """Compute the dual simulation of ``query`` by the data graph.

    All query edges are coerced to direct edges before running the standard
    double-simulation fixpoint, which makes the result the classic dual
    simulation.  The returned :class:`SimulationResult` reports the
    algorithm name ``"DualSim"``.
    """
    coerced_edges = [
        PatternEdge(edge.source, edge.target, EdgeType.CHILD) for edge in query.edges()
    ]
    coerced = query.with_edges(coerced_edges, name=f"{query.name}-dual")
    result = fbsim_basic(context, coerced, initial, SimulationOptions())
    return SimulationResult(
        candidates=result.candidates,
        passes=result.passes,
        pruned=result.pruned,
        algorithm="DualSim",
        elapsed_seconds=result.elapsed_seconds,
        pruned_per_pass=result.pruned_per_pass,
    )
