"""Double simulation and node filtering.

Double simulation (Definition 1 / §4.2 of the paper) is the largest binary
relation between query nodes and data nodes that respects, for every query
edge, the existence of a forward match (outgoing constraint) and a backward
match (incoming constraint), where a match is edge-to-edge for direct edges
and edge-to-path for reachability edges.  It sandwiches the query answer:
``os(q) ⊆ FB(q) ⊆ ms(q)`` for every query node ``q``.

This package provides:

* :class:`MatchContext` — match sets, edge-match tests, batch forward /
  backward expansion sets, and node pre-filtering;
* :func:`fbsim_basic` (FBSimBas), :func:`fbsim_dag` (FBSimDag) and
  :func:`fbsim` (FBSim, dag + Δ) with the tuning options of §4.4–4.5;
* :func:`dual_simulation` — the classic edge-to-edge dual simulation,
  kept as a point of comparison.
"""

from repro.simulation.context import MatchContext, ChildCheckMethod
from repro.simulation.matchsets import match_sets, node_prefilter
from repro.simulation.fbsim import (
    SimulationOptions,
    SimulationResult,
    fbsim_basic,
    fbsim_dag,
    fbsim,
    forward_simulation,
    backward_simulation,
)
from repro.simulation.dual import dual_simulation

__all__ = [
    "MatchContext",
    "ChildCheckMethod",
    "match_sets",
    "node_prefilter",
    "SimulationOptions",
    "SimulationResult",
    "fbsim_basic",
    "fbsim_dag",
    "fbsim",
    "forward_simulation",
    "backward_simulation",
    "dual_simulation",
]
