"""Double-simulation algorithms: FBSimBas, FBSimDag and FBSim (dag + Δ).

All three compute the same relation — the double simulation ``FB`` of the
query by the data graph (Definition 1) — but differ in the order in which
they examine query edges, which governs how many passes are needed to reach
the fixpoint (the Fig. 12(b) comparison).  They share:

* initial candidates: the match sets ``ms(q)`` (or a caller-provided
  refinement, e.g. the node pre-filter output);
* a *forward* check per edge ``(qi, qj)``: drop from ``FB(qi)`` every node
  with no partner in ``FB(qj)``;
* a *backward* check per edge: drop from ``FB(qj)`` every node with no
  partner in ``FB(qi)``.

The checks are implemented set-at-a-time ("bitBat"): the partner test for an
entire candidate set is one union of adjacency lists (direct edges) or one
multi-source BFS (reachability edges) followed by one intersection, exactly
as §4.5 describes.  Per-node methods (binSearch / bitIter) are also
available for the Fig. 12(a) ablation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import QueryError
from repro.query.classify import dag_decomposition, is_dag, topological_order
from repro.query.pattern import PatternEdge, PatternQuery
from repro.simulation.context import ChildCheckMethod, MatchContext


@dataclass
class SimulationOptions:
    """Tuning knobs for double-simulation computation (§4.4–4.5)."""

    #: Stop after this many passes (approximate FB).  The paper's evaluation
    #: fixes this to 3; ``None`` runs to the fixpoint (exact FB).
    max_passes: Optional[int] = None
    #: Skip re-checking constraints whose operand sets did not change in the
    #: previous pass (the "DagMap" change-flag optimisation).
    use_change_flags: bool = True
    #: How direct-connectivity constraints are checked.
    child_check: ChildCheckMethod = ChildCheckMethod.BIT_BAT
    #: Stop a pass early if the number of pruned nodes falls below this
    #: threshold (0 disables the threshold-based early stop).
    prune_threshold: int = 0


@dataclass
class SimulationResult:
    """Outcome of a double-simulation computation."""

    candidates: Dict[int, Set[int]]
    passes: int
    pruned: int
    algorithm: str
    elapsed_seconds: float
    pruned_per_pass: List[int] = field(default_factory=list)

    def is_empty(self) -> bool:
        """True if some query node has no candidates (the answer is empty)."""
        return any(not nodes for nodes in self.candidates.values())

    def total_candidates(self) -> int:
        """Total number of (query node, data node) candidate pairs."""
        return sum(len(nodes) for nodes in self.candidates.values())


# ---------------------------------------------------------------------- #
# pruning primitives
# ---------------------------------------------------------------------- #


def _forward_allowed(
    context: MatchContext, edge: PatternEdge, head_candidates: Set[int], method: ChildCheckMethod
) -> Set[int]:
    """Data nodes allowed as tails of ``edge`` given the head candidate set."""
    return context.backward_sources(edge, head_candidates)


def _backward_allowed(
    context: MatchContext, edge: PatternEdge, tail_candidates: Set[int], method: ChildCheckMethod
) -> Set[int]:
    """Data nodes allowed as heads of ``edge`` given the tail candidate set."""
    return context.forward_targets(edge, tail_candidates)


def _prune_tail(
    context: MatchContext,
    edge: PatternEdge,
    candidates: Dict[int, Set[int]],
    method: ChildCheckMethod,
) -> int:
    """Forward check: prune ``candidates[edge.source]``.  Returns #pruned."""
    tail_set = candidates[edge.source]
    head_set = candidates[edge.target]
    if not tail_set:
        return 0
    if not head_set:
        pruned = len(tail_set)
        tail_set.clear()
        return pruned
    if method is ChildCheckMethod.BIT_BAT or edge.is_descendant:
        allowed = _forward_allowed(context, edge, head_set, method)
        survivors = tail_set & allowed
    else:
        graph = context.graph
        if method is ChildCheckMethod.BIN_SEARCH:
            survivors = {
                v
                for v in tail_set
                if any(graph.has_edge_binary_search(v, w) for w in head_set)
            }
        else:  # BIT_ITER: per-node adjacency ∩ candidate-set intersection
            survivors = {v for v in tail_set if graph.successor_set(v) & head_set}
    pruned = len(tail_set) - len(survivors)
    if pruned:
        candidates[edge.source] = survivors
    return pruned


def _prune_head(
    context: MatchContext,
    edge: PatternEdge,
    candidates: Dict[int, Set[int]],
    method: ChildCheckMethod,
) -> int:
    """Backward check: prune ``candidates[edge.target]``.  Returns #pruned."""
    tail_set = candidates[edge.source]
    head_set = candidates[edge.target]
    if not head_set:
        return 0
    if not tail_set:
        pruned = len(head_set)
        head_set.clear()
        return pruned
    if method is ChildCheckMethod.BIT_BAT or edge.is_descendant:
        allowed = _backward_allowed(context, edge, tail_set, method)
        survivors = head_set & allowed
    else:
        graph = context.graph
        if method is ChildCheckMethod.BIN_SEARCH:
            survivors = {
                v
                for v in head_set
                if any(graph.has_edge_binary_search(u, v) for u in tail_set)
            }
        else:
            survivors = {v for v in head_set if graph.predecessor_set(v) & tail_set}
    pruned = len(head_set) - len(survivors)
    if pruned:
        candidates[edge.target] = survivors
    return pruned


def _initial_candidates(
    context: MatchContext, query: PatternQuery, initial: Optional[Dict[int, Set[int]]]
) -> Dict[int, Set[int]]:
    if initial is None:
        return context.match_sets(query)
    return {node: set(initial[node]) for node in query.nodes()}


# ---------------------------------------------------------------------- #
# FBSimBas — arbitrary edge order (Algorithm 1)
# ---------------------------------------------------------------------- #


def fbsim_basic(
    context: MatchContext,
    query: PatternQuery,
    initial: Optional[Dict[int, Set[int]]] = None,
    options: Optional[SimulationOptions] = None,
) -> SimulationResult:
    """Compute double simulation by iterating over edges in arbitrary order."""
    options = options or SimulationOptions()
    start = time.perf_counter()
    candidates = _initial_candidates(context, query, initial)
    edges = query.edges()

    passes = 0
    total_pruned = 0
    pruned_per_pass: List[int] = []
    while True:
        passes += 1
        pruned_this_pass = 0
        for edge in edges:  # forwardPrune
            pruned_this_pass += _prune_tail(context, edge, candidates, options.child_check)
        for edge in edges:  # backwardPrune
            pruned_this_pass += _prune_head(context, edge, candidates, options.child_check)
        total_pruned += pruned_this_pass
        pruned_per_pass.append(pruned_this_pass)
        if pruned_this_pass == 0:
            break
        if options.max_passes is not None and passes >= options.max_passes:
            break
        if options.prune_threshold and pruned_this_pass < options.prune_threshold:
            break

    return SimulationResult(
        candidates=candidates,
        passes=passes,
        pruned=total_pruned,
        algorithm="FBSimBas",
        elapsed_seconds=time.perf_counter() - start,
        pruned_per_pass=pruned_per_pass,
    )


# ---------------------------------------------------------------------- #
# FBSimDag — topological order (Algorithm 2)
# ---------------------------------------------------------------------- #


def _dag_pass(
    context: MatchContext,
    query: PatternQuery,
    dag_edges: Sequence[PatternEdge],
    order: Sequence[int],
    candidates: Dict[int, Set[int]],
    options: SimulationOptions,
    dirty: Optional[Set[int]],
) -> Tuple[int, Set[int]]:
    """One FBSimDag pass (bottom-up forward sim, then top-down backward sim).

    Returns ``(pruned, changed_nodes)``.
    """
    out_edges: Dict[int, List[PatternEdge]] = {node: [] for node in query.nodes()}
    in_edges: Dict[int, List[PatternEdge]] = {node: [] for node in query.nodes()}
    for edge in dag_edges:
        out_edges[edge.source].append(edge)
        in_edges[edge.target].append(edge)

    pruned = 0
    changed: Set[int] = set()

    # forwardSim: reverse topological order, check outgoing edges.
    for node in reversed(order):
        for edge in out_edges[node]:
            if dirty is not None and node not in dirty and edge.target not in dirty and edge.target not in changed:
                continue
            removed = _prune_tail(context, edge, candidates, options.child_check)
            if removed:
                pruned += removed
                changed.add(node)

    # backwardSim: topological order, check incoming edges.
    for node in order:
        for edge in in_edges[node]:
            if dirty is not None and node not in dirty and edge.source not in dirty and edge.source not in changed:
                continue
            removed = _prune_head(context, edge, candidates, options.child_check)
            if removed:
                pruned += removed
                changed.add(node)

    return pruned, changed


def fbsim_dag(
    context: MatchContext,
    query: PatternQuery,
    initial: Optional[Dict[int, Set[int]]] = None,
    options: Optional[SimulationOptions] = None,
) -> SimulationResult:
    """Compute double simulation for a dag pattern by topological traversals."""
    options = options or SimulationOptions()
    order = topological_order(query)
    if order is None:
        raise QueryError("fbsim_dag requires a dag pattern; use fbsim for cyclic patterns")
    start = time.perf_counter()
    candidates = _initial_candidates(context, query, initial)

    passes = 0
    total_pruned = 0
    pruned_per_pass: List[int] = []
    dirty: Optional[Set[int]] = None  # None = first pass, check everything
    while True:
        passes += 1
        pruned_this_pass, changed = _dag_pass(
            context, query, query.edges(), order, candidates, options, dirty
        )
        total_pruned += pruned_this_pass
        pruned_per_pass.append(pruned_this_pass)
        if pruned_this_pass == 0:
            break
        if options.max_passes is not None and passes >= options.max_passes:
            break
        if options.prune_threshold and pruned_this_pass < options.prune_threshold:
            break
        dirty = changed if options.use_change_flags else None

    return SimulationResult(
        candidates=candidates,
        passes=passes,
        pruned=total_pruned,
        algorithm="FBSimDag",
        elapsed_seconds=time.perf_counter() - start,
        pruned_per_pass=pruned_per_pass,
    )


# ---------------------------------------------------------------------- #
# FBSim — dag + back edges (Algorithm 3)
# ---------------------------------------------------------------------- #


def fbsim(
    context: MatchContext,
    query: PatternQuery,
    initial: Optional[Dict[int, Set[int]]] = None,
    options: Optional[SimulationOptions] = None,
) -> SimulationResult:
    """Compute double simulation for an arbitrary pattern (Dag+Δ strategy)."""
    options = options or SimulationOptions()
    if is_dag(query):
        result = fbsim_dag(context, query, initial, options)
        return SimulationResult(
            candidates=result.candidates,
            passes=result.passes,
            pruned=result.pruned,
            algorithm="FBSim",
            elapsed_seconds=result.elapsed_seconds,
            pruned_per_pass=result.pruned_per_pass,
        )

    start = time.perf_counter()
    dag_edges, back_edges = dag_decomposition(query)
    dag_query = query.with_edges(dag_edges, name=f"{query.name}-dag")
    order = topological_order(dag_query)
    if order is None:  # pragma: no cover - decomposition guarantees a dag
        raise QueryError("dag decomposition produced a cyclic edge set")

    candidates = _initial_candidates(context, query, initial)
    passes = 0
    total_pruned = 0
    pruned_per_pass: List[int] = []
    dirty: Optional[Set[int]] = None
    while True:
        passes += 1
        pruned_this_pass, changed = _dag_pass(
            context, query, dag_edges, order, candidates, options, dirty
        )
        # FBSimBas-style sweep over the back edges.
        for edge in back_edges:
            removed = _prune_tail(context, edge, candidates, options.child_check)
            if removed:
                pruned_this_pass += removed
                changed.add(edge.source)
            removed = _prune_head(context, edge, candidates, options.child_check)
            if removed:
                pruned_this_pass += removed
                changed.add(edge.target)
        total_pruned += pruned_this_pass
        pruned_per_pass.append(pruned_this_pass)
        if pruned_this_pass == 0:
            break
        if options.max_passes is not None and passes >= options.max_passes:
            break
        if options.prune_threshold and pruned_this_pass < options.prune_threshold:
            break
        dirty = changed if options.use_change_flags else None

    return SimulationResult(
        candidates=candidates,
        passes=passes,
        pruned=total_pruned,
        algorithm="FBSim",
        elapsed_seconds=time.perf_counter() - start,
        pruned_per_pass=pruned_per_pass,
    )


# ---------------------------------------------------------------------- #
# one-sided simulations (used by tests and by the dual-simulation baseline)
# ---------------------------------------------------------------------- #


def forward_simulation(
    context: MatchContext,
    query: PatternQuery,
    initial: Optional[Dict[int, Set[int]]] = None,
) -> Dict[int, Set[int]]:
    """Largest relation satisfying only the forward (outgoing) conditions."""
    candidates = _initial_candidates(context, query, initial)
    method = ChildCheckMethod.BIT_BAT
    while True:
        pruned = 0
        for edge in query.edges():
            pruned += _prune_tail(context, edge, candidates, method)
        if pruned == 0:
            return candidates


def backward_simulation(
    context: MatchContext,
    query: PatternQuery,
    initial: Optional[Dict[int, Set[int]]] = None,
) -> Dict[int, Set[int]]:
    """Largest relation satisfying only the backward (incoming) conditions."""
    candidates = _initial_candidates(context, query, initial)
    method = ChildCheckMethod.BIT_BAT
    while True:
        pruned = 0
        for edge in query.edges():
            pruned += _prune_head(context, edge, candidates, method)
        if pruned == 0:
            return candidates
