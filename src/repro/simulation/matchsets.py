"""Match sets and node pre-filtering.

Node pre-filtering is the technique of [11, 63] (applied to JM and TM, and
to GM in its GM-F ablation): before any join or simulation, prune from the
inverted list of each query node the data nodes that cannot satisfy the
query node's local structural constraints — the labels required among its
children / parents (for direct edges) and among its descendants / ancestors
(for reachability edges).  This is strictly weaker than double simulation
(it ignores which *specific* candidate provides the support), which is what
the Fig. 13 experiment demonstrates.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.query.pattern import PatternQuery
from repro.simulation.context import MatchContext


def match_sets(context: MatchContext, query: PatternQuery) -> Dict[int, Set[int]]:
    """``ms(q)`` for every query node: mutable copies of the inverted lists."""
    return context.match_sets(query)


def node_prefilter(context: MatchContext, query: PatternQuery) -> Dict[int, Set[int]]:
    """Prune match sets with label-level structural constraints.

    For every query node ``q`` and candidate data node ``v``:

    * for each outgoing direct edge ``(q, q')``, some child of ``v`` must
      carry ``label(q')``;
    * for each outgoing reachability edge, some strict descendant of ``v``
      must carry ``label(q')``;
    * symmetrically for incoming edges with parents / ancestors.

    Candidates violating any constraint are dropped.  The filter is
    label-based only, so it cannot prune nodes whose support is itself
    pruned — that is double simulation's job.
    """
    graph = context.graph
    candidates = context.match_sets(query)

    for node in query.nodes():
        out_child_labels = []
        out_desc_labels = []
        for child in query.children(node):
            edge = query.edge(node, child)
            if edge.is_child:
                out_child_labels.append(query.label(child))
            else:
                out_desc_labels.append(query.label(child))
        in_child_labels = []
        in_desc_labels = []
        for parent in query.parents(node):
            edge = query.edge(parent, node)
            if edge.is_child:
                in_child_labels.append(query.label(parent))
            else:
                in_desc_labels.append(query.label(parent))

        if not (out_child_labels or out_desc_labels or in_child_labels or in_desc_labels):
            continue

        desc_bits_needed = 0
        for label in out_desc_labels:
            desc_bits_needed |= context.label_bit(label)
        anc_bits_needed = 0
        for label in in_desc_labels:
            anc_bits_needed |= context.label_bit(label)

        surviving = set()
        for candidate in candidates[node]:
            ok = True
            if out_child_labels:
                child_labels = {graph.label(child) for child in graph.successors(candidate)}
                ok = all(label in child_labels for label in out_child_labels)
            if ok and in_child_labels:
                parent_labels = {graph.label(parent) for parent in graph.predecessors(candidate)}
                ok = all(label in parent_labels for label in in_child_labels)
            if ok and desc_bits_needed:
                ok = (context.descendant_label_bits(candidate) & desc_bits_needed) == desc_bits_needed
            if ok and anc_bits_needed:
                ok = (context.ancestor_label_bits(candidate) & anc_bits_needed) == anc_bits_needed
            if ok:
                surviving.add(candidate)
        candidates[node] = surviving

    return candidates
