"""Baseline matchers the paper compares GM against.

* :func:`bruteforce_homomorphisms` — exhaustive oracle used by the tests;
* :class:`JMMatcher` — the join-based approach: one relation per query edge,
  joined pairwise along an optimised left-deep plan (the style of R-Join and
  classic relational engines), with the characteristic intermediate-result
  explosion;
* :class:`TMMatcher` — the tree-based approach: evaluate a spanning tree of
  the query, then filter tree matches against the non-tree edges;
* :class:`ISOMatcher` — subgraph-isomorphism backtracking with label /
  degree filtering (child-only queries).
"""

from repro.baselines.bruteforce import bruteforce_homomorphisms, bruteforce_isomorphisms
from repro.baselines.jm import JMMatcher
from repro.baselines.tm import TMMatcher
from repro.baselines.iso import ISOMatcher

__all__ = [
    "bruteforce_homomorphisms",
    "bruteforce_isomorphisms",
    "JMMatcher",
    "TMMatcher",
    "ISOMatcher",
]
