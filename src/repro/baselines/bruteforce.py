"""Exhaustive homomorphism / isomorphism enumeration (test oracle).

These enumerators check every combination of candidate assignments with no
pruning beyond label filtering, so they are only usable on small graphs and
queries — which is exactly what the correctness tests need: an
implementation simple enough to be obviously right.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.graph.digraph import DataGraph
from repro.query.pattern import PatternQuery
from repro.reachability.base import BFSReachability, ReachabilityIndex


def _edge_ok(
    graph: DataGraph,
    reachability: ReachabilityIndex,
    is_child: bool,
    u: int,
    v: int,
) -> bool:
    if is_child:
        return graph.has_edge(u, v)
    if u == v:
        return reachability.reaches_strict(u, v)
    return reachability.reaches(u, v)


def _enumerate(
    graph: DataGraph,
    query: PatternQuery,
    injective: bool,
    reachability: Optional[ReachabilityIndex] = None,
    limit: Optional[int] = None,
) -> List[Tuple[int, ...]]:
    reachability = reachability or BFSReachability(graph)
    candidates: Dict[int, Tuple[int, ...]] = {
        node: graph.inverted_list(query.label(node)) for node in query.nodes()
    }
    order = list(query.nodes())
    results: List[Tuple[int, ...]] = []
    assignment: List[Optional[int]] = [None] * query.num_nodes
    used: Set[int] = set()

    def consistent(position: int, value: int) -> bool:
        node = order[position]
        for earlier in range(position):
            other = order[earlier]
            other_value = assignment[other]
            if query.has_edge(node, other):
                edge = query.edge(node, other)
                if not _edge_ok(graph, reachability, edge.is_child, value, other_value):
                    return False
            if query.has_edge(other, node):
                edge = query.edge(other, node)
                if not _edge_ok(graph, reachability, edge.is_child, other_value, value):
                    return False
        return True

    def recurse(position: int) -> bool:
        if position == len(order):
            results.append(tuple(assignment))  # order == node ids, so direct
            return limit is not None and len(results) >= limit
        node = order[position]
        for value in candidates[node]:
            if injective and value in used:
                continue
            if not consistent(position, value):
                continue
            assignment[node] = value
            if injective:
                used.add(value)
            stop = recurse(position + 1)
            if injective:
                used.discard(value)
            assignment[node] = None
            if stop:
                return True
        return False

    recurse(0)
    return results


def bruteforce_homomorphisms(
    graph: DataGraph,
    query: PatternQuery,
    reachability: Optional[ReachabilityIndex] = None,
    limit: Optional[int] = None,
) -> List[Tuple[int, ...]]:
    """All homomorphic occurrences of ``query`` on ``graph`` (tuples by query node id)."""
    return _enumerate(graph, query, injective=False, reachability=reachability, limit=limit)


def bruteforce_isomorphisms(
    graph: DataGraph,
    query: PatternQuery,
    reachability: Optional[ReachabilityIndex] = None,
    limit: Optional[int] = None,
) -> List[Tuple[int, ...]]:
    """All injective (isomorphic) occurrences of ``query`` on ``graph``."""
    return _enumerate(graph, query, injective=True, reachability=reachability, limit=limit)
