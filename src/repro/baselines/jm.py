"""JM: the join-based baseline (R-Join / binary-join style).

JM evaluates a pattern query the way classic relational approaches do:

1. materialise one relation per query edge, holding every data-node pair
   matching the edge (edge-to-edge for direct edges, edge-to-path for
   reachability edges);
2. choose a left-deep join order over those relations (dynamic programming
   when the query is small enough, a greedy connected order otherwise — the
   paper notes the DP enumeration itself stops scaling past ~10 nodes);
3. execute the plan as a sequence of binary hash joins over partial
   occurrence tuples.

The defining weakness the paper measures is the intermediate-result
explosion: partial results can vastly exceed the final answer.  The
executor counts intermediate tuples against the budget's
``max_intermediate_results`` and reports ``OUT_OF_MEMORY`` when the cap is
hit — the analogue of the JVM out-of-memory failures in the paper's tables.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import MemoryBudgetExceeded, TimeoutExceeded
from repro.graph.digraph import DataGraph
from repro.matching.result import Budget, MatchReport, MatchStatus
from repro.matching.stream import MatchStream
from repro.query.pattern import PatternEdge, PatternQuery
from repro.query.transitive import transitive_reduction
from repro.simulation.context import MatchContext
from repro.simulation.matchsets import node_prefilter

EdgeRelation = List[Tuple[int, int]]


class JMMatcher:
    """Join-based pattern matcher (the JM baseline)."""

    def __init__(
        self,
        graph: DataGraph,
        context: Optional[MatchContext] = None,
        reachability_kind: str = "bfl",
        budget: Optional[Budget] = None,
        prefilter: bool = True,
        apply_transitive_reduction: bool = True,
        dp_plan_node_limit: int = 10,
    ) -> None:
        self.graph = graph
        self.context = context or MatchContext(graph, reachability_kind=reachability_kind)
        self.budget = budget or Budget()
        self.prefilter = prefilter
        self.apply_transitive_reduction = apply_transitive_reduction
        self.dp_plan_node_limit = dp_plan_node_limit

    # ------------------------------------------------------------------ #
    # edge relations
    # ------------------------------------------------------------------ #

    def _edge_relation(
        self, edge: PatternEdge, candidates: Dict[int, Set[int]]
    ) -> EdgeRelation:
        """Materialise the match relation of one query edge."""
        context = self.context
        graph = self.graph
        tails = candidates[edge.source]
        heads = candidates[edge.target]
        relation: EdgeRelation = []
        if edge.is_child:
            for tail in tails:
                for head in graph.successor_set(tail) & heads:
                    relation.append((tail, head))
        else:
            reachability = context.reachability
            if len(heads) > 32:
                for tail in tails:
                    reachable = context.forward_reachable_set((tail,))
                    for head in heads:
                        if head in reachable:
                            relation.append((tail, head))
            else:
                for tail in tails:
                    for head in heads:
                        if tail == head:
                            if reachability.reaches_strict(tail, head):
                                relation.append((tail, head))
                        elif reachability.reaches(tail, head):
                            relation.append((tail, head))
        return relation

    # ------------------------------------------------------------------ #
    # plan selection
    # ------------------------------------------------------------------ #

    def _plan(
        self, query: PatternQuery, relation_sizes: Dict[Tuple[int, int], int]
    ) -> Tuple[List[PatternEdge], int]:
        """Choose a left-deep edge order.  Returns (plan, plans_considered)."""
        edges = list(query.edges())
        if len(edges) <= 1:
            return edges, 1
        if query.num_nodes <= self.dp_plan_node_limit and len(edges) <= 12:
            return self._dp_plan(query, edges, relation_sizes)
        return self._greedy_plan(query, edges, relation_sizes), 1

    def _greedy_plan(
        self,
        query: PatternQuery,
        edges: List[PatternEdge],
        relation_sizes: Dict[Tuple[int, int], int],
    ) -> List[PatternEdge]:
        remaining = list(edges)
        remaining.sort(key=lambda edge: relation_sizes[edge.endpoints()])
        plan = [remaining.pop(0)]
        covered = set(plan[0].endpoints())
        while remaining:
            connected = [edge for edge in remaining if covered & set(edge.endpoints())]
            pool = connected or remaining
            chosen = min(pool, key=lambda edge: relation_sizes[edge.endpoints()])
            plan.append(chosen)
            covered.update(chosen.endpoints())
            remaining.remove(chosen)
        return plan

    def _dp_plan(
        self,
        query: PatternQuery,
        edges: List[PatternEdge],
        relation_sizes: Dict[Tuple[int, int], int],
    ) -> Tuple[List[PatternEdge], int]:
        """Left-deep plan by subset DP with independence-based cost estimates."""
        node_cardinality = {
            node: max(len(self.graph.inverted_list(query.label(node))), 1)
            for node in query.nodes()
        }

        def selectivity(edge: PatternEdge) -> float:
            denom = node_cardinality[edge.source] * node_cardinality[edge.target]
            return max(relation_sizes[edge.endpoints()], 1) / float(denom)

        plans_considered = 0
        # state: frozenset of edge indices -> (cost, estimated cardinality, plan tuple)
        best: Dict[frozenset, Tuple[float, float, Tuple[int, ...]]] = {}
        for index, edge in enumerate(edges):
            best[frozenset((index,))] = (
                float(relation_sizes[edge.endpoints()]),
                float(max(relation_sizes[edge.endpoints()], 1)),
                (index,),
            )
            plans_considered += 1

        def covered_nodes(state: frozenset) -> Set[int]:
            nodes: Set[int] = set()
            for index in state:
                nodes.update(edges[index].endpoints())
            return nodes

        for size in range(1, len(edges)):
            for state in [s for s in list(best) if len(s) == size]:
                cost, cardinality, plan = best[state]
                nodes = covered_nodes(state)
                for index, edge in enumerate(edges):
                    if index in state:
                        continue
                    if not nodes & set(edge.endpoints()):
                        continue
                    plans_considered += 1
                    new_nodes = set(edge.endpoints()) - nodes
                    estimate = cardinality * selectivity(edge)
                    for node in new_nodes:
                        estimate *= node_cardinality[node]
                    new_cost = cost + estimate
                    new_state = state | {index}
                    incumbent = best.get(new_state)
                    if incumbent is None or new_cost < incumbent[0]:
                        best[new_state] = (new_cost, estimate, plan + (index,))

        full = frozenset(range(len(edges)))
        if full not in best:
            return self._greedy_plan(query, edges, relation_sizes), plans_considered
        return [edges[index] for index in best[full][2]], plans_considered

    # ------------------------------------------------------------------ #
    # plan execution
    # ------------------------------------------------------------------ #

    def match(self, query: PatternQuery, budget: Optional[Budget] = None) -> MatchReport:
        """Evaluate ``query`` with binary joins; see the class docstring."""
        budget = budget or self.budget
        clock = budget.start_clock()
        start = time.perf_counter()
        original_query = query
        try:
            if self.apply_transitive_reduction:
                query = transitive_reduction(query)
            candidates = (
                node_prefilter(self.context, query)
                if self.prefilter
                else self.context.match_sets(query)
            )
            if query.num_edges == 0:
                occurrences = [(value,) for value in sorted(candidates[0])]
                return MatchReport(
                    query_name=original_query.name,
                    algorithm="JM",
                    status=MatchStatus.OK,
                    occurrences=occurrences,
                    num_matches=len(occurrences),
                    matching_seconds=time.perf_counter() - start,
                )
            relations: Dict[Tuple[int, int], EdgeRelation] = {}
            for edge in query.edges():
                clock.check_time()
                relations[edge.endpoints()] = self._edge_relation(edge, candidates)
            relation_sizes = {key: len(relation) for key, relation in relations.items()}
            plan, plans_considered = self._plan(query, relation_sizes)
            matching_seconds = time.perf_counter() - start

            enumeration_start = time.perf_counter()
            occurrences, hit_limit, peak_intermediate = self._execute(
                query, plan, relations, budget, clock
            )
            enumeration_seconds = time.perf_counter() - enumeration_start
            status = MatchStatus.MATCH_LIMIT if hit_limit else MatchStatus.OK
            return MatchReport(
                query_name=original_query.name,
                algorithm="JM",
                status=status,
                occurrences=occurrences,
                num_matches=len(occurrences),
                matching_seconds=matching_seconds,
                enumeration_seconds=enumeration_seconds,
                extra={
                    "plans_considered": plans_considered,
                    "peak_intermediate": peak_intermediate,
                },
            )
        except TimeoutExceeded:
            return MatchReport(
                query_name=original_query.name,
                algorithm="JM",
                status=MatchStatus.TIMEOUT,
                matching_seconds=time.perf_counter() - start,
            )
        except MemoryBudgetExceeded:
            return MatchReport(
                query_name=original_query.name,
                algorithm="JM",
                status=MatchStatus.OUT_OF_MEMORY,
                matching_seconds=time.perf_counter() - start,
            )

    @staticmethod
    def _probe_extensions(
        edge: PatternEdge,
        relation: EdgeRelation,
        bound: List[int],
    ) -> Tuple[List[int], "object"]:
        """Prepare one hash join against ``relation`` for rows bound as ``bound``.

        Returns ``(next_bound, extend)`` where ``extend(row)`` iterates the
        joined rows (original row plus any newly bound columns) for one
        partial tuple.
        """
        source, target = edge.endpoints()
        source_bound = source in bound
        target_bound = target in bound
        next_bound = list(bound)
        if not source_bound:
            next_bound.append(source)
        if not target_bound:
            next_bound.append(target)

        if source_bound and target_bound:
            source_position = bound.index(source)
            target_position = bound.index(target)
            pair_set = set(relation)

            def extend(row: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
                if (row[source_position], row[target_position]) in pair_set:
                    yield row

        elif source_bound:
            source_position = bound.index(source)
            by_tail: Dict[int, List[int]] = {}
            for tail, head in relation:
                by_tail.setdefault(tail, []).append(head)

            def extend(row: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
                for head in by_tail.get(row[source_position], ()):
                    yield row + (head,)

        elif target_bound:
            target_position = bound.index(target)
            by_head: Dict[int, List[int]] = {}
            for tail, head in relation:
                by_head.setdefault(head, []).append(tail)

            def extend(row: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
                for tail in by_head.get(row[target_position], ()):
                    yield row + (tail,)

        else:
            # Cartesian product with a disconnected edge (avoided by the
            # planner, but handled for completeness).
            def extend(row: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
                for tail, head in relation:
                    yield row + (tail, head)

        return next_bound, extend

    def _execute(
        self,
        query: PatternQuery,
        plan: Sequence[PatternEdge],
        relations: Dict[Tuple[int, int], EdgeRelation],
        budget: Budget,
        clock,
    ) -> Tuple[List[Tuple[int, ...]], bool, int]:
        """Run the left-deep plan with binary hash joins over partial tuples."""
        n = query.num_nodes
        # Partial tuples: dict from query node -> data node, stored as tuples
        # over the bound variable list for compactness.
        current, bound, peak = self._join_prefix(plan, relations, clock)

        # Project partial tuples onto query-node order, deduplicate, cap.
        occurrences: List[Tuple[int, ...]] = []
        seen: Set[Tuple[int, ...]] = set()
        hit_limit = False
        position_of = {node: position for position, node in enumerate(bound)}
        for row in current:
            occurrence = tuple(row[position_of[node]] for node in range(n))
            if occurrence in seen:
                continue
            seen.add(occurrence)
            occurrences.append(occurrence)
            if clock.check_matches(len(occurrences)):
                hit_limit = True
                break
        return occurrences, hit_limit, peak

    def _join_prefix(
        self,
        plan: Sequence[PatternEdge],
        relations: Dict[Tuple[int, int], EdgeRelation],
        clock,
    ) -> Tuple[List[Tuple[int, ...]], List[int], int]:
        """Materialise the joins of ``plan``; returns (tuples, bound, peak)."""
        first = plan[0]
        bound: List[int] = list(first.endpoints())
        current: List[Tuple[int, ...]] = [
            (tail, head) for tail, head in relations[first.endpoints()]
        ]
        peak = len(current)
        clock.check_intermediate(peak)

        for edge in plan[1:]:
            clock.check_time()
            next_bound, extend = self._probe_extensions(
                edge, relations[edge.endpoints()], bound
            )
            next_tuples: List[Tuple[int, ...]] = []
            for row in current:
                clock.check_time()
                for joined in extend(row):
                    next_tuples.append(joined)
                    clock.check_intermediate(len(next_tuples))
            current = next_tuples
            bound = next_bound
            peak = max(peak, len(current))
            if not current:
                break
        return current, bound, peak

    # ------------------------------------------------------------------ #
    # streaming execution
    # ------------------------------------------------------------------ #

    def iter_matches(
        self,
        query: PatternQuery,
        budget: Optional[Budget] = None,
        info: Optional[Dict[str, object]] = None,
    ) -> Iterator[Tuple[int, ...]]:
        """Lazily enumerate occurrences: the final hash join emits as it probes.

        JM stays a blocking algorithm through its join *prefix* (every join
        but the last materialises its intermediate table — that is the cost
        profile the paper measures), but the last join of the plan streams:
        each probe of the final hash table projects, deduplicates and yields
        completed occurrences immediately, so a consumer sees the first
        occurrence before the final join (typically the largest) finishes.
        Budget exceptions (:class:`~repro.exceptions.TimeoutExceeded`,
        :class:`~repro.exceptions.MemoryBudgetExceeded`) propagate to the
        caller; :meth:`match_stream` converts them into terminal statuses.

        ``info`` is the mutable mapping contract of
        :class:`~repro.matching.stream.MatchStream`: ``matching_seconds``
        and ``extra`` are recorded once the matching phase completes.
        """
        budget = budget or self.budget
        clock = budget.start_clock()
        start = time.perf_counter()
        if self.apply_transitive_reduction:
            query = transitive_reduction(query)
        candidates = (
            node_prefilter(self.context, query)
            if self.prefilter
            else self.context.match_sets(query)
        )
        if query.num_edges == 0:
            if info is not None:
                info["matching_seconds"] = time.perf_counter() - start
            count = 0
            for value in sorted(candidates[0]):
                clock.check_time()
                yield (value,)
                count += 1
                if clock.check_matches(count):
                    return
            return
        relations: Dict[Tuple[int, int], EdgeRelation] = {}
        for edge in query.edges():
            clock.check_time()
            relations[edge.endpoints()] = self._edge_relation(edge, candidates)
        relation_sizes = {key: len(relation) for key, relation in relations.items()}
        plan, plans_considered = self._plan(query, relation_sizes)

        # Materialise every join but the last; the final join streams.
        prefix, final_edge = plan[:-1], plan[-1]
        if prefix:
            current, bound, peak = self._join_prefix(prefix, relations, clock)
        else:
            current, bound, peak = [()], [], 0
        next_bound, extend = self._probe_extensions(
            final_edge, relations[final_edge.endpoints()], bound
        )
        if info is not None:
            info["matching_seconds"] = time.perf_counter() - start
            info["extra"] = {
                "plans_considered": plans_considered,
                "peak_intermediate": peak,
            }

        n = query.num_nodes
        position_of = {node: position for position, node in enumerate(next_bound)}
        seen: Set[Tuple[int, ...]] = set()
        count = 0
        for row in current:
            # Checked per row *and* per probe hit: rows whose probe yields
            # nothing must still observe the deadline / cancel event.
            clock.check_time()
            for joined in extend(row):
                clock.check_time()
                occurrence = tuple(joined[position_of[node]] for node in range(n))
                if occurrence in seen:
                    continue
                seen.add(occurrence)
                yield occurrence
                count += 1
                if clock.check_matches(count):
                    return

    def match_stream(
        self,
        query: PatternQuery,
        budget: Optional[Budget] = None,
        keep_occurrences: bool = True,
    ) -> MatchStream:
        """An incremental evaluation of ``query`` as a :class:`MatchStream`.

        Unlike the TM / ISO baselines (which replay a finished report), JM
        streams genuinely: occurrences flow out of :meth:`iter_matches` as
        the final hash join probes.  ``stream.report()`` finalises into a
        report equivalent to the eager :meth:`match` (same occurrence set
        and order, same status for solved runs).
        """
        budget = budget or self.budget
        info: Dict[str, object] = {}
        return MatchStream(
            self.iter_matches(query, budget=budget, info=info),
            query_name=query.name,
            algorithm="JM",
            budget=budget,
            info=info,
            keep_occurrences=keep_occurrences,
        )
