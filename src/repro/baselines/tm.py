"""TM: the tree-based baseline.

TM evaluates a pattern query by (1) extracting a spanning tree of the query,
(2) evaluating the tree pattern, and (3) filtering every tree solution
against the query edges missing from the tree.  The tree evaluation follows
the standard two-phase holistic style: a bottom-up + top-down candidate
refinement over the tree (which is exact for trees) followed by a top-down
enumeration of tree occurrences.

The characteristic weakness the paper measures is that the number of tree
solutions can vastly exceed the number of query solutions; every tree
solution has to be checked against the non-tree edges, so TM's running time
is driven by an intermediate result it cannot avoid.  Tree solutions are
counted against the budget's intermediate cap and the wall-clock limit.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.exceptions import MemoryBudgetExceeded, TimeoutExceeded
from repro.graph.digraph import DataGraph
from repro.matching.result import Budget, MatchReport, MatchStatus
from repro.matching.stream import MatchStream
from repro.query.pattern import PatternEdge, PatternQuery
from repro.query.transitive import transitive_reduction
from repro.simulation.context import MatchContext
from repro.simulation.matchsets import node_prefilter


class TMMatcher:
    """Tree-based pattern matcher (the TM baseline)."""

    def __init__(
        self,
        graph: DataGraph,
        context: Optional[MatchContext] = None,
        reachability_kind: str = "bfl",
        budget: Optional[Budget] = None,
        prefilter: bool = True,
        apply_transitive_reduction: bool = True,
    ) -> None:
        self.graph = graph
        self.context = context or MatchContext(graph, reachability_kind=reachability_kind)
        self.budget = budget or Budget()
        self.prefilter = prefilter
        self.apply_transitive_reduction = apply_transitive_reduction

    # ------------------------------------------------------------------ #
    # spanning tree extraction
    # ------------------------------------------------------------------ #

    @staticmethod
    def spanning_tree(query: PatternQuery) -> Tuple[List[PatternEdge], List[PatternEdge]]:
        """Split the query edges into a spanning tree and the remaining edges.

        The tree is grown over the undirected structure starting from node 0
        (queries are connected); edge directions and types are preserved.
        """
        in_tree = {0}
        tree_edges: List[PatternEdge] = []
        remaining = list(query.edges())
        changed = True
        while changed and len(in_tree) < query.num_nodes:
            changed = False
            for edge in list(remaining):
                source_in = edge.source in in_tree
                target_in = edge.target in in_tree
                if source_in ^ target_in:
                    tree_edges.append(edge)
                    remaining.remove(edge)
                    in_tree.update(edge.endpoints())
                    changed = True
        non_tree = [edge for edge in query.edges() if edge not in tree_edges]
        return tree_edges, non_tree

    # ------------------------------------------------------------------ #
    # tree evaluation
    # ------------------------------------------------------------------ #

    def _refine_tree_candidates(
        self,
        query: PatternQuery,
        tree_edges: List[PatternEdge],
        candidates: Dict[int, Set[int]],
        clock,
    ) -> Dict[int, Set[int]]:
        """Bottom-up + top-down refinement over the tree edges (exact on trees)."""
        context = self.context
        changed = True
        while changed:
            changed = False
            clock.check_time()
            for edge in tree_edges:
                tails = candidates[edge.source]
                heads = candidates[edge.target]
                allowed_tails = context.backward_sources(edge, heads) if heads else set()
                new_tails = tails & allowed_tails
                if len(new_tails) != len(tails):
                    candidates[edge.source] = new_tails
                    changed = True
                allowed_heads = context.forward_targets(edge, tails) if tails else set()
                new_heads = heads & allowed_heads
                if len(new_heads) != len(heads):
                    candidates[edge.target] = new_heads
                    changed = True
        return candidates

    def _tree_adjacency(
        self,
        tree_edges: List[PatternEdge],
        candidates: Dict[int, Set[int]],
        clock,
    ) -> Dict[Tuple[int, int], Dict[int, List[int]]]:
        """Materialise, per tree edge, the matches restricted to candidates."""
        context = self.context
        graph = self.graph
        adjacency: Dict[Tuple[int, int], Dict[int, List[int]]] = {}
        for edge in tree_edges:
            clock.check_time()
            per_tail: Dict[int, List[int]] = {}
            tails = candidates[edge.source]
            heads = candidates[edge.target]
            if edge.is_child:
                for tail in tails:
                    matched = graph.successor_set(tail) & heads
                    if matched:
                        per_tail[tail] = sorted(matched)
            else:
                reachability = context.reachability
                use_bfs = len(heads) > 32
                for tail in tails:
                    if use_bfs:
                        reachable = context.forward_reachable_set((tail,))
                        matched = [head for head in heads if head in reachable]
                    else:
                        matched = [
                            head
                            for head in heads
                            if (head != tail and reachability.reaches(tail, head))
                            or (head == tail and reachability.reaches_strict(tail, head))
                        ]
                    if matched:
                        per_tail[tail] = sorted(matched)
            adjacency[edge.endpoints()] = per_tail
        return adjacency

    def _enumerate_tree(
        self,
        query: PatternQuery,
        tree_edges: List[PatternEdge],
        candidates: Dict[int, Set[int]],
        adjacency: Dict[Tuple[int, int], Dict[int, List[int]]],
        clock,
    ) -> Iterator[Tuple[int, ...]]:
        """Enumerate tree occurrences by backtracking along the tree structure."""
        # Order nodes so each (after the first) is adjacent in the tree to an
        # earlier node; record the connecting tree edge.
        order: List[int] = [0]
        placed = {0}
        connecting: Dict[int, PatternEdge] = {}
        while len(order) < query.num_nodes:
            for edge in tree_edges:
                if edge.source in placed and edge.target not in placed:
                    connecting[edge.target] = edge
                    order.append(edge.target)
                    placed.add(edge.target)
                elif edge.target in placed and edge.source not in placed:
                    connecting[edge.source] = edge
                    order.append(edge.source)
                    placed.add(edge.source)

        n = query.num_nodes
        assignment: List[Optional[int]] = [None] * n

        def options(position: int) -> List[int]:
            node = order[position]
            if position == 0:
                return sorted(candidates[node])
            edge = connecting[node]
            if edge.target == node:
                tail_value = assignment[edge.source]
                return adjacency[edge.endpoints()].get(tail_value, [])
            # node is the edge's source: need tails whose adjacency contains
            # the already-assigned head.
            head_value = assignment[edge.target]
            per_tail = adjacency[edge.endpoints()]
            return [tail for tail in candidates[node] if head_value in per_tail.get(tail, ())]

        def recurse(position: int) -> Iterator[Tuple[int, ...]]:
            clock.check_time()
            if position == n:
                yield tuple(assignment)  # indexed by query node id
                return
            node = order[position]
            for value in options(position):
                assignment[node] = value
                yield from recurse(position + 1)
                assignment[node] = None

        yield from recurse(0)

    # ------------------------------------------------------------------ #
    # full evaluation
    # ------------------------------------------------------------------ #

    def match(self, query: PatternQuery, budget: Optional[Budget] = None) -> MatchReport:
        """Evaluate ``query``: tree evaluation plus non-tree edge filtering."""
        budget = budget or self.budget
        clock = budget.start_clock()
        start = time.perf_counter()
        original_query = query
        try:
            if self.apply_transitive_reduction:
                query = transitive_reduction(query)
            candidates = (
                node_prefilter(self.context, query)
                if self.prefilter
                else self.context.match_sets(query)
            )
            tree_edges, non_tree_edges = self.spanning_tree(query)
            if tree_edges or query.num_edges == 0:
                candidates = self._refine_tree_candidates(query, tree_edges, candidates, clock)
            adjacency = self._tree_adjacency(tree_edges, candidates, clock)
            matching_seconds = time.perf_counter() - start

            enumeration_start = time.perf_counter()
            occurrences: List[Tuple[int, ...]] = []
            tree_solutions = 0
            hit_limit = False
            context = self.context
            if all(candidates[node] for node in query.nodes()):
                for tree_occurrence in self._enumerate_tree(
                    query, tree_edges, candidates, adjacency, clock
                ):
                    tree_solutions += 1
                    clock.check_intermediate(tree_solutions)
                    satisfied = all(
                        context.edge_match(
                            edge, tree_occurrence[edge.source], tree_occurrence[edge.target]
                        )
                        for edge in non_tree_edges
                    )
                    if satisfied:
                        occurrences.append(tree_occurrence)
                        if clock.check_matches(len(occurrences)):
                            hit_limit = True
                            break
            enumeration_seconds = time.perf_counter() - enumeration_start
            status = MatchStatus.MATCH_LIMIT if hit_limit else MatchStatus.OK
            return MatchReport(
                query_name=original_query.name,
                algorithm="TM",
                status=status,
                occurrences=occurrences,
                num_matches=len(occurrences),
                matching_seconds=matching_seconds,
                enumeration_seconds=enumeration_seconds,
                extra={"tree_solutions": tree_solutions, "non_tree_edges": len(non_tree_edges)},
            )
        except TimeoutExceeded:
            return MatchReport(
                query_name=original_query.name,
                algorithm="TM",
                status=MatchStatus.TIMEOUT,
                matching_seconds=time.perf_counter() - start,
            )
        except MemoryBudgetExceeded:
            return MatchReport(
                query_name=original_query.name,
                algorithm="TM",
                status=MatchStatus.OUT_OF_MEMORY,
                matching_seconds=time.perf_counter() - start,
            )

    # ------------------------------------------------------------------ #
    # streaming execution
    # ------------------------------------------------------------------ #

    def iter_matches(
        self,
        query: PatternQuery,
        budget: Optional[Budget] = None,
        info: Optional[Dict[str, object]] = None,
    ) -> Iterator[Tuple[int, ...]]:
        """Lazily enumerate occurrences: yield per surviving tree solution.

        The tree phase (refinement + per-edge adjacency) stays blocking —
        that is TM's cost profile — but enumeration streams: each tree
        occurrence is checked against the non-tree edges as it is produced
        and yielded immediately if it survives, so a consumer sees the first
        occurrence before the (possibly huge) tree-solution space is
        exhausted.  Budget exceptions propagate; :meth:`match_stream`
        converts them into terminal statuses.

        ``info`` follows the mutable-mapping contract of
        :class:`~repro.matching.stream.MatchStream`; ``extra`` is updated
        in place so the finalised report carries the final
        ``tree_solutions`` count.
        """
        budget = budget or self.budget
        clock = budget.start_clock()
        start = time.perf_counter()
        if self.apply_transitive_reduction:
            query = transitive_reduction(query)
        candidates = (
            node_prefilter(self.context, query)
            if self.prefilter
            else self.context.match_sets(query)
        )
        tree_edges, non_tree_edges = self.spanning_tree(query)
        if tree_edges or query.num_edges == 0:
            candidates = self._refine_tree_candidates(query, tree_edges, candidates, clock)
        adjacency = self._tree_adjacency(tree_edges, candidates, clock)
        extra: Dict[str, object] = {
            "tree_solutions": 0,
            "non_tree_edges": len(non_tree_edges),
        }
        if info is not None:
            info["matching_seconds"] = time.perf_counter() - start
            info["extra"] = extra

        if not all(candidates[node] for node in query.nodes()):
            return
        context = self.context
        tree_solutions = 0
        count = 0
        for tree_occurrence in self._enumerate_tree(
            query, tree_edges, candidates, adjacency, clock
        ):
            tree_solutions += 1
            extra["tree_solutions"] = tree_solutions
            clock.check_intermediate(tree_solutions)
            satisfied = all(
                context.edge_match(
                    edge, tree_occurrence[edge.source], tree_occurrence[edge.target]
                )
                for edge in non_tree_edges
            )
            if satisfied:
                yield tree_occurrence
                count += 1
                if clock.check_matches(count):
                    return

    def match_stream(
        self,
        query: PatternQuery,
        budget: Optional[Budget] = None,
        keep_occurrences: bool = True,
    ) -> MatchStream:
        """An incremental evaluation of ``query`` as a :class:`MatchStream`.

        Streams genuinely (no replay of a finished report): occurrences flow
        out of :meth:`iter_matches` as tree solutions survive the non-tree
        edge filter.  ``stream.report()`` finalises into a report equivalent
        to the eager :meth:`match`.
        """
        budget = budget or self.budget
        info: Dict[str, object] = {}
        return MatchStream(
            self.iter_matches(query, budget=budget, info=info),
            query_name=query.name,
            algorithm="TM",
            budget=budget,
            info=info,
            keep_occurrences=keep_occurrences,
        )
