"""ISO: subgraph-isomorphism backtracking baseline.

A representative of the highly optimised isomorphism algorithms the paper
compares against on child-only queries (§7.2): label + degree filtering of
candidates, a candidate-size-driven matching order, adjacency consistency
checks against all previously matched neighbours, and the injectivity
(one-to-one) constraint.  Descendant edges are also supported (through the
reachability index) so the same implementation can run on hybrid queries,
although the paper's ISO subject only handles child edges.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.exceptions import TimeoutExceeded
from repro.graph.digraph import DataGraph
from repro.matching.result import Budget, MatchReport, MatchStatus
from repro.matching.stream import MatchStream
from repro.query.pattern import PatternQuery
from repro.simulation.context import MatchContext


class ISOMatcher:
    """Backtracking subgraph-isomorphism matcher."""

    def __init__(
        self,
        graph: DataGraph,
        context: Optional[MatchContext] = None,
        reachability_kind: str = "bfl",
        budget: Optional[Budget] = None,
    ) -> None:
        self.graph = graph
        self.context = context or MatchContext(graph, reachability_kind=reachability_kind)
        self.budget = budget or Budget()

    # ------------------------------------------------------------------ #
    # candidate filtering
    # ------------------------------------------------------------------ #

    def _candidates(self, query: PatternQuery) -> Dict[int, List[int]]:
        """Label + degree filtering (LDF), the standard ISO pre-filter."""
        graph = self.graph
        result: Dict[int, List[int]] = {}
        for node in query.nodes():
            out_needed = len(query.children(node))
            in_needed = len(query.parents(node))
            child_out_needed = sum(
                1 for child in query.children(node) if query.edge(node, child).is_child
            )
            child_in_needed = sum(
                1 for parent in query.parents(node) if query.edge(parent, node).is_child
            )
            filtered = [
                value
                for value in graph.inverted_list(query.label(node))
                if graph.out_degree(value) >= child_out_needed
                and graph.in_degree(value) >= child_in_needed
                and (graph.out_degree(value) > 0 or out_needed == 0)
                and (graph.in_degree(value) > 0 or in_needed == 0)
            ]
            result[node] = filtered
        return result

    @staticmethod
    def _order(query: PatternQuery, candidates: Dict[int, List[int]]) -> List[int]:
        """Candidate-size-driven connected matching order."""
        remaining = set(query.nodes())
        start = min(remaining, key=lambda node: (len(candidates[node]), -query.degree(node)))
        order = [start]
        remaining.discard(start)
        while remaining:
            frontier = [
                node for node in remaining if any(n in order for n in query.neighbors(node))
            ] or list(remaining)
            chosen = min(frontier, key=lambda node: (len(candidates[node]), -query.degree(node)))
            order.append(chosen)
            remaining.discard(chosen)
        return order

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def match(self, query: PatternQuery, budget: Optional[Budget] = None) -> MatchReport:
        """Enumerate the isomorphic (injective) occurrences of ``query``."""
        budget = budget or self.budget
        clock = budget.start_clock()
        start = time.perf_counter()
        context = self.context
        try:
            candidates = self._candidates(query)
            order = self._order(query, candidates)
            matching_seconds = time.perf_counter() - start

            enumeration_start = time.perf_counter()
            n = query.num_nodes
            assignment: List[Optional[int]] = [None] * n
            used: Set[int] = set()
            occurrences: List[Tuple[int, ...]] = []
            hit_limit = False

            def consistent(node: int, value: int) -> bool:
                for neighbor in query.neighbors(node):
                    other_value = assignment[neighbor]
                    if other_value is None:
                        continue
                    if query.has_edge(node, neighbor):
                        edge = query.edge(node, neighbor)
                        if not context.edge_match(edge, value, other_value):
                            return False
                    if query.has_edge(neighbor, node):
                        edge = query.edge(neighbor, node)
                        if not context.edge_match(edge, other_value, value):
                            return False
                return True

            def recurse(position: int) -> bool:
                clock.check_time()
                if position == n:
                    occurrences.append(tuple(assignment))
                    return clock.check_matches(len(occurrences))
                node = order[position]
                for value in candidates[node]:
                    if value in used:
                        continue
                    if not consistent(node, value):
                        continue
                    assignment[node] = value
                    used.add(value)
                    stop = recurse(position + 1)
                    used.discard(value)
                    assignment[node] = None
                    if stop:
                        return True
                return False

            hit_limit = recurse(0)
            enumeration_seconds = time.perf_counter() - enumeration_start
            status = MatchStatus.MATCH_LIMIT if hit_limit else MatchStatus.OK
            return MatchReport(
                query_name=query.name,
                algorithm="ISO",
                status=status,
                occurrences=occurrences,
                num_matches=len(occurrences),
                matching_seconds=matching_seconds,
                enumeration_seconds=enumeration_seconds,
            )
        except TimeoutExceeded:
            return MatchReport(
                query_name=query.name,
                algorithm="ISO",
                status=MatchStatus.TIMEOUT,
                matching_seconds=time.perf_counter() - start,
            )

    # ------------------------------------------------------------------ #
    # streaming execution
    # ------------------------------------------------------------------ #

    def iter_matches(
        self,
        query: PatternQuery,
        budget: Optional[Budget] = None,
        info: Optional[Dict[str, object]] = None,
    ) -> Iterator[Tuple[int, ...]]:
        """Lazily enumerate occurrences straight out of the backtracking.

        The recursive search yields each completed injective assignment the
        moment the last query node is placed, so consumers see the first
        occurrence at time-to-first-solution rather than after the whole
        search space is exhausted.  Occurrence order matches the eager
        :meth:`match`.  Budget exceptions propagate; :meth:`match_stream`
        converts them into terminal statuses.

        ``info`` follows the mutable-mapping contract of
        :class:`~repro.matching.stream.MatchStream`.
        """
        budget = budget or self.budget
        clock = budget.start_clock()
        start = time.perf_counter()
        context = self.context
        candidates = self._candidates(query)
        order = self._order(query, candidates)
        if info is not None:
            info["matching_seconds"] = time.perf_counter() - start

        n = query.num_nodes
        assignment: List[Optional[int]] = [None] * n
        used: Set[int] = set()

        def consistent(node: int, value: int) -> bool:
            for neighbor in query.neighbors(node):
                other_value = assignment[neighbor]
                if other_value is None:
                    continue
                if query.has_edge(node, neighbor):
                    edge = query.edge(node, neighbor)
                    if not context.edge_match(edge, value, other_value):
                        return False
                if query.has_edge(neighbor, node):
                    edge = query.edge(neighbor, node)
                    if not context.edge_match(edge, other_value, value):
                        return False
            return True

        def recurse(position: int) -> Iterator[Tuple[int, ...]]:
            clock.check_time()
            if position == n:
                yield tuple(assignment)
                return
            node = order[position]
            for value in candidates[node]:
                if value in used:
                    continue
                if not consistent(node, value):
                    continue
                assignment[node] = value
                used.add(value)
                yield from recurse(position + 1)
                used.discard(value)
                assignment[node] = None

        count = 0
        for occurrence in recurse(0):
            yield occurrence
            count += 1
            if clock.check_matches(count):
                return

    def match_stream(
        self,
        query: PatternQuery,
        budget: Optional[Budget] = None,
        keep_occurrences: bool = True,
    ) -> MatchStream:
        """An incremental evaluation of ``query`` as a :class:`MatchStream`.

        Streams genuinely (no replay of a finished report): abandoning the
        stream closes the generator and stops the backtracking search
        mid-flight.  ``stream.report()`` finalises into a report equivalent
        to the eager :meth:`match`.
        """
        budget = budget or self.budget
        info: Dict[str, object] = {}
        return MatchStream(
            self.iter_matches(query, budget=budget, info=info),
            query_name=query.name,
            algorithm="ISO",
            budget=budget,
            info=info,
            keep_occurrences=keep_occurrences,
        )
