"""Replica side: tail the primary's delta stream, serve reads locally.

:class:`ReplicaTail` owns one socket to the primary, speaks the
``subscribe_log`` protocol, and folds every shipped
:class:`~repro.dynamic.GraphDelta` through the ordinary store publish
path — so a replica's version chain is, frame for frame, the primary's
version chain, and every incremental-maintenance artifact (warm
sessions, reachability indexes, engine caches) works unchanged on the
replica.  The tail's lifecycle::

    connect -> subscribe (bootstrap | tail) -> fold frames -> [lost] -> reconnect

* **bootstrap**: the primary ships a snapshot (its latest checkpoint, or
  a live pinned head) plus the journal tail above it; the tail installs
  the snapshot as a fresh store at the snapshot's exact version and
  folds forward from there.
* **tail**: the replica already holds version ``H`` (a durable replica
  recovers ``H`` from its own write-ahead log) and the primary's journal
  still covers ``H`` — only the frames above ``H`` are shipped.

Frames are folded idempotently (``new_version <= head`` is skipped, so
overlapping catch-up and live frames are harmless), gaps trigger a
resubscribe from the current head, and a fold that does not reproduce
the announced version — impossible while the chain is deterministic —
rebootstraps from a fresh snapshot.  The tail survives primary death:
the socket loop retries with bounded exponential backoff + jitter until
:meth:`close`, while the replica keeps serving reads at its last folded
version.

:class:`ReplicaServer` composes N tails with a
:class:`~repro.server.GraphCatalog` and a
:class:`~repro.server.GraphServer`: every replicated tenant is served
read-only over the ordinary wire protocol (match / stream / count /
histogram / explain), writes answer with
:class:`~repro.exceptions.ReadOnlyReplicaError`, and ``replica_status``
reports replication lag in versions and seconds.
"""

from __future__ import annotations

import os
import random
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.api import GraphDB
from repro.dynamic.delta import GraphDelta
from repro.exceptions import (
    ProtocolError,
    ReplicaDivergedError,
    ReplicationError,
)
from repro.graph.digraph import DataGraph
from repro.obs import context as trace_context
from repro.server.protocol import decode_error, encode_frame, read_frame_sync
from repro.service.service import QueryService, ServiceConfig
from repro.store.versioned import VersionedGraphStore
from repro.wal.durability import (
    WalDurability,
    is_tenant_directory,
    remove_tenant_directory,
)


class _Gap(Exception):
    """A shipped frame's base is ahead of the local head: resubscribe."""


class ReplicaTail:
    """One tenant's replication tail: subscribe, fold, reconnect, report.

    Parameters
    ----------
    host / port:
        The primary :class:`~repro.server.GraphServer`'s address.
    graph:
        The tenant to replicate.
    data_dir:
        Optional durable storage for the replica itself.  The folded
        deltas are journalled through the replica's own write-ahead log,
        so a killed replica recovers its head locally and resubscribes
        in *tail* mode — catching up from its exact pre-crash version
        instead of re-shipping a full snapshot.
    config:
        :class:`~repro.service.ServiceConfig` for the replica's serving
        layer.
    """

    def __init__(
        self,
        host: str,
        port: int,
        graph: str,
        data_dir: Optional[str] = None,
        config: Optional[ServiceConfig] = None,
        checkpoint_every: Optional[int] = None,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        subscribe_timeout: float = 60.0,
        node: Optional[str] = None,
        **open_kwargs,
    ) -> None:
        self.host = host
        self.port = port
        self.graph = graph
        #: This node's name on cross-node trace spans (``replica_apply``).
        self.node = node or f"replica:{graph}"
        self._data_dir = os.fspath(data_dir) if data_dir is not None else None
        self._config = config
        self._checkpoint_every = checkpoint_every
        self._open_kwargs = dict(open_kwargs)
        self._backoff_base = float(backoff_base)
        self._backoff_max = float(backoff_max)
        self._subscribe_timeout = float(subscribe_timeout)

        self.database: Optional[GraphDB] = None
        self._sock: Optional[socket.socket] = None
        self._sub_ident: Optional[int] = None
        self._ids = iter(range(1, 1 << 62))
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._force_bootstrap = False
        self._metrics_bound = False

        # Status, read by replica_status / the lag gauges.
        self.mode: Optional[str] = None
        self.connected = False
        self.primary_head = -1
        self.frames_applied = 0
        self.frames_skipped = 0
        self.resubscribes = 0
        self.bootstraps = 0
        self.last_error: Optional[str] = None
        self._last_published_at: Optional[float] = None
        self._m_applied = None
        self._m_skipped = None
        self._m_resubscribes = None
        self._m_bootstraps = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> GraphDB:
        """Recover/bootstrap the local database, subscribe, start tailing.

        Blocks until the initial subscription succeeded (so the returned
        database exists and is at most one catch-up behind the primary),
        then tails on a daemon thread.  Raises if the primary is
        unreachable *and* no local state exists to serve from.
        """
        if self._thread is not None:
            raise ReplicationError("replica tail already started")
        if self._data_dir is not None and is_tenant_directory(self._data_dir):
            graph, durability, _report = WalDurability.recover(
                self._data_dir,
                name=self.graph,
                checkpoint_every=self._checkpoint_every,
            )
            self.database = GraphDB.open(
                graph, config=self._config, durability=durability, **self._open_kwargs
            )
            self._bind_database()
        try:
            self._connect_and_subscribe()
        except Exception:
            if self.database is None:
                raise  # nothing recovered locally, nothing to serve
            # Recovered state serves (stale) reads; the loop keeps retrying.
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"replica-tail-{self.graph}", daemon=True
        )
        self._thread.start()
        return self.database

    def close(self) -> None:
        """Stop tailing and drop the socket (idempotent; does not close the db)."""
        self._stop.set()
        self._drop_socket()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=10.0)

    # ------------------------------------------------------------------ #
    # status
    # ------------------------------------------------------------------ #

    def head_version(self) -> int:
        return int(self.database.head_version) if self.database is not None else -1

    def lag_versions(self) -> int:
        if self.database is None or self.primary_head < 0:
            return 0
        return max(0, self.primary_head - int(self.database.head_version))

    def lag_seconds(self) -> float:
        if self.lag_versions() == 0:
            return 0.0
        if self._last_published_at is None:
            return 0.0
        return max(0.0, time.time() - self._last_published_at)

    def status(self) -> Dict[str, object]:
        """The structured status ``replica_status`` answers with."""
        return {
            "connected": self.connected,
            "mode": self.mode,
            "primary": [self.host, self.port],
            "head_version": self.head_version(),
            "primary_head": self.primary_head,
            "lag_versions": self.lag_versions(),
            "lag_seconds": self.lag_seconds(),
            "frames_applied": self.frames_applied,
            "frames_skipped": self.frames_skipped,
            "resubscribes": self.resubscribes,
            "bootstraps": self.bootstraps,
            "last_error": self.last_error,
        }

    # ------------------------------------------------------------------ #
    # wiring the local database
    # ------------------------------------------------------------------ #

    def _bind_database(self) -> None:
        database = self.database
        database.read_only = True
        database.replication_status = self.status
        database.replication_tail = self
        database._close_hooks.append(self.close)
        telemetry = getattr(database, "telemetry", None)
        if telemetry is None or self._metrics_bound:
            return
        self._metrics_bound = True
        registry = telemetry.registry
        registry.gauge(
            "replication_lag_versions",
            "Versions the primary's head is ahead of this replica",
            fn=lambda: float(self.lag_versions()),
        )
        registry.gauge(
            "replication_lag_seconds",
            "Age of the newest folded delta while the replica is behind",
            fn=lambda: float(self.lag_seconds()),
        )
        registry.gauge(
            "replication_connected",
            "1 while the tail is subscribed to the primary",
            fn=lambda: 1.0 if self.connected else 0.0,
        )
        self._m_applied = registry.counter(
            "replication_frames_applied_total",
            "Shipped delta frames folded into the replica's store",
        )
        self._m_skipped = registry.counter(
            "replication_frames_skipped_total",
            "Shipped delta frames skipped as already applied",
        )
        self._m_resubscribes = registry.counter(
            "replication_resubscribes_total",
            "Times the tail resubscribed after a drop, gap or lag",
        )
        self._m_bootstraps = registry.counter(
            "replication_bootstraps_total",
            "Full snapshot bootstraps installed",
        )

    def _install_bootstrap(self, snapshot: Dict[str, object]) -> None:
        """Install a shipped snapshot as the local store at its exact version."""
        graph = DataGraph(
            [str(label) for label in snapshot.get("labels", [])],
            [tuple(edge) for edge in snapshot.get("edges", [])],
            name=str(snapshot.get("name") or self.graph),
            version=int(snapshot.get("version", 0)),
        )
        durability = None
        if self._data_dir is not None:
            if is_tenant_directory(self._data_dir):
                remove_tenant_directory(self._data_dir)
            durability = WalDurability.create(
                self._data_dir, graph, checkpoint_every=self._checkpoint_every
            )
        if self.database is None:
            self.database = GraphDB.open(
                graph, config=self._config, durability=durability, **self._open_kwargs
            )
            self._bind_database()
        else:
            # Same facade object, new store: a snapshot too far ahead of
            # the local chain cannot be reached by folding, so the store
            # is swapped in place — catalog entries and caller references
            # stay valid, in-flight reads finish on the old epoch.
            database = self.database
            store = VersionedGraphStore(
                graph, durability=durability, **self._open_kwargs
            )
            store.bind_telemetry(database.telemetry)
            service = QueryService(
                store, config=self._config, telemetry=database.telemetry
            )
            old_store, old_service = database.store, database.service
            database.store = store
            database.service = service
            for stale in (old_service, old_store):
                try:
                    stale.close()
                except Exception:
                    pass
        self.bootstraps += 1
        if self._m_bootstraps is not None:
            self._m_bootstraps.inc()

    # ------------------------------------------------------------------ #
    # the subscribe protocol
    # ------------------------------------------------------------------ #

    def _drop_socket(self) -> None:
        sock, self._sock = self._sock, None
        self.connected = False
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def _disconnect(self, error: Optional[BaseException]) -> None:
        if error is not None:
            self.last_error = str(error)
        self._drop_socket()

    def _connect_and_subscribe(self) -> None:
        from_version = None
        if self.database is not None and not self._force_bootstrap:
            from_version = int(self.database.head_version)
        sock = socket.create_connection((self.host, self.port), timeout=10.0)
        try:
            sock.settimeout(1.0)
            ident = next(self._ids)
            request = {"id": ident, "op": "subscribe_log", "graph": self.graph}
            if from_version is not None:
                request["from_version"] = from_version
            sock.sendall(encode_frame(request))
            result = self._await_response(sock, ident)
        except BaseException:
            try:
                sock.close()
            except OSError:
                pass
            raise
        self.mode = str(result.get("mode"))
        if self.mode == "bootstrap":
            snapshot = result.get("snapshot")
            if not isinstance(snapshot, dict):
                raise ProtocolError("bootstrap reply carries no snapshot")
            self._install_bootstrap(snapshot)
            self._force_bootstrap = False
        self.primary_head = max(self.primary_head, int(result.get("head_version", -1)))
        self._sub_ident = int(result.get("subscription", ident))
        self._sock = sock
        self.connected = True

    def _await_response(self, sock: socket.socket, ident: int) -> Dict[str, object]:
        """Read until the subscribe response; early log frames are dropped.

        Dropping is safe: any frame shipped before we learned the
        subscription id belongs to the catch-up the primary computed
        *after* registering us, and the frames it carries re-arrive
        nowhere — but every one of them has ``new_version`` at or below
        the reply's ``head_version``, which the fold loop re-requests on
        the inevitable gap.  In practice the reply always precedes the
        first shipped frame (the shipper starts after the handler built
        the reply); this is belt-and-braces.
        """
        deadline = time.monotonic() + self._subscribe_timeout
        while True:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"no subscribe_log response within {self._subscribe_timeout}s"
                )
            try:
                frame = read_frame_sync(sock)
            except socket.timeout:
                continue
            if frame is None:
                raise ConnectionError("primary closed during subscribe")
            if frame.get("id") == ident:
                if frame.get("ok"):
                    return frame.get("result") or {}
                raise decode_error(frame.get("error"))

    # ------------------------------------------------------------------ #
    # the fold loop
    # ------------------------------------------------------------------ #

    def _apply_frame(self, frame: Dict[str, object]) -> None:
        new_version = int(frame["new_version"])
        base_version = int(frame["base_version"])
        head = int(self.database.head_version)
        if new_version <= head:
            self.frames_skipped += 1
            if self._m_skipped is not None:
                self._m_skipped.inc()
            return
        if base_version > head:
            raise _Gap(
                f"frame base v{base_version} is ahead of local head v{head}"
            )
        delta = GraphDelta.from_dict(frame["delta"])
        context = trace_context.TraceContext.from_wire(frame.get("trace"))
        if context is not None:
            # A traced fold: activate the shipped context (parented on the
            # primary's fold span) so this replica's apply — and the
            # nested fold/journal spans its own store opens — lands in the
            # replica's span ring under the same trace id.
            telemetry = getattr(self.database, "telemetry", None)
            recorder = telemetry.spans if telemetry is not None else None
            with trace_context.activate(context, recorder=recorder, node=self.node):
                with trace_context.trace_span(
                    "replica_apply", version=new_version
                ):
                    report = self.database.store.apply(delta)
        else:
            report = self.database.store.apply(delta)
        if int(report.new_version) != new_version:
            raise ReplicaDivergedError(new_version, int(report.new_version))
        self.frames_applied += 1
        if self._m_applied is not None:
            self._m_applied.inc()
        published_at = frame.get("published_at")
        if published_at is not None:
            self._last_published_at = float(published_at)

    def _handle_batch(self, frame: Dict[str, object]) -> None:
        head = frame.get("head")
        if head is not None:
            self.primary_head = max(self.primary_head, int(head))
        for shipped in frame.get("frames") or ():
            self._apply_frame(shipped)

    def _note_resubscribe(self) -> None:
        self.resubscribes += 1
        if self._m_resubscribes is not None:
            self._m_resubscribes.inc()

    def _run(self) -> None:
        delay = self._backoff_base
        while not self._stop.is_set():
            if self._sock is None:
                try:
                    self._connect_and_subscribe()
                    self._note_resubscribe()
                    delay = self._backoff_base
                except Exception as exc:
                    self.last_error = str(exc)
                    self._stop.wait(delay + random.uniform(0.0, delay))
                    delay = min(delay * 2.0, self._backoff_max)
                    continue
            try:
                frame = read_frame_sync(self._sock)
            except socket.timeout:
                continue
            except (ProtocolError, ConnectionError, OSError) as exc:
                self._disconnect(exc)
                continue
            if self._stop.is_set():
                break
            if frame is None:
                self._disconnect(ConnectionError("primary closed the log stream"))
                continue
            if frame.get("sub") != self._sub_ident:
                continue  # a stale shipper from a previous subscription
            if frame.get("end"):
                # The subscription lagged out server-side: reconnect and
                # catch up from wherever the folds actually got to.
                self._disconnect(decode_error(frame.get("error")))
                continue
            try:
                self._handle_batch(frame)
            except _Gap as exc:
                self._disconnect(exc)
            except ReplicaDivergedError as exc:
                self._force_bootstrap = True
                self._disconnect(exc)
        self._drop_socket()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplicaTail({self.graph!r} <- {self.host}:{self.port}, "
            f"head=v{self.head_version()}, lag={self.lag_versions()})"
        )


class ReplicaServer:
    """A read-only serving node: N tenant tails behind a wire server.

    Spins up one :class:`ReplicaTail` per replicated tenant, attaches the
    tails' databases to an owned catalog, and serves them over the
    ordinary wire protocol.  Reads behave exactly as on the primary;
    writes answer with :class:`~repro.exceptions.ReadOnlyReplicaError`.

    Parameters
    ----------
    primary_host / primary_port:
        The primary :class:`~repro.server.GraphServer`'s address.
    graphs:
        Tenant names to replicate; ``None`` replicates every tenant the
        primary currently lists.
    data_dir:
        Optional durable root for the replica — each tenant journals its
        folds under ``data_dir/<name>``, so a killed replica restarts in
        tail mode from its exact pre-crash head.
    """

    def __init__(
        self,
        primary_host: str,
        primary_port: int,
        graphs: Optional[List[str]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        data_dir: Optional[str] = None,
        config: Optional[ServiceConfig] = None,
        checkpoint_every: Optional[int] = None,
        node: Optional[str] = None,
        **server_kwargs,
    ) -> None:
        self.primary_host = primary_host
        self.primary_port = int(primary_port)
        #: This node's name on health replies, trace spans and federated
        #: metrics labels; defaults to ``replica-<pid>``.
        self.node = node or f"replica-{os.getpid()}"
        self._graphs = list(graphs) if graphs is not None else None
        self._host = host
        self._port = int(port)
        self._data_dir = os.fspath(data_dir) if data_dir is not None else None
        self._config = config
        self._checkpoint_every = checkpoint_every
        self._server_kwargs = dict(server_kwargs)
        self.tails: Dict[str, ReplicaTail] = {}
        self.catalog = None
        self.server = None
        self.address: Optional[Tuple[str, int]] = None

    def start(self) -> Tuple[str, int]:
        """Bootstrap every tenant, bind the socket; returns ``(host, port)``."""
        from repro.client.client import GraphClient
        from repro.server.catalog import GraphCatalog
        from repro.server.server import GraphServer

        names = self._graphs
        if names is None:
            with GraphClient(self.primary_host, self.primary_port) as client:
                names = [str(info["name"]) for info in client.graphs()]
        if not names:
            raise ReplicationError("primary lists no graphs to replicate")
        self.catalog = GraphCatalog()
        try:
            for name in names:
                tenant_dir = None
                if self._data_dir is not None:
                    from urllib.parse import quote

                    tenant_dir = os.path.join(self._data_dir, quote(name, safe=""))
                tail = ReplicaTail(
                    self.primary_host,
                    self.primary_port,
                    name,
                    data_dir=tenant_dir,
                    config=self._config,
                    checkpoint_every=self._checkpoint_every,
                    node=self.node,
                )
                database = tail.start()
                self.tails[name] = tail
                self.catalog.attach(name, database, owned=True)
            self.server = GraphServer(
                catalog=self.catalog,
                host=self._host,
                port=self._port,
                node=self.node,
                role="replica",
                **self._server_kwargs,
            )
            self.address = self.server.start()
        except BaseException:
            self.close()
            raise
        return self.address

    def status(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant tail status (see :meth:`ReplicaTail.status`)."""
        return {name: tail.status() for name, tail in self.tails.items()}

    def close(self) -> None:
        """Stop serving, stop every tail, close the replicated databases."""
        if self.server is not None:
            self.server.close()
            self.server = None
        if self.catalog is not None:
            self.catalog.close()  # owned databases close -> close hooks stop tails
            self.catalog = None
        for tail in self.tails.values():
            tail.close()  # idempotent; covers tails without a catalog entry

    def __enter__(self) -> "ReplicaServer":
        if self.address is None:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bound = f"{self.address[0]}:{self.address[1]}" if self.address else "unbound"
        return (
            f"ReplicaServer({bound} <- {self.primary_host}:{self.primary_port}, "
            f"tenants={sorted(self.tails)})"
        )
