"""Primary-side log shipping: fan out published deltas to subscribers.

One :class:`ReplicationHub` per primary :class:`~repro.api.GraphDB`
(attached lazily by :func:`get_hub`).  The hub hangs a publish listener
off the versioned store, so every fold that the primary acknowledges is
immediately offered — in version order, because listeners run under the
writer lock — to every live :class:`LogSubscription`.

Subscribing is race-free against concurrent writers and checkpoints:

1. the subscription is registered first, so every publish from here on
   is buffered in its queue;
2. the head version at registration is captured;
3. the on-disk delta log is scanned (rotation-safe: a checkpoint swaps a
   fresh inode into place, it never shrinks the file under the scan);
4. the latest checkpoint (or, for a non-durable tenant, a live pinned
   snapshot) is read.

Any delta published before step 1 is either in the scanned log or
covered by the (later-read, therefore at-least-as-new) snapshot; any
delta published after step 1 sits in the queue.  The union can only
*overlap*, never gap, and the replica dedups overlaps by skipping frames
whose ``new_version`` is at or below its head.

A subscriber that cannot keep up does not stall the write path: its
bounded queue overflows, the subscription is marked lagged, and the
consumer gets a :class:`~repro.exceptions.ReplicationError` once the
buffered frames drain — its cue to resubscribe from its current version.
"""

from __future__ import annotations

import json
import os
import queue
import threading
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ReplicationError
from repro.obs import context as trace_context
from repro.wal.durability import KIND_DELTA
from repro.wal.log import scan_log

#: Live frames a slow subscriber may buffer before it is declared lagged.
DEFAULT_SUBSCRIPTION_BUFFER = 1024


class LogSubscription:
    """One subscriber's bounded live-frame queue.

    The hub's publish listener calls :meth:`offer`; the shipping side
    calls :meth:`next`.  Overflow marks the subscription *lagged*: frames
    already buffered still drain (they are contiguous), after which
    :meth:`next` raises :class:`~repro.exceptions.ReplicationError` so
    the subscriber resubscribes from wherever it actually got to.
    """

    def __init__(self, hub: "ReplicationHub", buffer_frames: int) -> None:
        self._hub = hub
        self._queue: "queue.Queue[Dict[str, object]]" = queue.Queue(
            maxsize=max(1, int(buffer_frames))
        )
        self._lagged = False
        self._closed = threading.Event()

    def offer(self, frame: Dict[str, object]) -> None:
        """Buffer one live frame (called by the hub, under the writer lock)."""
        if self._lagged or self._closed.is_set():
            return
        try:
            self._queue.put_nowait(frame)
        except queue.Full:
            self._lagged = True
            self._hub._note_overflow()

    def next(self, timeout: float = 0.25) -> Optional[Dict[str, object]]:
        """Next buffered frame, or ``None`` after ``timeout`` seconds idle.

        Raises :class:`~repro.exceptions.ReplicationError` once a lagged
        subscription has drained its buffer — everything after that point
        was dropped, so tailing further would silently gap the chain.
        """
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            if self._lagged:
                raise ReplicationError(
                    "log subscription lagged: live-frame buffer overflowed; "
                    "resubscribe from the replica's current version"
                )
            return None

    @property
    def lagged(self) -> bool:
        return self._lagged

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def close(self) -> None:
        """Detach from the hub (idempotent)."""
        self._closed.set()
        self._hub.unsubscribe(self)


class ReplicationHub:
    """Per-primary fan-out point for journalled deltas.

    Do not construct directly — use :func:`get_hub`, which attaches one
    hub per :class:`~repro.api.GraphDB` and wires its close hook.
    """

    def __init__(self, database) -> None:
        self.database = database
        self._lock = threading.Lock()
        self._subscriptions: List[LogSubscription] = []
        self._closed = False
        self.frames_fanout = 0
        self.overflows = 0
        self.snapshots_shipped = 0
        telemetry = getattr(database, "telemetry", None)
        registry = telemetry.registry if telemetry is not None else None
        self._m_fanout = None
        self._m_overflows = None
        self._m_snapshots = None
        if registry is not None:
            registry.gauge(
                "replication_subscribers",
                "Live log-shipping subscriptions on this primary",
                fn=lambda: float(self.subscriber_count()),
            )
            self._m_fanout = registry.counter(
                "replication_frames_fanout_total",
                "Delta frames offered to log-shipping subscribers",
            )
            self._m_overflows = registry.counter(
                "replication_subscriber_overflows_total",
                "Log subscriptions dropped because their buffer overflowed",
            )
            self._m_snapshots = registry.counter(
                "replication_snapshots_shipped_total",
                "Snapshot bootstraps served to subscribers",
            )
        database.store.add_publish_listener(self._on_publish)

    # ------------------------------------------------------------------ #
    # publish side
    # ------------------------------------------------------------------ #

    def _on_publish(self, delta, old_version, new_version, published_at) -> None:
        with self._lock:
            subscribers = list(self._subscriptions)
        if not subscribers:
            return
        # Same schema the durability layer journals, plus the publish
        # instant so replicas can measure lag in seconds, not versions.
        frame = {
            "kind": KIND_DELTA,
            "base_version": int(old_version),
            "new_version": int(new_version),
            "num_ops": len(delta),
            "delta": delta.to_dict(),
            "published_at": float(published_at),
        }
        # Listeners run on the fold thread: a traced write's context (the
        # primary's live ``fold`` span) is active here, so the shipped
        # frame carries it and each replica's apply span hangs under the
        # fold that produced the version it folds.
        active = trace_context.current()
        if active is not None and active.context.sampled:
            frame["trace"] = active.context.to_wire()
        with trace_context.trace_span("ship", subscribers=len(subscribers)):
            for subscription in subscribers:
                subscription.offer(frame)
        self.frames_fanout += len(subscribers)
        if self._m_fanout is not None:
            self._m_fanout.inc(len(subscribers))

    def _note_overflow(self) -> None:
        self.overflows += 1
        if self._m_overflows is not None:
            self._m_overflows.inc()

    # ------------------------------------------------------------------ #
    # subscribe side
    # ------------------------------------------------------------------ #

    def subscribe(
        self,
        from_version: Optional[int] = None,
        buffer_frames: int = DEFAULT_SUBSCRIPTION_BUFFER,
    ) -> Tuple[LogSubscription, Dict[str, object]]:
        """Open a subscription and compute its catch-up plan.

        Returns ``(subscription, catchup)`` where ``catchup`` is::

            {"mode": "tail" | "bootstrap",
             "snapshot": graph-doc-or-None,   # bootstrap only
             "entries": [delta frames ...],   # replay after the snapshot
             "head_version": int}             # primary head at registration

        ``from_version`` asks for tail mode: ship only the journalled
        frames above that version.  Tail mode is granted only when those
        frames form an unbroken chain reaching the registration head
        (i.e. no checkpoint truncated the needed prefix away); otherwise
        the reply falls back to a full snapshot bootstrap.
        """
        with self._lock:
            if self._closed:
                raise ReplicationError("replication hub is closed")
            subscription = LogSubscription(self, buffer_frames)
            self._subscriptions.append(subscription)
        try:
            catchup = self._catchup_plan(from_version)
        except BaseException:
            subscription.close()
            raise
        return subscription, catchup

    def unsubscribe(self, subscription: LogSubscription) -> None:
        with self._lock:
            try:
                self._subscriptions.remove(subscription)
            except ValueError:
                pass

    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscriptions)

    def _catchup_plan(self, from_version: Optional[int]) -> Dict[str, object]:
        head_at_registration = int(self.database.head_version)
        durability = self.database.durability
        entries: List[Dict[str, object]] = []
        if durability is not None:
            raw, _valid, _torn = scan_log(durability.log.path)
            entries = [
                entry
                for entry in raw
                if isinstance(entry, dict) and entry.get("kind") == KIND_DELTA
            ]
            entries.sort(key=lambda entry: int(entry["new_version"]))

        if from_version is not None:
            reach = int(from_version)
            applicable = []
            contiguous = True
            for entry in entries:
                new = int(entry["new_version"])
                if new <= reach:
                    continue
                if int(entry["base_version"]) > reach:
                    contiguous = False  # a checkpoint ate the needed prefix
                    break
                applicable.append(entry)
                reach = new
            if contiguous and reach >= head_at_registration:
                return {
                    "mode": "tail",
                    "snapshot": None,
                    "entries": applicable,
                    "head_version": head_at_registration,
                }

        snapshot = self._snapshot_doc(durability)
        base = int(snapshot["version"])
        applicable = [
            entry for entry in entries if int(entry["new_version"]) > base
        ]
        self.snapshots_shipped += 1
        if self._m_snapshots is not None:
            self._m_snapshots.inc()
        return {
            "mode": "bootstrap",
            "snapshot": snapshot,
            "entries": applicable,
            "head_version": head_at_registration,
        }

    def _snapshot_doc(self, durability) -> Dict[str, object]:
        if durability is not None and os.path.exists(durability.checkpoint_path):
            with open(durability.checkpoint_path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            return {
                "name": document.get("name"),
                "version": int(document.get("version", 0)),
                "labels": list(document.get("labels", [])),
                "edges": [list(edge) for edge in document.get("edges", [])],
            }
        # Non-durable tenant: serialise the live head.  Read *after* the
        # subscription registered, so its version is >= every frame the
        # log scan could have missed.
        with self.database.store.pin() as pinned:
            graph = pinned.graph
            return {
                "name": graph.name,
                "version": int(graph.version),
                "labels": list(graph.labels),
                "edges": [[source, target] for source, target in graph.edges()],
            }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Detach from the store and drop every subscription (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            subscriptions = list(self._subscriptions)
            self._subscriptions.clear()
        self.database.store.remove_publish_listener(self._on_publish)
        for subscription in subscriptions:
            subscription._closed.set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplicationHub(subscribers={self.subscriber_count()}, "
            f"fanout={self.frames_fanout}, overflows={self.overflows})"
        )


_HUB_LOCK = threading.Lock()


def get_hub(database) -> ReplicationHub:
    """The database's replication hub, created and attached on first use.

    The hub registers itself as ``database.replication_hub`` and hooks
    ``database.close()`` so shutdown detaches the publish listener.
    """
    with _HUB_LOCK:
        hub = getattr(database, "replication_hub", None)
        if hub is None or hub._closed:
            hub = ReplicationHub(database)
            database.replication_hub = hub
            hooks = getattr(database, "_close_hooks", None)
            if hooks is not None:
                hooks.append(hub.close)
        return hub
