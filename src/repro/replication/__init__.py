"""Replication: one writer, N read replicas tailing the delta WAL.

The subsystem is a composition of primitives earlier layers already
provide — the write-ahead log's journalled delta frames (whose on-disk
format *is* the wire format), the MVCC store's deterministic version
chain, and the incremental-maintenance fold path — wired into three
pieces:

* :class:`ReplicationHub` (:mod:`repro.replication.hub`) — primary-side
  fan-out: every published delta is offered to every live log
  subscription, and ``subscribe`` computes a race-free catch-up plan
  (snapshot bootstrap or tail-from-version);
* :class:`ReplicaTail` / :class:`ReplicaServer`
  (:mod:`repro.replication.replica`) — replica-side: tail the stream,
  fold each delta through the ordinary store publish path, serve the
  full read surface at the replicated version, report lag;
* :class:`~repro.client.RoutedClient` (:mod:`repro.client.routed`) —
  client-side read/write splitting across the topology.

Wire surface: ``subscribe_log`` / ``replica_status`` requests and
``{"sub": s, "frames": [...], "head": h}`` shipping frames, all over the
existing :mod:`repro.framing` codec.
"""

from repro.replication.hub import (
    DEFAULT_SUBSCRIPTION_BUFFER,
    LogSubscription,
    ReplicationHub,
    get_hub,
)
from repro.replication.replica import ReplicaServer, ReplicaTail

__all__ = [
    "DEFAULT_SUBSCRIPTION_BUFFER",
    "LogSubscription",
    "ReplicaServer",
    "ReplicaTail",
    "ReplicationHub",
    "get_hub",
]
