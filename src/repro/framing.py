"""Length-prefixed JSON frame codec shared by the wire protocol and the WAL.

One *frame* is::

    +----------------+----------------------------------+
    | 4 bytes (>I)   | UTF-8 JSON object (length bytes) |
    +----------------+----------------------------------+

:mod:`repro.server.protocol` speaks this format on sockets; the
write-ahead log (:mod:`repro.wal`) appends exactly the same frames to a
file, so one codec serves both and a journal can be inspected with the
same tooling as a network capture.  This module deliberately depends on
nothing but :mod:`repro.exceptions` — it sits *below* both consumers.
"""

from __future__ import annotations

import json
import struct
from typing import Dict

from repro.exceptions import ProtocolError

#: Hard cap on one frame's body; anything larger is a framing error (a
#: desynchronised stream reads garbage lengths long before this bound).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Bytes of the length prefix.
HEADER_BYTES = _HEADER.size


def encode_frame(payload: Dict[str, object]) -> bytes:
    """One frame: 4-byte big-endian length + compact JSON body."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the {MAX_FRAME_BYTES} cap"
        )
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, object]:
    """Decode one frame body; the payload must be a JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def check_length(length: int) -> int:
    """Validate a decoded length prefix against the frame cap."""
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES} cap "
            "(desynchronised or malicious stream)"
        )
    return length


def decode_length(header: bytes) -> int:
    """Decode and validate a frame's 4-byte length prefix."""
    (length,) = _HEADER.unpack(header)
    return check_length(length)
