"""Metrics federation: one scraper over every node's tenant registries.

A cluster is a primary plus N replicas, each serving per-tenant
:class:`~repro.obs.MetricsRegistry` documents over the ``metrics`` wire
op and a role/lag summary over ``health``.  :class:`ClusterMonitor`
scrapes them all — once on demand (:meth:`scrape_once`) or on an
interval (:meth:`start`) — and merges the per-tenant families into one
cluster document where every sample carries ``node`` / ``role`` /
``tenant`` labels, so ``replication_lag_versions{node="replica-0",
tenant="social"}`` means what it says regardless of which process
exported it.

On top of the merged families the monitor derives fleet-level gauges:

* ``cluster_replication_lag_max_versions`` — the worst replica lag
  anywhere (the number a routing SLO cares about);
* ``cluster_read_requests_total`` / ``cluster_write_requests_total`` —
  the fleet's read/write split, classified from the per-op request
  counters;
* ``cluster_error_rate`` — fleet-wide errored fraction of requests;
* ``cluster_nodes_reachable`` / ``cluster_nodes_total``.

Both surfaces are exposed as JSON (:meth:`snapshot`) and Prometheus
text exposition (:meth:`to_prometheus`).  The monitor is thread-safe:
scrapes build a fresh document and swap it in under a lock, so readers
never observe a half-merged snapshot.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs import health as health_states
from repro.obs.metrics import (
    _escape_help,
    _format_value,
    _render_labels,
)

#: A scrape target: ``(host, port)`` or ``(host, port, label)``.
NodeSpec = Union[Tuple[str, int], Tuple[str, int, str]]

#: Ops counted as writes when deriving the fleet's read/write split.
WRITE_OPS = frozenset(
    {
        "ingest",
        "apply",
        "apply_async",
        "apply_wait",
        "create_graph",
        "drop_graph",
        "checkpoint",
        "save",
    }
)


class _Target:
    """One scrape target's endpoint, label and cached client."""

    def __init__(self, host: str, port: int, label: Optional[str] = None) -> None:
        self.host = str(host)
        self.port = int(port)
        self.label = label or f"{self.host}:{self.port}"
        self.client = None

    def connect(self, timeout: Optional[float]):
        """The cached wire client, connecting lazily; raises on failure."""
        if self.client is None:
            # Lazy import: repro.client imports obs submodules; importing
            # it at module scope would cycle through the obs package.
            from repro.client.client import GraphClient

            self.client = GraphClient(
                self.host, self.port, timeout=timeout, reconnect=False
            )
        return self.client

    def drop(self) -> None:
        if self.client is not None:
            try:
                self.client.close()
            except Exception:
                pass
            self.client = None


class ClusterMonitor:
    """Scrape, merge and derive: the cluster's one observability surface.

    Parameters
    ----------
    nodes:
        Scrape targets, ``(host, port)`` or ``(host, port, label)``.
        Labels default to ``host:port``; the *server-reported* node name
        (``health``'s ``node`` field) is used for the ``node`` metric
        label when available, so federated samples match the names spans
        carry.
    interval:
        Background scrape period for :meth:`start` (seconds).
    probe_timeout:
        Socket wait bound per request while scraping — an unresponsive
        node costs one timeout, not a hung scrape.
    """

    def __init__(
        self,
        nodes: Sequence[NodeSpec],
        interval: float = 2.0,
        probe_timeout: float = 5.0,
    ) -> None:
        self._targets = [
            _Target(*node) if len(node) >= 3 else _Target(node[0], node[1])
            for node in nodes
        ]
        self.interval = float(interval)
        self.probe_timeout = float(probe_timeout)
        self._lock = threading.Lock()
        self._document: Optional[Dict[str, object]] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.scrapes = 0
        self.scrape_errors = 0

    # ------------------------------------------------------------------ #
    # scraping
    # ------------------------------------------------------------------ #

    def _scrape_node(self, target: _Target) -> Dict[str, object]:
        """One node's health + per-tenant metric documents (or unreachable)."""
        try:
            client = target.connect(self.probe_timeout)
            health = client.health(timeout=self.probe_timeout)
        except Exception as exc:
            target.drop()
            self.scrape_errors += 1
            return {
                "label": target.label,
                "reachable": False,
                "status": health_states.UNREACHABLE,
                "error": str(exc),
            }
        node_name = str(health.get("node") or target.label)
        entry: Dict[str, object] = {
            "label": target.label,
            "node": node_name,
            "reachable": True,
            "role": str(health.get("role") or "unknown"),
            "status": str(health.get("status") or "unknown"),
            "uptime_seconds": health.get("uptime_seconds"),
            "health": health,
            "tenants": {},
        }
        for tenant in sorted((health.get("tenants") or {})):
            try:
                entry["tenants"][tenant] = client.server_metrics(graph=tenant)
            except Exception:
                # Telemetry disabled for this tenant (or it was dropped
                # mid-scrape): its families are simply absent this round.
                continue
        return entry

    def scrape_once(self) -> Dict[str, object]:
        """Scrape every node now; merge, derive, publish and return."""
        nodes = [self._scrape_node(target) for target in self._targets]
        document = self._merge(nodes)
        with self._lock:
            self._document = document
            self.scrapes += 1
        return document

    def _merge(self, nodes: List[Dict[str, object]]) -> Dict[str, object]:
        families: Dict[str, Dict[str, object]] = {}
        max_lag = 0.0
        reads = writes = errors = requests = 0.0
        for node in nodes:
            if not node.get("reachable"):
                continue
            node_name = str(node["node"])
            role = str(node["role"])
            for tenant, snapshot in (node.get("tenants") or {}).items():
                if not isinstance(snapshot, Mapping):
                    continue
                for name, family in sorted(snapshot.items()):
                    merged = families.setdefault(
                        name,
                        {
                            "type": family.get("type", "untyped"),
                            "help": family.get("help", ""),
                            "values": [],
                        },
                    )
                    for value in family.get("values", ()):
                        labels = dict(value.get("labels") or {})
                        labels.update(node=node_name, role=role, tenant=tenant)
                        stamped = dict(value)
                        stamped["labels"] = labels
                        merged["values"].append(stamped)
                        if name == "replication_lag_versions":
                            max_lag = max(max_lag, float(value.get("value") or 0.0))
                        elif name == "server_requests_total":
                            count = float(value.get("value") or 0.0)
                            requests += count
                            if labels.get("op") in WRITE_OPS:
                                writes += count
                            else:
                                reads += count
                        elif name == "server_errors_total":
                            errors += float(value.get("value") or 0.0)
        reachable = sum(1 for node in nodes if node.get("reachable"))
        derived = {
            "cluster_replication_lag_max_versions": {
                "type": "gauge",
                "help": "Worst replica lag (versions) across the fleet",
                "values": [{"labels": {}, "value": max_lag}],
            },
            "cluster_read_requests_total": {
                "type": "counter",
                "help": "Fleet-wide wire requests classified as reads",
                "values": [{"labels": {}, "value": reads}],
            },
            "cluster_write_requests_total": {
                "type": "counter",
                "help": "Fleet-wide wire requests classified as writes",
                "values": [{"labels": {}, "value": writes}],
            },
            "cluster_error_rate": {
                "type": "gauge",
                "help": "Fleet-wide errored fraction of wire requests",
                "values": [
                    {"labels": {}, "value": errors / requests if requests else 0.0}
                ],
            },
            "cluster_nodes_reachable": {
                "type": "gauge",
                "help": "Scrape targets that answered this round",
                "values": [{"labels": {}, "value": float(reachable)}],
            },
            "cluster_nodes_total": {
                "type": "gauge",
                "help": "Scrape targets configured",
                "values": [{"labels": {}, "value": float(len(nodes))}],
            },
        }
        return {
            "scraped_at": time.time(),
            "status": health_states.worst(
                str(node.get("status", health_states.UNREACHABLE)) for node in nodes
            ),
            "nodes": {str(node["label"]): node for node in nodes},
            "metrics": families,
            "derived": derived,
        }

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        """The latest merged cluster document (scraping first if none yet)."""
        with self._lock:
            document = self._document
        if document is None:
            document = self.scrape_once()
        return document

    def to_prometheus(self) -> str:
        """The merged families + derived gauges in text exposition format."""
        document = self.snapshot()
        lines: List[str] = []
        merged: Dict[str, Dict[str, object]] = {}
        merged.update(document.get("metrics") or {})
        merged.update(document.get("derived") or {})
        for name in sorted(merged):
            family = merged[name]
            help_text = str(family.get("help") or "")
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {family.get('type', 'untyped')}")
            for value in family.get("values", ()):
                labels = dict(value.get("labels") or {})
                if "buckets" in value:
                    for bound, count in value["buckets"].items():
                        bucket_labels = dict(labels, le=str(bound))
                        lines.append(
                            f"{name}_bucket{_render_labels(bucket_labels)} {count}"
                        )
                    lines.append(
                        f"{name}_sum{_render_labels(labels)} "
                        f"{_format_value(float(value.get('sum') or 0.0))}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(labels)} "
                        f"{int(value.get('count') or 0)}"
                    )
                else:
                    lines.append(
                        f"{name}{_render_labels(labels)} "
                        f"{_format_value(float(value.get('value') or 0.0))}"
                    )
        return "\n".join(lines) + "\n"

    def health(self) -> Dict[str, object]:
        """Per-node health from the latest scrape: ``label -> status``."""
        document = self.snapshot()
        return {
            label: {
                "status": node.get("status"),
                "role": node.get("role"),
                "reachable": bool(node.get("reachable")),
            }
            for label, node in (document.get("nodes") or {}).items()
        }

    def events(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Live-tail every reachable node's event ring, merged by timestamp."""
        collected: List[Dict[str, object]] = []
        for target in self._targets:
            try:
                client = target.connect(self.probe_timeout)
                payload = client.events(limit=limit)
            except Exception:
                target.drop()
                continue
            for event in payload.get("events", ()):
                stamped = dict(event)
                stamped["node"] = target.label
                collected.append(stamped)
        collected.sort(key=lambda event: float(event.get("ts") or 0.0))
        if limit is not None:
            collected = collected[-max(0, int(limit)):]
        return collected

    def slow_queries(
        self, limit: Optional[int] = None
    ) -> List[Dict[str, object]]:
        """The fleet's slow-query tail, merged across nodes and tenants."""
        collected: List[Dict[str, object]] = []
        for target in self._targets:
            try:
                client = target.connect(self.probe_timeout)
                health = client.health(timeout=self.probe_timeout)
                for tenant in sorted((health.get("tenants") or {})):
                    for entry in client.slow_queries(graph=tenant, limit=limit):
                        stamped = dict(entry)
                        stamped.update(node=target.label, tenant=tenant)
                        collected.append(stamped)
            except Exception:
                target.drop()
                continue
        collected.sort(key=lambda entry: float(entry.get("finished_at") or 0.0))
        if limit is not None:
            collected = collected[-max(0, int(limit)):]
        return collected

    def trace_spans(self, trace_id: str) -> List[Dict[str, object]]:
        """Every span of one trace across all reachable nodes and tenants."""
        collected: List[Dict[str, object]] = []
        for target in self._targets:
            try:
                client = target.connect(self.probe_timeout)
                health = client.health(timeout=self.probe_timeout)
                for tenant in sorted((health.get("tenants") or {})):
                    collected.extend(
                        client.trace_spans(trace_id=trace_id, graph=tenant)
                    )
            except Exception:
                target.drop()
                continue
        return collected

    # ------------------------------------------------------------------ #
    # background scraping
    # ------------------------------------------------------------------ #

    def start(self) -> "ClusterMonitor":
        """Scrape on :attr:`interval` until :meth:`stop` (daemon thread)."""
        if self._thread is not None:
            return self
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                try:
                    self.scrape_once()
                except Exception:
                    self.scrape_errors += 1
                self._stop.wait(self.interval)

        self._thread = threading.Thread(
            target=loop, name="cluster-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the background scraper and drop every cached connection."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=10.0)
        for target in self._targets:
            target.drop()

    def __enter__(self) -> "ClusterMonitor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterMonitor({len(self._targets)} node(s), "
            f"scrapes={self.scrapes}, errors={self.scrape_errors})"
        )
