"""Unified observability: metrics registry, query tracing, slow-query log.

The stack's six layers (session caches, MVCC store, query service, wire
server, WAL durability, engines) each kept ad-hoc counters with no common
surface.  This package is that surface:

* :class:`MetricsRegistry` — thread-safe labelled counters / gauges /
  fixed-bucket histograms, snapshotable to JSON and to the Prometheus text
  exposition format.  The legacy stats objects (``CacheStats``,
  ``ServiceStats``, ``StoreStats``, ``WalDurability``) keep their public
  accessors and *mirror* into a shared per-tenant registry.
* :class:`Tracer` / :class:`Trace` — sampled per-query span trees
  (queue-wait → pin → plan → index-build → first-match → stream-drain →
  wire-encode) with trace ids that propagate from ``GraphClient`` through
  the wire frames to the service and engine layers and back — including
  through error payloads.
* :class:`SlowQueryLog` — a JSON-lines record (bounded ring + optional
  file) of every query over a configurable threshold, span breakdown
  included.
* :class:`Telemetry` — the bundle of all three, threaded through
  ``GraphDB`` → store → service → WAL as one context object.
* :func:`percentile` / :class:`Reservoir` — the single shared quantile
  implementation (nearest-rank) and its bounded-memory sampling companion.

The cluster observability plane (PR 10) extends the surface across nodes:

* :class:`TraceContext` / :class:`Span` / :class:`SpanRecorder` /
  :func:`assemble_trace` — cross-node trace propagation: one trace id
  follows a write from the routing client through the primary's fold,
  journal and publish into every replica's apply (see
  :mod:`repro.obs.context`).
* :mod:`repro.obs.health` — the shared ``ready`` / ``degraded`` /
  ``unhealthy`` / ``unreachable`` vocabulary behind the ``health`` wire
  op and the router's probing.
* :class:`EventLog` — each server's bounded ring of lifecycle events,
  queryable over the ``events`` wire op.
* :class:`ClusterMonitor` — federated scraping: every node's per-tenant
  registries merged into one cluster snapshot with ``node`` / ``role`` /
  ``tenant`` labels plus derived fleet gauges, as JSON or Prometheus
  text (see :mod:`repro.obs.federation`); ``python -m repro.obs.console``
  renders it as a live dashboard.
"""

from repro.obs.context import (
    Span,
    SpanRecorder,
    TraceContext,
    assemble_trace,
    new_span_id,
    trace_span,
)
from repro.obs.events import EventLog
from repro.obs.health import (
    DEGRADED,
    READY,
    UNHEALTHY,
    UNREACHABLE,
    classify_tenant,
    is_servable,
    worst,
)
from repro.obs.federation import ClusterMonitor
from repro.obs.log import TenantLoggerAdapter, configure as configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    MetricsRegistry,
)
from repro.obs.quantiles import Reservoir, percentile
from repro.obs.slowlog import SlowQueryLog
from repro.obs.telemetry import Telemetry
from repro.obs.trace import NULL_TRACE, Trace, Tracer, new_trace_id

__all__ = [
    "DEFAULT_BUCKETS",
    "DEGRADED",
    "READY",
    "UNHEALTHY",
    "UNREACHABLE",
    "ClusterMonitor",
    "CounterFamily",
    "EventLog",
    "GaugeFamily",
    "HistogramFamily",
    "MetricsRegistry",
    "NULL_TRACE",
    "Reservoir",
    "SlowQueryLog",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "TenantLoggerAdapter",
    "Trace",
    "TraceContext",
    "Tracer",
    "assemble_trace",
    "classify_tenant",
    "configure_logging",
    "get_logger",
    "is_servable",
    "new_span_id",
    "new_trace_id",
    "percentile",
    "trace_span",
    "worst",
]
