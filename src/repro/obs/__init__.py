"""Unified observability: metrics registry, query tracing, slow-query log.

The stack's six layers (session caches, MVCC store, query service, wire
server, WAL durability, engines) each kept ad-hoc counters with no common
surface.  This package is that surface:

* :class:`MetricsRegistry` — thread-safe labelled counters / gauges /
  fixed-bucket histograms, snapshotable to JSON and to the Prometheus text
  exposition format.  The legacy stats objects (``CacheStats``,
  ``ServiceStats``, ``StoreStats``, ``WalDurability``) keep their public
  accessors and *mirror* into a shared per-tenant registry.
* :class:`Tracer` / :class:`Trace` — sampled per-query span trees
  (queue-wait → pin → plan → index-build → first-match → stream-drain →
  wire-encode) with trace ids that propagate from ``GraphClient`` through
  the wire frames to the service and engine layers and back — including
  through error payloads.
* :class:`SlowQueryLog` — a JSON-lines record (bounded ring + optional
  file) of every query over a configurable threshold, span breakdown
  included.
* :class:`Telemetry` — the bundle of all three, threaded through
  ``GraphDB`` → store → service → WAL as one context object.
* :func:`percentile` / :class:`Reservoir` — the single shared quantile
  implementation (nearest-rank) and its bounded-memory sampling companion.
"""

from repro.obs.log import TenantLoggerAdapter, configure as configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    MetricsRegistry,
)
from repro.obs.quantiles import Reservoir, percentile
from repro.obs.slowlog import SlowQueryLog
from repro.obs.telemetry import Telemetry
from repro.obs.trace import NULL_TRACE, Trace, Tracer, new_trace_id

__all__ = [
    "DEFAULT_BUCKETS",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "MetricsRegistry",
    "NULL_TRACE",
    "Reservoir",
    "SlowQueryLog",
    "Telemetry",
    "TenantLoggerAdapter",
    "Trace",
    "Tracer",
    "configure_logging",
    "get_logger",
    "new_trace_id",
    "percentile",
]
