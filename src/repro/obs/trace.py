"""Query tracing: sampled span trees across client, server, service, engine.

A :class:`Trace` answers "where did this query's time go?".  The serving
stack records one child span per pipeline stage under a single root:

    queue_wait -> pin -> plan -> index_build -> first_match
               -> stream_drain -> wire_encode

The span taxonomy is documented in ``docs/architecture.md``; the service
layer synthesises the engine-side stages from the phase timings every
:class:`~repro.matching.result.MatchReport` already measures, so the engine
hot loops are never touched by tracing.

Sampling is decided once per query by the :class:`Tracer`: unsampled
queries get the shared :data:`NULL_TRACE` singleton whose every method is a
no-op, so the disabled cost is one attribute call.  A caller-supplied trace
id (the ``trace`` field of a wire request, ultimately a ``GraphClient``
argument) **forces** sampling — "trace this specific query" always works no
matter the server's sample rate.
"""

from __future__ import annotations

import random
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


def new_trace_id() -> str:
    """A fresh 16-hex-character trace id."""
    return uuid.uuid4().hex[:16]


class Trace:
    """One sampled query: a root span plus one level of stage spans.

    Thread-safe: the server's event loop, a service worker and the stream
    pump thread may all add spans to the same trace.  :meth:`finish` stamps
    the root duration and may be called again later to *extend* it (the
    stream pump finishes the trace a second time after the end frame, so
    the root covers wire encoding too); :meth:`to_dict` renders the tree at
    whatever moment it is called.
    """

    def __init__(self, name: str, trace_id: Optional[str] = None) -> None:
        self.name = name
        self.trace_id = trace_id or new_trace_id()
        self.started_at = time.time()
        self._start = time.perf_counter()
        self._end: Optional[float] = None
        self._lock = threading.Lock()
        self._spans: List[Dict[str, object]] = []
        self._meta: Dict[str, object] = {}

    def __bool__(self) -> bool:
        return True

    def add_span(self, name: str, seconds: float, **meta) -> None:
        """Record one stage span of ``seconds`` duration."""
        entry: Dict[str, object] = {"name": name, "seconds": max(0.0, float(seconds))}
        if meta:
            entry.update(meta)
        with self._lock:
            self._spans.append(entry)

    @contextmanager
    def span(self, name: str, **meta) -> Iterator["Trace"]:
        """Measure a ``with`` block as one stage span."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add_span(name, time.perf_counter() - start, **meta)

    def annotate(self, **meta) -> None:
        """Attach key/value metadata to the root span."""
        with self._lock:
            self._meta.update(meta)

    def finish(self) -> None:
        """Stamp (or extend) the root duration to now."""
        with self._lock:
            self._end = time.perf_counter()

    @property
    def seconds(self) -> float:
        """Root duration: start to finish (or to now while still live)."""
        with self._lock:
            end = self._end
        return (end if end is not None else time.perf_counter()) - self._start

    def span_seconds(self) -> float:
        """Sum of the recorded stage spans' durations."""
        with self._lock:
            return sum(entry["seconds"] for entry in self._spans)  # type: ignore[misc]

    def to_dict(self) -> Dict[str, object]:
        """The JSON-able span tree (what travels in ``report.extra['trace']``)."""
        with self._lock:
            document: Dict[str, object] = {
                "trace_id": self.trace_id,
                "name": self.name,
                "started_at": self.started_at,
                "seconds": (
                    (self._end if self._end is not None else time.perf_counter())
                    - self._start
                ),
                "spans": [dict(entry) for entry in self._spans],
            }
            if self._meta:
                document["meta"] = dict(self._meta)
        return document

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace({self.name!r}, id={self.trace_id}, {len(self._spans)} spans)"


class _NullTrace:
    """The unsampled query's trace: every operation is a no-op."""

    __slots__ = ()

    trace_id = None
    name = None
    started_at = 0.0
    seconds = 0.0

    def __bool__(self) -> bool:
        return False

    def add_span(self, name: str, seconds: float, **meta) -> None:
        pass

    @contextmanager
    def span(self, name: str, **meta) -> Iterator["_NullTrace"]:
        yield self

    def annotate(self, **meta) -> None:
        pass

    def finish(self) -> None:
        pass

    def span_seconds(self) -> float:
        return 0.0

    def to_dict(self) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTrace()"


#: The shared no-op trace handed to every unsampled query.
NULL_TRACE = _NullTrace()


class Tracer:
    """Decides, once per query, whether to produce a real :class:`Trace`.

    ``sample_rate`` is the probability an *unforced* query is traced
    (``0.0`` never, ``1.0`` always).  A caller-supplied ``trace_id`` always
    produces a real trace regardless of the rate.
    """

    def __init__(self, sample_rate: float = 0.0, seed: Optional[int] = None) -> None:
        self.sample_rate = max(0.0, min(1.0, float(sample_rate)))
        self._random = random.Random(seed)

    def trace(self, name: str, trace_id: Optional[str] = None):
        """A :class:`Trace` (sampled or forced) or :data:`NULL_TRACE`."""
        if trace_id is not None:
            return Trace(name, str(trace_id))
        rate = self.sample_rate
        if rate <= 0.0:
            return NULL_TRACE
        if rate >= 1.0 or self._random.random() < rate:
            return Trace(name)
        return NULL_TRACE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(sample_rate={self.sample_rate})"
