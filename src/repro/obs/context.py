"""Cross-node trace propagation: contexts, spans, recorders, assembly.

PR 7's :class:`~repro.obs.trace.Trace` answers "where did this query's
time go?" *inside one process*.  This module makes a trace survive the
hops PRs 5–9 added: a :class:`TraceContext` — ``(trace_id, parent
span_id, sampling bit)`` — rides every wire frame, every replication
frame and (via a thread-local) every fold, so one trace id names a tree
of :class:`Span` records scattered across the client, the primary and
every replica.  Each node keeps its part of the tree in a bounded
:class:`SpanRecorder` (one per :class:`~repro.obs.Telemetry`, queryable
over the wire with the ``spans`` op); :func:`assemble_trace` stitches
the parts back into one tree.

Wire form
---------
``TraceContext.to_wire()`` is ``{"id": ..., "span": ..., "sampled":
...}``; :meth:`TraceContext.from_wire` also accepts the **legacy plain
string** trace id PR 7 clients put in the frame's ``trace`` field, so
old clients force-sample new servers unchanged.

Propagation inside a process
----------------------------
The server activates the decoded context on the handling thread
(:func:`activate`); anything downstream — the store's fold, the WAL
journal, the replication hub's fan-out — opens child spans with
:func:`trace_span` or reads :func:`current` to stamp outgoing frames.
Both are no-ops (one thread-local read) when nothing is active, so the
untraced hot path stays untouched.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional

__all__ = [
    "Span",
    "SpanRecorder",
    "TraceContext",
    "activate",
    "assemble_trace",
    "current",
    "new_span_id",
    "trace_span",
]


def new_span_id() -> str:
    """A fresh 16-hex-character span id."""
    return uuid.uuid4().hex[:16]


class TraceContext:
    """What one hop tells the next about the trace it belongs to.

    ``trace_id`` names the whole distributed trace, ``span_id`` is the
    *parent* span the receiver should hang its work under (``None`` at
    the root), and ``sampled`` tells downstream hops whether to record
    at all — an unsampled context still correlates error payloads but
    costs no span storage.
    """

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(
        self,
        trace_id: str,
        span_id: Optional[str] = None,
        sampled: bool = True,
    ) -> None:
        self.trace_id = str(trace_id)
        self.span_id = str(span_id) if span_id is not None else None
        self.sampled = bool(sampled)

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh sampled root context (no parent span yet)."""
        from repro.obs.trace import new_trace_id

        return cls(new_trace_id(), None, True)

    def child(self, span_id: str) -> "TraceContext":
        """The context a child hop receives: same trace, new parent span."""
        return TraceContext(self.trace_id, span_id, self.sampled)

    def to_wire(self) -> Dict[str, object]:
        """The frame field: ``{"id", "span", "sampled"}``."""
        return {"id": self.trace_id, "span": self.span_id, "sampled": self.sampled}

    @classmethod
    def from_wire(cls, value) -> Optional["TraceContext"]:
        """Decode a frame's ``trace`` field.

        Accepts the structured dict, the legacy plain-string trace id
        (implicitly sampled, no parent span), or ``None``; anything else
        is ignored rather than failing the request.
        """
        if value is None:
            return None
        if isinstance(value, str):
            return cls(value, None, True) if value else None
        if isinstance(value, dict):
            trace_id = value.get("id") or value.get("trace_id")
            if not trace_id:
                return None
            return cls(
                str(trace_id),
                value.get("span"),
                bool(value.get("sampled", True)),
            )
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceContext(id={self.trace_id}, span={self.span_id}, "
            f"sampled={self.sampled})"
        )


class Span:
    """One timed unit of work on one node, linked by ids into a tree."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "node",
        "started_at",
        "_start",
        "seconds",
        "meta",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[str] = None,
        node: Optional[str] = None,
        span_id: Optional[str] = None,
        **meta,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id or new_span_id()
        self.parent_id = parent_id
        self.node = node
        self.started_at = time.time()
        self._start = time.perf_counter()
        self.seconds: Optional[float] = None
        self.meta: Dict[str, object] = dict(meta)

    def finish(self, seconds: Optional[float] = None) -> "Span":
        """Stamp the duration (idempotent: the first finish wins)."""
        if self.seconds is None:
            self.seconds = (
                max(0.0, float(seconds))
                if seconds is not None
                else time.perf_counter() - self._start
            )
        return self

    def to_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "node": self.node,
            "started_at": self.started_at,
            "seconds": (
                self.seconds
                if self.seconds is not None
                else time.perf_counter() - self._start
            ),
        }
        if self.meta:
            document["meta"] = dict(self.meta)
        return document

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, node={self.node})"
        )


class SpanRecorder:
    """A node's bounded ring of finished span documents.

    One per :class:`~repro.obs.Telemetry` bundle; the ``spans`` wire op
    reads it, cross-node assembly (:func:`assemble_trace`) merges several
    of them.  Thread-safe; overflow drops the oldest spans.
    """

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = max(1, int(capacity))
        self._lock = threading.Lock()
        self._spans: List[Dict[str, object]] = []
        self.recorded = 0

    def record(self, span) -> None:
        """Append one finished :class:`Span` (or prepared span dict)."""
        document = span.to_dict() if isinstance(span, Span) else dict(span)
        with self._lock:
            self._spans.append(document)
            self.recorded += 1
            if len(self._spans) > self.capacity:
                del self._spans[: len(self._spans) - self.capacity]

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """The newest spans, oldest first."""
        with self._lock:
            spans = list(self._spans)
        if limit is not None:
            spans = spans[-max(0, int(limit)):]
        return spans

    def for_trace(self, trace_id: str) -> List[Dict[str, object]]:
        """Every retained span of one trace, oldest first."""
        with self._lock:
            return [
                dict(span) for span in self._spans if span.get("trace_id") == trace_id
            ]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpanRecorder({len(self)}/{self.capacity} spans)"


class _ActiveTrace:
    """The thread's live trace scope: context + where its spans land."""

    __slots__ = ("context", "recorder", "node")

    def __init__(
        self,
        context: TraceContext,
        recorder: Optional[SpanRecorder],
        node: Optional[str],
    ) -> None:
        self.context = context
        self.recorder = recorder
        self.node = node


_STATE = threading.local()


def current() -> Optional[_ActiveTrace]:
    """The thread's active trace scope, or ``None`` (the common case)."""
    return getattr(_STATE, "active", None)


@contextmanager
def activate(
    context: Optional[TraceContext],
    recorder: Optional[SpanRecorder] = None,
    node: Optional[str] = None,
) -> Iterator[Optional[_ActiveTrace]]:
    """Make ``context`` the thread's active trace for the ``with`` block.

    Everything called inside — including the store's fold, the WAL
    journal and the replication hub's publish listener, which all run on
    the activating thread — can open :func:`trace_span` children and
    stamp outgoing frames from :func:`current`.  ``context=None`` is a
    no-op so call sites need no branching.
    """
    if context is None:
        yield None
        return
    previous = getattr(_STATE, "active", None)
    active = _ActiveTrace(context, recorder, node)
    _STATE.active = active
    try:
        yield active
    finally:
        _STATE.active = previous


@contextmanager
def trace_span(name: str, **meta) -> Iterator[Optional[Span]]:
    """Measure the ``with`` block as one child span of the active context.

    Yields the live :class:`Span` (add metadata via ``span.meta``) or
    ``None`` when no sampled context is active — the disabled cost is a
    single thread-local read.  While the block runs, the active context's
    parent span is swapped to this span, so nested ``trace_span`` calls
    build a proper tree and frames stamped inside carry this span as
    their parent.
    """
    active = current()
    if active is None or not active.context.sampled:
        yield None
        return
    previous = active.context
    span = Span(
        name, previous.trace_id, parent_id=previous.span_id, node=active.node, **meta
    )
    active.context = previous.child(span.span_id)
    try:
        yield span
    finally:
        active.context = previous
        span.finish()
        if active.recorder is not None:
            active.recorder.record(span)


def assemble_trace(
    spans: Iterable[Dict[str, object]], trace_id: Optional[str] = None
) -> Dict[str, object]:
    """Stitch span documents from any number of nodes into one tree.

    Returns ``{"trace_id", "root", "spans", "orphans"}`` where ``root``
    is the parentless span's tree node (``{"span": ..., "children":
    [...], "child_seconds": ...}``) and ``orphans`` are spans whose
    parent is not in the collected set (e.g. a node that was not
    scraped).  Duplicate span ids (the same span fetched from two
    scrapes) are deduplicated, first occurrence wins.
    """
    selected: Dict[str, Dict[str, object]] = {}
    for span in spans:
        if trace_id is not None and span.get("trace_id") != trace_id:
            continue
        ident = span.get("span_id")
        if isinstance(ident, str) and ident not in selected:
            selected[ident] = dict(span)
    if trace_id is None:
        ids = {span.get("trace_id") for span in selected.values()}
        trace_id = next(iter(ids)) if len(ids) == 1 else None

    nodes = {
        ident: {"span": span, "children": [], "child_seconds": 0.0}
        for ident, span in selected.items()
    }
    roots: List[Dict[str, object]] = []
    orphans: List[Dict[str, object]] = []
    for ident, node in sorted(
        nodes.items(), key=lambda item: item[1]["span"].get("started_at", 0.0)
    ):
        parent_id = node["span"].get("parent_id")
        if parent_id is None:
            roots.append(node)
        elif parent_id in nodes:
            parent = nodes[parent_id]
            parent["children"].append(node)
            parent["child_seconds"] += float(node["span"].get("seconds") or 0.0)
        else:
            orphans.append(node)
    return {
        "trace_id": trace_id,
        "root": roots[0] if roots else None,
        "roots": roots,
        "spans": [node["span"] for node in nodes.values()],
        "orphans": orphans,
    }
