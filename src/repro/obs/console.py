"""``python -m repro.obs.console`` — a top-style live cluster dashboard.

One screen, refreshed in place, over a :class:`~repro.obs.federation.
ClusterMonitor`: per-node role / health / QPS / p99 / replication lag /
queue depth, the fleet's slow-query tail, and the most recent lifecycle
events from each node's event ring.

::

    python -m repro.obs.console \\
        --node 127.0.0.1:7687 --node 127.0.0.1:7688 --node 127.0.0.1:7689 \\
        --interval 2.0

``--once`` renders a single frame and exits (scriptable / testable);
otherwise the console loops until interrupted.  Rendering is a pure
function of two consecutive cluster snapshots (:func:`render_dashboard`),
so tests drive it without sockets or timers.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.federation import ClusterMonitor, WRITE_OPS


def _family_values(document: Mapping, name: str) -> List[Mapping]:
    family = (document.get("metrics") or {}).get(name) or {}
    return list(family.get("values", ()))


def _node_requests(document: Mapping) -> Dict[str, float]:
    """Total wire requests per node label (for QPS deltas)."""
    totals: Dict[str, float] = {}
    for value in _family_values(document, "server_requests_total"):
        node = str((value.get("labels") or {}).get("node", "?"))
        totals[node] = totals.get(node, 0.0) + float(value.get("value") or 0.0)
    return totals


def _node_p99(document: Mapping) -> Dict[str, float]:
    """Approximate p99 query seconds per node from histogram buckets."""
    merged: Dict[str, Tuple[int, List[Tuple[float, int]]]] = {}
    for value in _family_values(document, "service_query_seconds"):
        node = str((value.get("labels") or {}).get("node", "?"))
        count = int(value.get("count") or 0)
        buckets: Dict[float, int] = {}
        for bound, cumulative in (value.get("buckets") or {}).items():
            bbound = float("inf") if bound in ("+Inf", "inf") else float(bound)
            buckets[bbound] = buckets.get(bbound, 0) + int(cumulative)
        prior_count, prior = merged.get(node, (0, []))
        combined: Dict[float, int] = dict(prior)
        for bound, cumulative in buckets.items():
            combined[bound] = combined.get(bound, 0) + cumulative
        merged[node] = (prior_count + count, sorted(combined.items()))
    out: Dict[str, float] = {}
    for node, (count, buckets) in merged.items():
        if count <= 0:
            continue
        target = 0.99 * count
        for bound, cumulative in buckets:
            if cumulative >= target:
                out[node] = bound
                break
    return out


def _node_gauge_max(document: Mapping, family: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for value in _family_values(document, family):
        node = str((value.get("labels") or {}).get("node", "?"))
        out[node] = max(out.get(node, 0.0), float(value.get("value") or 0.0))
    return out


def _format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == float("inf"):
        return ">max"
    if value < 0.001:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def render_dashboard(
    document: Mapping,
    events: List[Mapping] = (),
    slow: List[Mapping] = (),
    previous: Optional[Mapping] = None,
    dt: Optional[float] = None,
    width: int = 100,
) -> str:
    """One dashboard frame as text (pure: snapshots in, string out).

    ``previous``/``dt`` (the prior scrape and the seconds between them)
    turn the monotone request counters into QPS; without them the QPS
    column shows ``-``.
    """
    lines: List[str] = []
    derived = document.get("derived") or {}

    def derived_value(name: str) -> float:
        values = (derived.get(name) or {}).get("values") or [{}]
        return float(values[0].get("value") or 0.0)

    status = str(document.get("status", "?"))
    lines.append(
        f"cluster status: {status}   "
        f"nodes {derived_value('cluster_nodes_reachable'):.0f}"
        f"/{derived_value('cluster_nodes_total'):.0f} reachable   "
        f"max lag {derived_value('cluster_replication_lag_max_versions'):.0f}v   "
        f"error rate {derived_value('cluster_error_rate') * 100:.2f}%   "
        f"r/w {derived_value('cluster_read_requests_total'):.0f}"
        f"/{derived_value('cluster_write_requests_total'):.0f}"
    )
    lines.append("-" * width)

    requests = _node_requests(document)
    qps: Dict[str, float] = {}
    if previous is not None and dt:
        prior = _node_requests(previous)
        for node, total in requests.items():
            qps[node] = max(0.0, total - prior.get(node, 0.0)) / dt
    p99 = _node_p99(document)
    lag = _node_gauge_max(document, "replication_lag_versions")
    queue = _node_gauge_max(document, "service_queue_depth")

    header = (
        f"{'node':<28} {'role':<8} {'status':<12} {'qps':>8} "
        f"{'p99':>8} {'lag':>6} {'queue':>6}"
    )
    lines.append(header)
    for label, node in sorted((document.get("nodes") or {}).items()):
        if not node.get("reachable"):
            lines.append(
                f"{label:<28} {'-':<8} {str(node.get('status', '?')):<12} "
                f"{'-':>8} {'-':>8} {'-':>6} {'-':>6}"
            )
            continue
        name = str(node.get("node", label))
        qps_text = f"{qps[name]:.1f}" if name in qps else "-"
        lines.append(
            f"{label:<28} {str(node.get('role', '?')):<8} "
            f"{str(node.get('status', '?')):<12} {qps_text:>8} "
            f"{_format_seconds(p99.get(name)):>8} "
            f"{lag.get(name, 0.0):>6.0f} {queue.get(name, 0.0):>6.0f}"
        )

    if slow:
        lines.append("")
        lines.append("slow queries (newest last):")
        for entry in slow[-5:]:
            lines.append(
                f"  {str(entry.get('node', '?')):<20} "
                f"{str(entry.get('tenant', entry.get('graph', '?'))):<12} "
                f"{_format_seconds(entry.get('seconds')):>8}  "
                f"{str(entry.get('query', entry.get('name', '?')))[:40]}"
            )
    if events:
        lines.append("")
        lines.append("recent events (newest last):")
        for event in events[-8:]:
            lines.append(
                f"  {str(event.get('node', '?')):<20} "
                f"{str(event.get('kind', '?')):<18} "
                f"{str(event.get('message', ''))[:56]}"
            )
    return "\n".join(lines)


def _parse_endpoint(text: str) -> Tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected host:port, got {text!r}"
        )
    return host, int(port)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.console",
        description="Live cluster dashboard over the graph-serving fleet.",
    )
    parser.add_argument(
        "--node",
        dest="nodes",
        type=_parse_endpoint,
        action="append",
        required=True,
        metavar="HOST:PORT",
        help="a serving node to watch (repeat per node; primary first)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, help="refresh period in seconds"
    )
    parser.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )
    parser.add_argument(
        "--events", type=int, default=8, help="lifecycle events to tail"
    )
    parser.add_argument(
        "--slow", type=int, default=5, help="slow-query entries to tail"
    )
    args = parser.parse_args(argv)

    monitor = ClusterMonitor(args.nodes, interval=args.interval)
    previous = None
    previous_at = None
    try:
        while True:
            document = monitor.scrape_once()
            now = time.monotonic()
            frame = render_dashboard(
                document,
                events=monitor.events(limit=args.events),
                slow=monitor.slow_queries(limit=args.slow),
                previous=previous,
                dt=(now - previous_at) if previous_at is not None else None,
            )
            if args.once:
                print(frame)
                return 0
            # Clear + home, like top: one frame always fills the screen.
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            previous, previous_at = document, now
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        monitor.stop()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
