"""SlowQueryLog: a structured JSON-lines record of over-threshold queries.

Every query the service completes is offered to the log with its duration;
entries at or above ``threshold_seconds`` are recorded with the full span
breakdown of their trace (when sampled), the engine phase timings, and the
terminal status — enough to answer "what made this query slow?" without
re-running it.  ``threshold_seconds=None`` (the default) disables the log
entirely; ``0.0`` records everything (useful in tests and benchmarks).

Entries land in a bounded in-memory ring (served over the wire by the
``slow_queries`` op) and, when ``path`` is given, are appended as one JSON
object per line to a file a human can ``tail -f`` or feed to ``jq``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Dict, List, Optional


class SlowQueryLog:
    """Bounded ring + optional JSON-lines file of slow-query records."""

    def __init__(
        self,
        threshold_seconds: Optional[float] = None,
        path: Optional[str] = None,
        capacity: int = 128,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"slow-log capacity must be positive, got {capacity}")
        self.threshold_seconds = threshold_seconds
        self.path = path
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: deque = deque(maxlen=capacity)
        self._recorded = 0

    @property
    def enabled(self) -> bool:
        """True when a threshold is configured."""
        return self.threshold_seconds is not None

    @property
    def recorded(self) -> int:
        """Total entries ever recorded (the ring keeps only the last N)."""
        with self._lock:
            return self._recorded

    def record(self, seconds: float, **fields) -> bool:
        """Offer one completed query; returns True if it was logged.

        ``fields`` become the entry body (query name, engine, status, the
        trace's span tree, ...); ``ts`` and ``seconds`` are stamped here.
        """
        threshold = self.threshold_seconds
        if threshold is None or seconds < threshold:
            return False
        entry: Dict[str, object] = {"ts": time.time(), "seconds": seconds}
        entry.update(fields)
        with self._lock:
            self._entries.append(entry)
            self._recorded += 1
        if self.path is not None:
            line = json.dumps(entry, sort_keys=True, default=repr)
            try:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
            except OSError:
                pass  # observability must never take the query path down
        return True

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """The most recent entries, oldest first (capped at ``limit``)."""
        with self._lock:
            entries = list(self._entries)
        if limit is not None and limit >= 0:
            entries = entries[-limit:] if limit else []
        return [dict(entry) for entry in entries]

    def clear(self) -> None:
        """Empty the in-memory ring (the file, if any, is untouched)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            f"threshold={self.threshold_seconds}s"
            if self.enabled
            else "disabled"
        )
        return f"SlowQueryLog({state}, {len(self)} held)"
