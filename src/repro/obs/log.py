"""Stdlib ``logging`` wiring for the serving stack.

One hierarchical logger namespace rooted at ``repro``: each layer asks
:func:`get_logger` for its component logger (``repro.server``,
``repro.wal`` ...), optionally scoped to a tenant, and the library as a
whole stays silent by default — the root carries a
:class:`logging.NullHandler`, so an embedding application sees nothing
until *it* configures handlers (the standard library-logging contract).

:func:`configure` is the convenience for processes that want output
without touching ``logging`` themselves (``GraphServer(log_level=...)``
uses it): it attaches a single stream handler to the ``repro`` root, and
calling it again only adjusts the level — handlers never stack.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, Union

#: Root of the library's logger hierarchy.
ROOT_LOGGER = "repro"

#: Default line format for :func:`configure`.
DEFAULT_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"

# Library default: silent until the application (or configure()) says so.
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())

#: The handler :func:`configure` manages (so repeat calls never stack).
_configured_handler: Optional[logging.Handler] = None


class TenantLoggerAdapter(logging.LoggerAdapter):
    """Prefixes every record with the tenant (graph) it concerns.

    The tenant also rides on ``record.tenant`` (via ``extra``) so a
    structured formatter or filter can key on it directly.
    """

    def process(self, msg, kwargs):
        kwargs.setdefault("extra", {})["tenant"] = self.extra["tenant"]
        return f"[{self.extra['tenant']}] {msg}", kwargs


def get_logger(
    component: Optional[str] = None, tenant: Optional[str] = None
) -> Union[logging.Logger, TenantLoggerAdapter]:
    """The library logger for ``component``, optionally scoped to a tenant.

    ``get_logger("server")`` -> the ``repro.server`` logger;
    ``get_logger("server", tenant="fraud")`` -> an adapter over it that
    stamps every record with the tenant name.
    """
    name = ROOT_LOGGER if not component else f"{ROOT_LOGGER}.{component}"
    logger = logging.getLogger(name)
    if tenant is None:
        return logger
    return TenantLoggerAdapter(logger, {"tenant": tenant})


def configure(
    level: Union[int, str] = logging.INFO,
    stream=None,
    fmt: str = DEFAULT_FORMAT,
) -> logging.Logger:
    """Attach (or re-level) the one managed handler on the ``repro`` root.

    Idempotent: the first call installs a :class:`~logging.StreamHandler`
    (to ``stream``, default stderr); later calls only adjust the level and
    format.  Returns the root library logger.
    """
    global _configured_handler
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    root = logging.getLogger(ROOT_LOGGER)
    if _configured_handler is None:
        _configured_handler = logging.StreamHandler(stream or sys.stderr)
        root.addHandler(_configured_handler)
    elif stream is not None:
        _configured_handler.setStream(stream)
    _configured_handler.setFormatter(logging.Formatter(fmt))
    _configured_handler.setLevel(level)
    root.setLevel(level)
    return root
