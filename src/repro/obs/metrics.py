"""MetricsRegistry: thread-safe labelled counters, gauges and histograms.

The registry is the one metrics surface every layer of the stack records
into: a named family per metric, a child per label combination, and two
snapshot forms — a JSON-able document (what the wire protocol's ``metrics``
op ships) and the Prometheus text exposition format (what a scraper
ingests).  Dependency-free and deliberately small:

* **Counters** are monotone floats; they are never reset (the legacy stats
  objects keep their own resettable views and *mirror* increments here).
* **Gauges** are instantaneous values, settable directly or backed by a
  callback evaluated only at snapshot time — the callback form is how
  queue depths and version-chain gauges cost nothing on the hot path.
* **Histograms** are fixed-bucket (cumulative at render time, like
  Prometheus), with an observation count and sum for averages.

Family registration is idempotent: re-requesting the same name with the
same type and labelnames returns the existing family, so every layer can
declare what it needs without coordination.  All mutation is lock-guarded
per family; a snapshot taken concurrently with writers sees each child's
state atomically.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

#: Default histogram buckets (seconds) — latency-oriented, sub-ms to 10s.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_value(value: float) -> str:
    """Prometheus-style number rendering (integral floats without .0 noise)."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    # Exposition-format HELP text escapes backslash and newline (but not
    # quotes — HELP text is not quoted).
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + body + "}"


class _CounterChild:
    """One (family, label-combination) counter cell."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _GaugeChild:
    """One gauge cell — directly settable, or callback-backed."""

    __slots__ = ("_lock", "_value", "_fn")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_function(self, fn: Optional[Callable[[], float]]) -> None:
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return float(fn())
        except Exception:
            return 0.0


class _HistogramChild:
    """One histogram cell: fixed per-bucket counts plus sum and count."""

    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, bounds: Tuple[float, ...]) -> None:
        self._lock = lock
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending with +Inf."""
        with self._lock:
            counts = list(self._counts)
        total = 0
        out: List[Tuple[float, int]] = []
        for bound, count in zip(self.bounds, counts):
            total += count
            out.append((bound, total))
        out.append((float("inf"), total + counts[-1]))
        return out


class _Family:
    """A named metric family: one child per label-value combination."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        # Fast path for the (common) unlabelled family: one cached child.
        self._default = None if self.labelnames else self._make_child()
        if self._default is not None:
            self._children[()] = self._default

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, *values, **labelkw):
        """The child for one label combination (created on first use)."""
        if labelkw:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                values = tuple(labelkw[name] for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(
                    f"{self.name} expects labels {self.labelnames}, got {sorted(labelkw)}"
                ) from exc
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects {len(self.labelnames)} label value(s) "
                f"{self.labelnames}, got {len(values)}"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())


class CounterFamily(_Family):
    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled child (labelnames must be empty)."""
        self.labels().inc(amount)

    @property
    def value(self) -> float:
        return self.labels().value


class GaugeFamily(_Family):
    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set_function(self, fn: Optional[Callable[[], float]]) -> None:
        """Back the unlabelled child with a callback evaluated at read time."""
        self.labels().set_function(fn)

    @property
    def value(self) -> float:
        return self.labels().value


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b == float("inf") for b in bounds):
            raise ValueError("+Inf bucket is implicit; do not pass it")
        self.buckets = bounds
        super().__init__(name, help, labelnames)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        self.labels().observe(value)


class MetricsRegistry:
    """A thread-safe collection of metric families, snapshotable two ways."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------------ #
    # registration (idempotent)
    # ------------------------------------------------------------------ #

    def _register(self, factory, name: str, labelnames: Sequence[str]) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} for metric {name!r}")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                family = factory()
                if existing.kind != family.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"requested {family.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, requested {tuple(labelnames)}"
                    )
                return existing
            family = factory()
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> CounterFamily:
        """Register (or fetch) a counter family."""
        return self._register(
            lambda: CounterFamily(name, help, labelnames), name, labelnames
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> GaugeFamily:
        """Register (or fetch) a gauge family.

        ``fn`` (unlabelled gauges only) installs a callback evaluated at
        snapshot time; re-registering with a new ``fn`` replaces it, so an
        object rebinding its gauges always wins.
        """
        family = self._register(
            lambda: GaugeFamily(name, help, labelnames), name, labelnames
        )
        if fn is not None:
            if family.labelnames:
                raise ValueError(f"callback gauges must be unlabelled: {name!r}")
            family.set_function(fn)
        return family

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> HistogramFamily:
        """Register (or fetch) a fixed-bucket histogram family."""
        return self._register(
            lambda: HistogramFamily(name, help, labelnames, buckets), name, labelnames
        )

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._families

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._families)

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, dict]:
        """A JSON-able document: every family, every child, current values."""
        with self._lock:
            families = sorted(self._families.items())
        document: Dict[str, dict] = {}
        for name, family in families:
            values = []
            for key, child in family.children():
                labels = dict(zip(family.labelnames, key))
                if family.kind == "histogram":
                    values.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": {
                                _format_value(bound): count
                                for bound, count in child.cumulative()
                            },
                        }
                    )
                else:
                    values.append({"labels": labels, "value": child.value})
            document[name] = {
                "type": family.kind,
                "help": family.help,
                "values": values,
            }
        return document

    def to_prometheus(
        self, extra_labels: Optional[Mapping[str, str]] = None
    ) -> str:
        """The Prometheus text exposition format (version 0.0.4).

        ``extra_labels`` are merged into every sample at render time — the
        server uses this to stamp each tenant's registry with its
        ``graph="<name>"`` label without the hot paths ever knowing it.
        """
        base = dict(extra_labels or {})
        with self._lock:
            families = sorted(self._families.items())
        lines: List[str] = []
        for name, family in families:
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, child in family.children():
                labels = dict(base)
                labels.update(zip(family.labelnames, key))
                if family.kind == "histogram":
                    for bound, count in child.cumulative():
                        bucket_labels = dict(labels, le=_format_value(bound))
                        lines.append(
                            f"{name}_bucket{_render_labels(bucket_labels)} {count}"
                        )
                    lines.append(
                        f"{name}_sum{_render_labels(labels)} {_format_value(child.sum)}"
                    )
                    lines.append(f"{name}_count{_render_labels(labels)} {child.count}")
                else:
                    lines.append(
                        f"{name}{_render_labels(labels)} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsRegistry({len(self.names())} families)"
