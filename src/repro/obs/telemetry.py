"""Telemetry: the one context object threaded through every serving layer.

A :class:`Telemetry` bundles the three observability surfaces —
:class:`~repro.obs.metrics.MetricsRegistry`,
:class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.slowlog.SlowQueryLog` — so the stack passes a single
handle down instead of three.  One instance per tenant: a
:class:`~repro.api.GraphDB` creates its own by default and hands it to its
store (which binds the WAL and every published session epoch) and its query
service; the wire server then merely *reads* the tenant's bundle for the
``metrics`` and ``slow_queries`` ops.

Passing ``telemetry=None`` to ``GraphDB.open`` switches the whole subsystem
off — no registry mirroring, no sampling decision, no slow-log check — which
is the "disabled" arm of ``benchmarks/bench_obs.py``'s overhead comparison.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.context import SpanRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Tracer


class Telemetry:
    """Per-tenant observability bundle: registry + tracer + slow log + spans.

    Parameters
    ----------
    registry / tracer / slow_log / spans:
        Pre-built components to adopt; anything omitted is constructed from
        the scalar knobs below.
    sample_rate:
        Tracer sampling probability for unforced queries (default ``0.0``:
        only explicitly requested trace ids produce traces).
    slow_query_seconds:
        Slow-log threshold; ``None`` (default) disables the log, ``0.0``
        records every query.
    slow_log_path:
        Optional JSON-lines file the slow log also appends to.
    span_capacity:
        Size of the cross-node span ring (see
        :class:`~repro.obs.context.SpanRecorder`): how many finished
        distributed-trace spans this tenant retains for the ``spans``
        wire op and cross-node trace assembly.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        slow_log: Optional[SlowQueryLog] = None,
        spans: Optional[SpanRecorder] = None,
        sample_rate: float = 0.0,
        slow_query_seconds: Optional[float] = None,
        slow_log_path: Optional[str] = None,
        slow_log_capacity: int = 128,
        span_capacity: int = 512,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(sample_rate=sample_rate)
        self.slow_log = (
            slow_log
            if slow_log is not None
            else SlowQueryLog(
                threshold_seconds=slow_query_seconds,
                path=slow_log_path,
                capacity=slow_log_capacity,
            )
        )
        self.spans = spans if spans is not None else SpanRecorder(span_capacity)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Telemetry(registry={self.registry!r}, tracer={self.tracer!r}, "
            f"slow_log={self.slow_log!r})"
        )
