"""Health/readiness classification shared by servers, routers and monitors.

One vocabulary for "can this node serve?":

* ``ready`` — serving at full fidelity (a primary with its WAL healthy,
  a replica connected and within the lag budget).
* ``degraded`` — serving, but stale or impaired (a replica disconnected
  from its primary, or lagging past ``degraded_lag_versions``): reads
  still answer, a router should prefer healthier peers.
* ``unhealthy`` — should not serve (lag past ``unhealthy_lag_versions``
  — the staleness no caller signed up for).
* ``unreachable`` — a *client-side* verdict: the node did not answer a
  health probe at all (down, partitioned, or frozen — a SIGSTOP'd
  process keeps its TCP socket open but answers nothing, which is why
  probes must time out fast rather than wait).

The server builds its ``health`` op reply from :func:`classify_tenant` /
:func:`worst`; :class:`~repro.client.RoutedClient` and
:class:`~repro.obs.federation.ClusterMonitor` consume the same states.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

__all__ = [
    "DEGRADED",
    "DEFAULT_DEGRADED_LAG_VERSIONS",
    "DEFAULT_UNHEALTHY_LAG_VERSIONS",
    "READY",
    "UNHEALTHY",
    "UNREACHABLE",
    "classify_tenant",
    "is_servable",
    "worst",
]

READY = "ready"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"
UNREACHABLE = "unreachable"

#: Replica lag (in versions) past which a tenant reports ``degraded``.
DEFAULT_DEGRADED_LAG_VERSIONS = 16

#: Replica lag (in versions) past which a tenant reports ``unhealthy``.
DEFAULT_UNHEALTHY_LAG_VERSIONS = 1024

#: Severity order, mildest first (indices compare states).
_SEVERITY = (READY, DEGRADED, UNHEALTHY, UNREACHABLE)


def worst(states: Iterable[str]) -> str:
    """The most severe of the given states (``ready`` when empty)."""
    rank = 0
    for state in states:
        try:
            rank = max(rank, _SEVERITY.index(state))
        except ValueError:
            rank = max(rank, _SEVERITY.index(UNHEALTHY))  # unknown = bad
    return _SEVERITY[rank]


def is_servable(state: str) -> bool:
    """Whether a router should keep dispatching reads to this state."""
    return state in (READY, DEGRADED)


def classify_tenant(
    role: str,
    tail_status: Optional[Dict[str, object]] = None,
    degraded_lag_versions: int = DEFAULT_DEGRADED_LAG_VERSIONS,
    unhealthy_lag_versions: int = DEFAULT_UNHEALTHY_LAG_VERSIONS,
) -> str:
    """One tenant's health state on one node.

    A primary tenant is ``ready`` (its write path either works or raises
    loudly — there is no stale-but-serving middle ground).  A replica
    tenant is judged by its tail: disconnected → ``degraded`` (it keeps
    serving its last folded version), lag past the degraded threshold →
    ``degraded``, lag past the unhealthy threshold → ``unhealthy``.
    """
    if role != "replica" or tail_status is None:
        return READY
    lag = int(tail_status.get("lag_versions") or 0)
    if lag > int(unhealthy_lag_versions):
        return UNHEALTHY
    if not tail_status.get("connected", False):
        return DEGRADED
    if lag > int(degraded_lag_versions):
        return DEGRADED
    return READY
