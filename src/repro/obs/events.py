"""Bounded server event ring: recent lifecycle events, queryable.

Log lines scroll away with the process's stderr; the ops console (and
anything else watching a fleet) wants the *recent* lifecycle events of a
node — connects, tenant creates/drops, recoveries, sheds, checkpoints —
as data.  :class:`EventLog` is that surface: a thread-safe bounded ring
of structured event records every :class:`~repro.server.GraphServer`
emits into alongside its log lines, exposed over the wire as the
``events`` op and merged fleet-wide by
:class:`~repro.obs.federation.ClusterMonitor`.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

__all__ = ["EventLog"]


class EventLog:
    """A bounded, monotonically-sequenced ring of lifecycle events.

    Each record is ``{"seq", "ts", "kind", "message", ...fields}``; the
    sequence number survives ring overflow, so a poller that remembers
    the last ``seq`` it saw can detect dropped events.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = max(1, int(capacity))
        self._lock = threading.Lock()
        self._events: List[Dict[str, object]] = []
        self._seq = 0

    def emit(self, kind: str, message: str, **fields) -> Dict[str, object]:
        """Record one event; returns the stored record."""
        with self._lock:
            self._seq += 1
            record: Dict[str, object] = {
                "seq": self._seq,
                "ts": time.time(),
                "kind": str(kind),
                "message": str(message),
            }
            for key, value in fields.items():
                if value is not None:
                    record[key] = value
            self._events.append(record)
            if len(self._events) > self.capacity:
                del self._events[: len(self._events) - self.capacity]
            return dict(record)

    def recent(
        self,
        limit: Optional[int] = None,
        kinds: Optional[Sequence[str]] = None,
        after_seq: Optional[int] = None,
    ) -> List[Dict[str, object]]:
        """The newest retained events, oldest first.

        ``kinds`` filters by event kind; ``after_seq`` returns only
        events the caller has not seen yet (strictly greater sequence).
        """
        with self._lock:
            events = [dict(event) for event in self._events]
        if kinds is not None:
            wanted = set(kinds)
            events = [event for event in events if event["kind"] in wanted]
        if after_seq is not None:
            events = [event for event in events if int(event["seq"]) > int(after_seq)]
        if limit is not None:
            events = events[-max(0, int(limit)):]
        return events

    @property
    def last_seq(self) -> int:
        """The newest sequence number ever emitted (0 when empty)."""
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventLog({len(self)}/{self.capacity} events, seq={self.last_seq})"
