"""Shared quantile helpers: one percentile definition for the whole stack.

Three layers grew their own percentile code (``BatchReport``, the service's
latency stats, benchmark helpers); this module is the single canonical
implementation they now all import.  The nearest-rank definition is kept
bit-for-bit identical to the original ``repro.session.batch.percentile`` so
historical numbers stay comparable.

:class:`Reservoir` is the bounded companion: a uniform sample over an
unbounded observation stream (Vitter's algorithm R), so long-running
services can report latency percentiles over their *whole* history in
O(capacity) memory instead of keeping every sample or only a sliding
window.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (``fraction`` in ``[0, 1]``).

    Returns ``0.0`` for an empty sample set, matching the historical
    behaviour of the batch-report percentiles.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class Reservoir:
    """A bounded uniform sample of an observation stream (algorithm R).

    The first ``capacity`` observations are kept verbatim; each later
    observation replaces a uniformly random slot with probability
    ``capacity / seen``, so at any point the retained samples are a uniform
    sample of everything observed.  Not internally locked — callers that
    share a reservoir across threads must serialise :meth:`add` themselves
    (``ServiceStats`` already holds its own lock around every mutation).
    """

    __slots__ = ("capacity", "_samples", "_seen", "_random")

    def __init__(self, capacity: int = 4096, seed: Optional[int] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"reservoir capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._samples: List[float] = []
        self._seen = 0
        self._random = random.Random(seed)

    def add(self, value: float) -> None:
        """Record one observation."""
        self._seen += 1
        if len(self._samples) < self.capacity:
            self._samples.append(value)
            return
        slot = self._random.randrange(self._seen)
        if slot < self.capacity:
            self._samples[slot] = value

    @property
    def seen(self) -> int:
        """Total observations ever added (not just those retained)."""
        return self._seen

    def __len__(self) -> int:
        return len(self._samples)

    def samples(self) -> List[float]:
        """A copy of the retained samples (unsorted)."""
        return list(self._samples)

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        return percentile(self._samples, fraction)

    def clear(self) -> None:
        """Drop every sample and reset the seen counter."""
        self._samples.clear()
        self._seen = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Reservoir({len(self._samples)}/{self.capacity} of {self._seen} seen)"
