"""QuerySession: per-graph cached state shared by every query.

The paper's headline result rests on expensive per-graph artifacts — the
reachability index, the transitive closure, label bitmaps, runtime index
graphs — being built *once* and reused across queries.  A
:class:`QuerySession` is the object that owns that cached state: construct
one per data graph, then push any number of queries (and any mix of
matchers) through it.  Every artifact is built lazily on first use, guarded
by a lock, and accounted in :class:`CacheStats` so callers can assert reuse.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.baselines.iso import ISOMatcher
from repro.baselines.jm import JMMatcher
from repro.baselines.tm import TMMatcher
from repro.bitmap.roaring import RoaringBitmap
from repro.dynamic.delta import GraphDelta
from repro.dynamic.maintenance import (
    ApplyReport,
    patch_expanded_graph,
    patch_label_bitmaps,
    patch_partitions,
    patch_universe,
    should_patch,
)
from repro.exceptions import QueryError, StoreError
from repro.explain.plan import PlanOperator, QueryPlan
from repro.dynamic.overlay import MutableDataGraph
from repro.engines.base import Engine, EngineResult, expand_descendant_edges
from repro.engines.binary_join import BinaryJoinEngine
from repro.engines.relational import RelationalEngine, build_edge_partitions
from repro.engines.treedecomp import TreeDecompEngine
from repro.engines.wcoj import WCOJEngine, build_catalog, patch_catalog
from repro.graph.digraph import DataGraph
from repro.matching.gm import GMVariant, GraphMatcher
from repro.matching.ordering import OrderingMethod
from repro.matching.result import Budget, MatchReport
from repro.matching.stream import MatchStream
from repro.query.pattern import PatternQuery
from repro.reachability.base import ReachabilityIndex
from repro.reachability.transitive_closure import TransitiveClosureIndex
from repro.rig.build import RIGBuildReport, RIGOptions
from repro.session.batch import BatchReport, QueryOutcome
from repro.simulation.context import MatchContext


class CacheStats:
    """Hit/miss/invalidation/patch counters for the session's cached artifacts.

    A *miss* means the artifact was built (the expensive path); a *hit*
    means an already-built artifact was reused.  Counters are keyed by
    artifact name (``"reachability"``, ``"closure"``, ``"expanded_graph"``,
    ``"catalog"``, ``"partitions"``, ``"bitmaps"``, ``"universe"``,
    ``"rig"``, ``"matcher"``).  ``"matcher"`` only records builds: instance
    lookups happen on every query and are not an interesting reuse signal.

    Graph updates (:meth:`QuerySession.apply`) add two more outcomes: a
    *patch* means the artifact was updated in place and its build cost was
    saved; an *invalidation* means it was dropped and will be rebuilt
    lazily (a future miss).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        self._invalidations: Dict[str, int] = {}
        self._patches: Dict[str, int] = {}
        self._m_hits = None
        self._m_misses = None
        self._m_invalidations = None
        self._m_patches = None

    def bind_registry(self, registry) -> None:
        """Mirror every future recording into shared ``session_cache_*`` families.

        The local counters keep their per-session lifecycle (``reset()`` on
        :meth:`QuerySession.clear`); the registry families are monotone and
        accumulate across every session epoch bound to the same registry —
        including the forked epochs a :class:`~repro.store.VersionedGraphStore`
        publishes and later garbage-collects.
        """
        self._m_hits = registry.counter(
            "session_cache_hits_total", "Cached-artifact reuses", labelnames=("artifact",)
        )
        self._m_misses = registry.counter(
            "session_cache_misses_total", "Cached-artifact builds", labelnames=("artifact",)
        )
        self._m_invalidations = registry.counter(
            "session_cache_invalidations_total",
            "Artifacts dropped by graph updates",
            labelnames=("artifact",),
        )
        self._m_patches = registry.counter(
            "session_cache_patches_total",
            "Artifacts patched in place by graph updates",
            labelnames=("artifact",),
        )

    def record_hit(self, key: str) -> None:
        """Count one reuse of the artifact ``key``."""
        with self._lock:
            self._hits[key] = self._hits.get(key, 0) + 1
        if self._m_hits is not None:
            self._m_hits.labels(key).inc()

    def record_miss(self, key: str) -> None:
        """Count one build of the artifact ``key``."""
        with self._lock:
            self._misses[key] = self._misses.get(key, 0) + 1
        if self._m_misses is not None:
            self._m_misses.labels(key).inc()

    def record_invalidation(self, key: str) -> None:
        """Count one drop of the artifact ``key`` on a graph update."""
        with self._lock:
            self._invalidations[key] = self._invalidations.get(key, 0) + 1
        if self._m_invalidations is not None:
            self._m_invalidations.labels(key).inc()

    def record_patch(self, key: str) -> None:
        """Count one in-place update of the artifact ``key``."""
        with self._lock:
            self._patches[key] = self._patches.get(key, 0) + 1
        if self._m_patches is not None:
            self._m_patches.labels(key).inc()

    def hits(self, key: Optional[str] = None) -> int:
        """Hit count for ``key`` (total over all artifacts when omitted)."""
        with self._lock:
            if key is None:
                return sum(self._hits.values())
            return self._hits.get(key, 0)

    def misses(self, key: Optional[str] = None) -> int:
        """Miss (build) count for ``key`` (total when omitted)."""
        with self._lock:
            if key is None:
                return sum(self._misses.values())
            return self._misses.get(key, 0)

    def invalidations(self, key: Optional[str] = None) -> int:
        """Invalidation count for ``key`` (total when omitted)."""
        with self._lock:
            if key is None:
                return sum(self._invalidations.values())
            return self._invalidations.get(key, 0)

    def patches(self, key: Optional[str] = None) -> int:
        """Patch count for ``key`` (total when omitted)."""
        with self._lock:
            if key is None:
                return sum(self._patches.values())
            return self._patches.get(key, 0)

    @property
    def total_hits(self) -> int:
        """Total hits over all artifacts."""
        return self.hits()

    @property
    def total_misses(self) -> int:
        """Total builds over all artifacts."""
        return self.misses()

    @property
    def total_invalidations(self) -> int:
        """Total invalidations over all artifacts."""
        return self.invalidations()

    @property
    def total_patches(self) -> int:
        """Total in-place patches over all artifacts."""
        return self.patches()

    def snapshot(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        """Copies of the (hits, misses) counter dicts."""
        with self._lock:
            return dict(self._hits), dict(self._misses)

    def full_snapshot(self) -> Dict[str, Dict[str, int]]:
        """Copies of all four counter dicts, keyed by counter name."""
        with self._lock:
            return {
                "hits": dict(self._hits),
                "misses": dict(self._misses),
                "invalidations": dict(self._invalidations),
                "patches": dict(self._patches),
            }

    def reset(self) -> None:
        """Zero every counter (used by :meth:`QuerySession.clear`)."""
        with self._lock:
            self._hits.clear()
            self._misses.clear()
            self._invalidations.clear()
            self._patches.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        full = self.full_snapshot()
        parts = [f"{name}={counters}" for name, counters in full.items() if counters]
        return f"CacheStats({', '.join(parts) or 'empty'})"


class _ObservedRigCache(dict):
    """RIG cache handed to :class:`GraphMatcher`; records hits and misses.

    ``GraphMatcher._rig_for`` probes the cache exactly once per match, so
    counting inside :meth:`get` yields one hit or one miss per GM query.
    """

    def __init__(self, stats: CacheStats) -> None:
        super().__init__()
        self._stats = stats

    def get(self, key, default=None):
        value = super().get(key, default)
        if value is None:
            self._stats.record_miss("rig")
        else:
            self._stats.record_hit("rig")
        return value


class QuerySession:
    """Cached-index query execution over one data graph.

    Parameters
    ----------
    graph:
        The data graph to serve queries on.
    reachability_kind:
        Reachability index scheme (``"bfl"`` default, as in the paper).
    ordering / rig_options / budget:
        Defaults forwarded to the GM matchers the session constructs.
    set_kind:
        Set representation for session-built RIGs (``"set"`` default).

    The session owns, lazily and at most once each:

    * the :class:`MatchContext` with its reachability index (and the
      inverted label lists / label summaries it derives);
    * the materialised transitive closure and the closure-expanded data
      graph the comparator engines need for descendant queries;
    * the GF catalog and the EH edge-relation partitions;
    * per-label Roaring bitmaps and the node-universe bitmap;
    * one RIG per distinct (GM variant, query) pair;
    * one matcher / engine instance per matcher name.

    ``stats`` exposes hit/miss counters per artifact; after a warm-up query,
    identical queries must record only hits (no rebuilds).

    Graph updates flow in through :meth:`apply` as batched
    :class:`~repro.dynamic.GraphDelta` edits: the graph advances to a new
    monotone version and each cached artifact is patched in place where the
    delta shape allows, or invalidated for lazy rebuild (recorded as
    ``stats`` patches / invalidations).  :meth:`clear` resets the session —
    artifacts *and* counters — to the freshly constructed state.

    Thread safety: artifact construction is serialised by an internal lock;
    match execution itself only reads shared state, so :meth:`run_batch` may
    fan queries out over a thread pool.
    """

    def __init__(
        self,
        graph: DataGraph,
        reachability_kind: str = "bfl",
        ordering: OrderingMethod = OrderingMethod.JO,
        rig_options: Optional[RIGOptions] = None,
        budget: Optional[Budget] = None,
        set_kind: str = "set",
    ) -> None:
        self.graph = graph
        self.reachability_kind = reachability_kind
        self.ordering = ordering
        self.rig_options = rig_options or RIGOptions(set_kind=set_kind)
        self.budget = budget or Budget()
        self.stats = CacheStats()
        #: The bound per-tenant telemetry bundle (None when observability is off).
        self.telemetry = None
        self._lock = threading.RLock()
        self._context: Optional[MatchContext] = None
        self._closure: Optional[TransitiveClosureIndex] = None
        self._expanded_graph: Optional[DataGraph] = None
        self._catalog = None
        self._partitions = None
        self._label_bitmaps: Optional[Dict[str, RoaringBitmap]] = None
        self._universe: Optional[RoaringBitmap] = None
        # RIG caches are keyed by (GM variant, graph version): a version bump
        # automatically strands every stale per-query RIG.
        self._rig_caches: Dict[Tuple[str, int], _ObservedRigCache] = {}
        self._matchers: Dict[str, object] = {}
        self._artifact_versions: Dict[str, int] = {}
        # A frozen session is one epoch of a VersionedGraphStore: it serves
        # reads forever at its version and refuses in-place mutation.
        self._frozen = False

    # ------------------------------------------------------------------ #
    # cached artifacts
    # ------------------------------------------------------------------ #

    def _artifact(self, attr: str, key: str, builder: Callable[[], object]):
        """Return the cached artifact ``attr``, building it on first use."""
        with self._lock:
            value = getattr(self, attr)
            if value is None:
                self.stats.record_miss(key)
                value = builder()
                setattr(self, attr, value)
                self._artifact_versions[key] = self.version
            else:
                self.stats.record_hit(key)
            return value

    def bind_telemetry(self, telemetry) -> None:
        """Attach a :class:`~repro.obs.Telemetry` bundle to this session.

        The cache counters start mirroring into the bundle's registry
        (``session_cache_*`` families).  Binding ``None`` is a no-op, so
        callers can pass through an optional bundle unconditionally.
        """
        if telemetry is None:
            return
        self.telemetry = telemetry
        self.stats.bind_registry(telemetry.registry)

    @property
    def version(self) -> int:
        """The monotone version of the session's current graph."""
        return getattr(self.graph, "version", 0)

    def artifact_version(self, key: str) -> Optional[int]:
        """Graph version an artifact was built/patched at (None if unbuilt)."""
        with self._lock:
            return self._artifact_versions.get(key)

    @property
    def context(self) -> MatchContext:
        """The shared :class:`MatchContext` (builds the reachability index once)."""
        return self._artifact(
            "_context",
            "reachability",
            lambda: MatchContext(self.graph, reachability_kind=self.reachability_kind),
        )

    @property
    def reachability(self) -> ReachabilityIndex:
        """The session's reachability index."""
        return self.context.reachability

    @property
    def transitive_closure(self) -> TransitiveClosureIndex:
        """The materialised transitive closure (reused by engine expansion)."""

        def build() -> TransitiveClosureIndex:
            # If the session's reachability index *is* a closure, reuse it.
            if self._context is not None and isinstance(
                self._context.reachability, TransitiveClosureIndex
            ):
                return self._context.reachability
            return TransitiveClosureIndex(self.graph)

        return self._artifact("_closure", "closure", build)

    @property
    def expanded_graph(self) -> DataGraph:
        """The closure-expanded data graph engines use for descendant edges."""

        def build() -> DataGraph:
            expanded, _seconds = expand_descendant_edges(
                self.graph, closure=self.transitive_closure
            )
            return expanded

        return self._artifact("_expanded_graph", "expanded_graph", build)

    @property
    def catalog(self):
        """The GF subgraph-cardinality catalog."""
        return self._artifact("_catalog", "catalog", lambda: build_catalog(self.graph))

    @property
    def partitions(self):
        """The EH edge relations partitioned by label pair."""
        return self._artifact(
            "_partitions", "partitions", lambda: build_edge_partitions(self.graph)
        )

    @property
    def label_bitmaps(self) -> Dict[str, RoaringBitmap]:
        """Per-label Roaring bitmaps of the inverted lists (the bitmap universe)."""

        def build() -> Dict[str, RoaringBitmap]:
            return {
                label: RoaringBitmap(self.graph.inverted_list(label))
                for label in self.graph.label_alphabet()
            }

        return self._artifact("_label_bitmaps", "bitmaps", build)

    def label_bitmap(self, label: str) -> RoaringBitmap:
        """The Roaring bitmap of one label's inverted list (empty if unknown)."""
        return self.label_bitmaps.get(label) or RoaringBitmap(())

    @property
    def bitmap_universe(self) -> RoaringBitmap:
        """Bitmap of every node id of the data graph."""
        return self._artifact(
            "_universe", "universe", lambda: RoaringBitmap(range(self.graph.num_nodes))
        )

    # ------------------------------------------------------------------ #
    # matcher construction
    # ------------------------------------------------------------------ #

    _GM_SPECS: Dict[str, Tuple[GMVariant, Optional[OrderingMethod]]] = {
        "GM": (GMVariant.GM, None),
        "GM-S": (GMVariant.GM_S, None),
        "GM-F": (GMVariant.GM_F, None),
        "GM-NR": (GMVariant.GM_NR, None),
        "GM-JO": (GMVariant.GM, OrderingMethod.JO),
        "GM-RI": (GMVariant.GM, OrderingMethod.RI),
        "GM-BJ": (GMVariant.GM, OrderingMethod.BJ),
    }
    _BASELINE_CLASSES = {"JM": JMMatcher, "TM": TMMatcher, "ISO": ISOMatcher}
    _ENGINE_CLASSES = {
        "Neo4j": BinaryJoinEngine,
        "EH": RelationalEngine,
        "GF": WCOJEngine,
        "RM": TreeDecompEngine,
    }

    @classmethod
    def available_matchers(cls) -> Tuple[str, ...]:
        """Matcher names :meth:`matcher` accepts."""
        return tuple(
            sorted({**cls._GM_SPECS, **cls._BASELINE_CLASSES, **cls._ENGINE_CLASSES})
        )

    @classmethod
    def register_engine(cls, name: str, engine_class) -> None:
        """Register a custom :class:`~repro.engines.base.Engine` subclass.

        The engine becomes addressable by ``name`` in :meth:`query` /
        :meth:`stream` / :meth:`run_batch` (and therefore through the
        store, the service and the :class:`~repro.api.GraphDB` facade).
        Registration is process-wide (the registry is class-level) and
        overwrites an existing entry with the same name — tests should
        unregister with :meth:`unregister_engine` when done.
        """
        if not (isinstance(engine_class, type) and issubclass(engine_class, Engine)):
            raise TypeError(
                f"engine_class must be an Engine subclass, got {engine_class!r}"
            )
        cls._ENGINE_CLASSES[name] = engine_class

    @classmethod
    def unregister_engine(cls, name: str) -> None:
        """Remove a previously registered custom engine (missing names ok)."""
        if name not in {"Neo4j", "EH", "GF", "RM"}:
            cls._ENGINE_CLASSES.pop(name, None)

    def _rig_cache_for(self, variant: GMVariant) -> _ObservedRigCache:
        key = (variant.value, self.version)
        cache = self._rig_caches.get(key)
        if cache is None:
            cache = _ObservedRigCache(self.stats)
            self._rig_caches[key] = cache
        return cache

    def _build_matcher(self, name: str):
        if name in self._GM_SPECS:
            variant, ordering = self._GM_SPECS[name]
            return GraphMatcher(
                self.graph,
                context=self.context,
                variant=variant,
                ordering=ordering or self.ordering,
                rig_options=self.rig_options,
                budget=self.budget,
                rig_cache=self._rig_cache_for(variant),
            )
        if name in self._BASELINE_CLASSES:
            return self._BASELINE_CLASSES[name](
                self.graph, context=self.context, budget=self.budget
            )
        if name in self._ENGINE_CLASSES:
            engine_class = self._ENGINE_CLASSES[name]
            kwargs: Dict[str, object] = {
                "budget": self.budget,
                # Lazy providers: the closure / expanded graph are only built
                # if this engine actually sees a descendant query, and are
                # then shared with every other engine of the session.
                "expanded_graph": lambda: self.expanded_graph,
            }
            if engine_class is WCOJEngine:
                kwargs["catalog"] = self.catalog
            if engine_class is RelationalEngine:
                kwargs["partitions"] = self.partitions
            return engine_class(self.graph, **kwargs)
        raise KeyError(
            f"unknown matcher {name!r}; available: {', '.join(self.available_matchers())}"
        )

    def matcher(self, name: str = "GM"):
        """The session's shared matcher / engine instance for ``name``.

        Instances are built once and cached; engines receive the session's
        pre-built artifacts (catalog, partitions, closure-expanded graph)
        instead of recomputing their own.
        """
        with self._lock:
            matcher = self._matchers.get(name)
            if matcher is None:
                self.stats.record_miss("matcher")
                matcher = self._build_matcher(name)
                self._matchers[name] = matcher
            # Reusing the instance is not counted as a hit: every query()
            # performs this lookup, and counting it would drown the real
            # index-reuse signal (rig / reachability / closure hits).
            return matcher

    # ------------------------------------------------------------------ #
    # query execution
    # ------------------------------------------------------------------ #

    def query(
        self,
        query: PatternQuery,
        engine: str = "GM",
        budget: Optional[Budget] = None,
        injective: bool = False,
    ) -> MatchReport:
        """Evaluate one query through the session's cached state.

        Returns a :class:`MatchReport`; for comparator engines the engine's
        precomputation time is recorded in ``report.extra``.
        """
        matcher = self.matcher(engine)
        budget = budget or self.budget
        if isinstance(matcher, Engine):
            result: EngineResult = matcher.match(query, budget=budget)
            report = result.report
            report.extra.setdefault("precompute_seconds", result.precompute_seconds)
            return report
        if isinstance(matcher, GraphMatcher):
            return matcher.match(query, budget=budget, injective=injective)
        return matcher.match(query, budget=budget)

    def stream(
        self,
        query: PatternQuery,
        engine: str = "GM",
        budget: Optional[Budget] = None,
        injective: bool = False,
        keep_occurrences: bool = True,
    ) -> MatchStream:
        """Incrementally evaluate one query as a :class:`MatchStream`.

        Occurrences flow out as the matcher finds them (lazily for GM, the
        streaming-capable engines, and the JM / TM / ISO baselines, each of
        which streams genuinely from its enumeration phase);
        ``stream.report()`` drains the rest and finalises into the same
        :class:`MatchReport` :meth:`query` returns.  Matchers without a
        streaming path evaluate eagerly and replay their finished result
        through the same interface.
        """
        matcher = self.matcher(engine)
        budget = budget or self.budget
        if isinstance(matcher, GraphMatcher):
            return matcher.match_stream(
                query,
                budget=budget,
                injective=injective,
                keep_occurrences=keep_occurrences,
            )
        stream_method = getattr(matcher, "match_stream", None)
        if stream_method is not None:
            # Engines and the baselines, each with a genuine streaming path
            # (JM's final hash join emits as it probes, TM yields per
            # surviving tree solution, ISO yields per completed assignment).
            return stream_method(
                query, budget=budget, keep_occurrences=keep_occurrences
            )
        return MatchStream.from_report(
            matcher.match(query, budget=budget), budget=budget
        )

    def explain(
        self,
        query: PatternQuery,
        engine: str = "GM",
        analyze: bool = False,
        budget: Optional[Budget] = None,
        injective: bool = False,
    ) -> QueryPlan:
        """The query plan ``engine`` would execute for ``query``.

        With ``analyze=False`` the query is planned but never executed:
        GM runs its real pipeline up to (and including) search-order
        selection — RIG build, ordering strategy, per-step candidate
        estimates — and the comparator engines describe their operator
        trees with catalog / label-cardinality estimates.  With
        ``analyze=True`` the query *is* executed (under ``budget``) with
        lightweight per-operator counters, and the plan carries
        estimate-vs-actual columns whose root row count equals the
        :class:`MatchReport` occurrence count of a plain :meth:`query`.

        The returned :class:`~repro.explain.QueryPlan` is annotated with
        which of the session's shared artifacts were already cached at
        explain time (nothing is built just to report on it).
        """
        matcher = self.matcher(engine)
        budget = budget or self.budget
        if isinstance(matcher, GraphMatcher):
            plan = matcher.explain(
                query, analyze=analyze, budget=budget, injective=injective
            )
        elif isinstance(matcher, Engine):
            plan = matcher.explain(query, analyze=analyze, budget=budget)
        else:
            # JM / TM / ISO baselines: no operator pipeline to introspect —
            # a single opaque evaluate node, still reconciled under analyze.
            root = PlanOperator(op="evaluate", label=f"Evaluate [{engine}]")
            plan = QueryPlan(
                query=query.name or "query",
                engine=engine,
                analyze=analyze,
                root=root,
            )
            if analyze:
                report = matcher.match(query, budget=budget)
                root.actual = {"rows": report.num_matches}
                plan.execution = {
                    "status": report.status.value,
                    "rows": report.num_matches,
                    "matching_seconds": report.matching_seconds,
                    "enumeration_seconds": report.enumeration_seconds,
                }
        # Session-level context: the reachability scheme and which shared
        # artifacts were already cached when this plan was produced.
        plan.artifacts.setdefault("reachability_kind", self.reachability_kind)
        with self._lock:
            cached = [
                key
                for key, attr in (
                    ("reachability", "_context"),
                    ("closure", "_closure"),
                    ("expanded_graph", "_expanded_graph"),
                    ("catalog", "_catalog"),
                    ("partitions", "_partitions"),
                    ("bitmaps", "_label_bitmaps"),
                )
                if getattr(self, attr) is not None
            ]
        plan.artifacts.setdefault("session_cached", cached)
        if self.telemetry is not None:
            self.telemetry.registry.counter(
                "explain_total",
                "EXPLAIN / EXPLAIN ANALYZE requests",
                labelnames=("engine", "mode"),
            ).labels(engine, "analyze" if analyze else "plan").inc()
        return plan

    def count(self, query: PatternQuery, engine: str = "GM", budget: Optional[Budget] = None) -> int:
        """Number of occurrences of ``query`` (subject to the budget).

        Uses a counting drain over the matcher's streaming iterator, so
        the occurrence list is never materialised and ``max_matches`` /
        deadline budgets short-circuit the enumeration.  A non-solved
        termination (timeout, cancellation, memory budget) returns the
        matches counted *so far*; use :meth:`query` when the terminal
        status matters.
        """
        stream = self.stream(query, engine=engine, budget=budget, keep_occurrences=False)
        for _ in stream:
            pass
        return stream.num_yielded

    def histogram(
        self,
        query: PatternQuery,
        node: Optional[int] = None,
        engine: str = "GM",
        budget: Optional[Budget] = None,
    ) -> Dict[str, int]:
        """Per-label histogram of the distinct data nodes in the result set.

        The analytics companion of :meth:`count`: a streamed aggregation
        drain that answers "how many distinct data nodes of each label
        participate in at least one occurrence" without materialising the
        occurrence list.  ``node`` restricts the drain to the bindings of
        one query node (all positions by default).  Memory is bounded by
        the number of *participating data nodes*, never by the number of
        occurrences, and the budget's match cap / deadline short-circuit
        the enumeration exactly as in :meth:`count`.
        """
        if node is not None and not (0 <= node < query.num_nodes):
            raise QueryError(
                f"histogram node {node} outside query nodes 0..{query.num_nodes - 1}"
            )
        stream = self.stream(query, engine=engine, budget=budget, keep_occurrences=False)
        participating: set = set()
        if node is None:
            for occurrence in stream:
                participating.update(occurrence)
        else:
            for occurrence in stream:
                participating.add(occurrence[node])
        graph = self.graph
        histogram: Dict[str, int] = {}
        for data_node in participating:
            label = graph.label(data_node)
            histogram[label] = histogram.get(label, 0) + 1
        return histogram

    def run_batch(
        self,
        queries: Union[Mapping[str, PatternQuery], Iterable[PatternQuery]],
        engine: str = "GM",
        workers: int = 1,
        budget: Optional[Budget] = None,
        injective: bool = False,
        keep_occurrences: bool = True,
    ) -> BatchReport:
        """Execute a batch of queries and return aggregate statistics.

        ``queries`` is either a name -> query mapping or an iterable of
        queries (named by their ``.name``).  ``workers > 1`` fans the batch
        out over a thread pool; every query still honours the per-query
        ``budget`` (time limit, match cap, intermediate cap).  Results are
        returned in input order regardless of worker count.
        """
        if isinstance(queries, Mapping):
            items: List[Tuple[str, PatternQuery]] = list(queries.items())
        else:
            items = [(query.name, query) for query in queries]

        # Warm the matcher once so worker threads never race its construction.
        self.matcher(engine)
        hits_before, misses_before = self.stats.snapshot()

        def run_one(item: Tuple[str, PatternQuery]) -> QueryOutcome:
            name, query = item
            started = time.perf_counter()
            report = self.query(query, engine=engine, budget=budget, injective=injective)
            elapsed = time.perf_counter() - started
            return QueryOutcome(
                name=name,
                seconds=elapsed,
                num_matches=report.num_matches,
                status=report.status.value,
                occurrences=tuple(report.occurrences) if keep_occurrences else (),
                extra=dict(report.extra),
            )

        wall_start = time.perf_counter()
        if workers > 1 and len(items) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(run_one, items))
        else:
            outcomes = [run_one(item) for item in items]
        wall_seconds = time.perf_counter() - wall_start

        hits_after, misses_after = self.stats.snapshot()
        cache_hits = {
            key: hits_after[key] - hits_before.get(key, 0)
            for key in hits_after
            if hits_after[key] != hits_before.get(key, 0)
        }
        cache_misses = {
            key: misses_after[key] - misses_before.get(key, 0)
            for key in misses_after
            if misses_after[key] != misses_before.get(key, 0)
        }
        return BatchReport(
            engine=engine,
            outcomes=outcomes,
            wall_seconds=wall_seconds,
            workers=max(1, workers),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def cached_rig(self, query: PatternQuery, variant: GMVariant = GMVariant.GM) -> Optional[RIGBuildReport]:
        """The cached RIG build report for ``query`` at the current version."""
        cache = self._rig_caches.get((variant.value, self.version))
        if cache is None:
            return None
        return dict.get(cache, query)

    # ------------------------------------------------------------------ #
    # graph updates
    # ------------------------------------------------------------------ #

    def apply(self, delta: GraphDelta, materialize: bool = True) -> ApplyReport:
        """Apply a batched graph update and maintain every cached artifact.

        The session's graph advances to the post-delta state at a bumped
        :attr:`version`; each already-built artifact is either *patched* in
        place (cheap, for insertion-only deltas within the
        :func:`repro.dynamic.should_patch` heuristic) or *invalidated* (it
        rebuilds lazily on next use, exactly like a first-time build).
        Per-query state — RIG caches and matcher instances — is always
        stranded by the version bump.  Outcomes are recorded per artifact
        in ``stats`` (``patches`` / ``invalidations``) and summarised in the
        returned :class:`~repro.dynamic.ApplyReport`.

        ``materialize=False`` keeps the post-delta state as a
        :class:`~repro.dynamic.MutableDataGraph` overlay instead of
        freezing a fresh :class:`~repro.graph.digraph.DataGraph` — cheaper
        for very large graphs under tiny deltas, at the cost of slightly
        slower reads on the mutated nodes.  Successive overlay-mode applies
        never stack: the previous overlay is compacted before the next one
        is layered, so reads always pay at most one delegation level.

        A delta whose every operation turns out to be a no-op (edges that
        already exist, relabels to the current label) changes nothing: the
        graph, version, artifacts and counters are all left untouched.
        """
        started = time.perf_counter()
        with self._lock:
            if self._frozen:
                raise StoreError(
                    "session is a frozen store epoch "
                    f"(graph {self.graph.name!r} version {self.version}); "
                    "apply deltas through the owning VersionedGraphStore"
                )
            old_version = self.version
            current = self.graph
            if isinstance(current, MutableDataGraph):
                # Compact a previous overlay-mode apply so overlays never
                # chain (each level would tax every subsequent read).
                current = current.materialize()
            overlay = MutableDataGraph(current, delta)
            effective = overlay.delta_since_base()
            if not effective:
                return ApplyReport(
                    old_version=old_version,
                    new_version=old_version,
                    num_ops=0,
                    seconds=time.perf_counter() - started,
                )
            new_graph = overlay.materialize() if materialize else overlay
            patched: List[str] = []
            invalidated: List[str] = []

            def note_patch(key: str) -> None:
                self.stats.record_patch(key)
                patched.append(key)
                self._artifact_versions[key] = getattr(new_graph, "version", 0)

            def note_invalidate(key: str) -> None:
                self.stats.record_invalidation(key)
                invalidated.append(key)
                self._artifact_versions.pop(key, None)

            patchable = should_patch(self.graph, effective)

            # Reachability index (and the closure, when they are one object).
            # ``patched_closure`` is the in-place-patched closure index, if
            # any: the closure-expanded graph can then be patched with
            # exactly the reachable pairs that closure patch added.
            patched_closure = None
            context_index = (
                self._context.reachability if self._context is not None else None
            )
            shared_closure = (
                self._closure is not None and self._closure is context_index
            )
            if context_index is not None:
                if patchable and context_index.apply_delta(new_graph, effective):
                    self._context = MatchContext(
                        new_graph, reachability=context_index
                    )
                    note_patch("reachability")
                    if shared_closure:
                        note_patch("closure")
                        patched_closure = context_index
                else:
                    self._context = None
                    note_invalidate("reachability")
                    if shared_closure:
                        self._closure = None
                        note_invalidate("closure")
            if self._closure is not None and not shared_closure:
                if patchable and self._closure.apply_delta(new_graph, effective):
                    note_patch("closure")
                    patched_closure = self._closure
                else:
                    self._closure = None
                    note_invalidate("closure")

            # Closure-derived artifacts: patchable for insert-only deltas.
            if self._expanded_graph is not None:
                new_expanded = None
                additions = getattr(patched_closure, "last_patch_additions", None)
                if additions is not None:
                    new_expanded = patch_expanded_graph(
                        self._expanded_graph, new_graph, effective, additions()
                    )
                if new_expanded is not None:
                    self._expanded_graph = new_expanded
                    note_patch("expanded_graph")
                else:
                    self._expanded_graph = None
                    note_invalidate("expanded_graph")
            if self._catalog is not None:
                if patchable and patch_catalog(self._catalog, current, effective):
                    note_patch("catalog")
                else:
                    self._catalog = None
                    note_invalidate("catalog")

            # Delta-refreshable artifacts.
            if self._partitions is not None:
                if patch_partitions(self._partitions, new_graph, effective):
                    note_patch("partitions")
                else:
                    self._partitions = None
                    note_invalidate("partitions")
            if self._label_bitmaps is not None:
                patch_label_bitmaps(self._label_bitmaps, new_graph, effective)
                note_patch("bitmaps")
            if self._universe is not None:
                patch_universe(self._universe, effective)
                note_patch("universe")

            # Per-query state: stranded by the version bump.
            new_version = getattr(new_graph, "version", 0)
            if any(self._rig_caches.values()):
                note_invalidate("rig")
            self._rig_caches = {
                key: cache
                for key, cache in self._rig_caches.items()
                if key[1] == new_version
            }
            if self._matchers:
                note_invalidate("matcher")
            self._matchers.clear()

            self.graph = new_graph
            return ApplyReport(
                old_version=old_version,
                new_version=self.version,
                num_ops=len(effective),
                seconds=time.perf_counter() - started,
                patched=patched,
                invalidated=invalidated,
            )

    def freeze(self) -> None:
        """Mark this session as an immutable store epoch.

        A frozen session keeps serving reads (queries, batches) but
        :meth:`apply` raises :class:`~repro.exceptions.StoreError`: graph
        updates must flow through the owning
        :class:`~repro.store.VersionedGraphStore`, which forks a fresh
        session per version instead of mutating a shared one.
        """
        with self._lock:
            self._frozen = True

    @property
    def frozen(self) -> bool:
        """True if this session is an immutable store epoch."""
        return self._frozen

    def fork(self, copy_rig_caches: bool = True) -> "QuerySession":
        """A copy-on-write clone whose artifacts can be patched independently.

        The clone serves the same graph at the same version, but every
        cached artifact that in-place patching could mutate — reachability
        index, transitive closure, catalog, partitions, bitmaps — is
        copied, so ``clone.apply(delta)`` never changes an answer this
        session returns.  Immutable artifacts (the closure-expanded
        :class:`DataGraph`) are shared.  RIG caches are carried over (their
        entries are immutable per (variant, query, version)) unless
        ``copy_rig_caches=False`` — the right choice when the clone is
        about to absorb a delta, which strands every old-version RIG
        anyway.  Matcher instances are never carried (they are cheap and
        rebind to the clone's artifacts on first use).  The clone starts
        with fresh :class:`CacheStats` and is never frozen, regardless of
        this session's frozen state.

        This is the copy-on-write primitive behind
        :meth:`VersionedGraphStore.apply`: fork the head epoch, fold the
        delta into the fork with the existing patch-or-rebuild machinery,
        publish the fork as the new head — readers pinned to the old epoch
        never observe a torn artifact.
        """
        with self._lock:
            clone = QuerySession(
                self.graph,
                reachability_kind=self.reachability_kind,
                ordering=self.ordering,
                rig_options=self.rig_options,
                budget=self.budget,
            )
            if self._context is not None:
                index = self._context.reachability.copy()
                clone._context = MatchContext(self.graph, reachability=index)
                if self._closure is self._context.reachability:
                    clone._closure = index
            if self._closure is not None and clone._closure is None:
                clone._closure = self._closure.copy()
            clone._expanded_graph = self._expanded_graph
            if self._catalog is not None:
                clone._catalog = self._catalog.copy()
            if self._partitions is not None:
                clone._partitions = {
                    key: list(edges) for key, edges in self._partitions.items()
                }
            if self._label_bitmaps is not None:
                clone._label_bitmaps = {
                    label: bitmap.copy()
                    for label, bitmap in self._label_bitmaps.items()
                }
            if self._universe is not None:
                clone._universe = self._universe.copy()
            clone._artifact_versions = dict(self._artifact_versions)
            clone.bind_telemetry(self.telemetry)
            if copy_rig_caches:
                for key, cache in self._rig_caches.items():
                    fresh = _ObservedRigCache(clone.stats)
                    dict.update(fresh, cache)
                    clone._rig_caches[key] = fresh
            return clone

    def clear(self) -> None:
        """Drop every cached artifact and reset all cache counters.

        After ``clear()`` the session behaves like a freshly constructed
        one: the next query rebuilds each artifact (recorded as misses) and
        hit/miss/invalidation/patch counters restart from zero, so
        hit-rate arithmetic over ``stats`` stays truthful across reuse.
        """
        with self._lock:
            self._context = None
            self._closure = None
            self._expanded_graph = None
            self._catalog = None
            self._partitions = None
            self._label_bitmaps = None
            self._universe = None
            self._rig_caches.clear()
            self._matchers.clear()
            self._artifact_versions.clear()
            self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuerySession(graph={self.graph.name!r}, "
            f"reachability={self.reachability_kind!r}, "
            f"matchers={sorted(self._matchers)})"
        )
