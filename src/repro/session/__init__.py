"""Cached-index batch query execution: the :class:`QuerySession` façade.

Why a session?
--------------
The paper's central argument is economic: a Runtime-Index-Graph matcher wins
because the expensive per-*graph* artifacts — the BFL reachability index,
the transitive closure, inverted label lists and bitmaps — are built once
and amortised over many queries, while per-*query* work (simulation, RIG,
enumeration) stays small.  The standalone entry points
(:class:`repro.GraphMatcher`, the ``repro.engines`` classes) rebuild those
artifacts on every construction; a :class:`QuerySession` owns them instead.

Cache lifecycle
---------------
* A session follows **one evolving data graph**: it starts bound to the
  graph it was constructed with, and graph updates flow in through
  :meth:`QuerySession.apply` as batched
  :class:`~repro.dynamic.GraphDelta` edits.  Each ``apply`` bumps the
  graph's monotone version and maintains every cached artifact — patched
  in place when the delta shape allows (insertion-only, within the
  :func:`repro.dynamic.should_patch` heuristic), invalidated for lazy
  rebuild otherwise.  Per-query state (RIG caches, matcher instances) is
  keyed by version and always stranded by the bump.
* Every artifact is built **lazily on first use**: the reachability index
  on the first query, the transitive closure and the closure-expanded
  graph only when a comparator engine meets its first descendant query,
  the GF catalog / EH partitions when those engines are first requested,
  and one RIG per distinct (GM variant, query, graph version).
* Builds, reuses and update outcomes are counted in ``session.stats``
  (misses = builds, hits = reuses, patches = in-place updates,
  invalidations = drops), so "the second identical query rebuilds
  nothing" and "a small insert delta rebuilds nothing expensive" are
  assertable properties, not hopes.
* ``session.clear()`` resets the session to its freshly constructed
  state: every cached artifact is dropped **and every stats counter is
  zeroed**, so hit-rate arithmetic stays truthful when a session object
  is reused.  (Before this contract, counters survived ``clear()`` and
  post-clear hit rates lied.)

One session = one epoch
-----------------------
Under concurrency a session is exactly **one epoch** of a
:class:`~repro.store.VersionedGraphStore`: the store keeps one (frozen)
session per published graph version and never mutates any of them.  Two
methods implement that contract: :meth:`QuerySession.fork` produces a
copy-on-write clone whose artifacts can be patched without aliasing the
original (the store's write path), and :meth:`QuerySession.freeze` makes
in-place :meth:`~QuerySession.apply` raise so updates cannot bypass the
store.  A standalone (unfrozen) session still supports in-place ``apply``
for single-owner use.

When to prefer ``run_batch``
----------------------------
Use :meth:`QuerySession.query` for one-off, latency-sensitive calls.  Use
:meth:`QuerySession.run_batch` whenever you have a *workload*: it warms the
matcher once, optionally fans the queries out over a thread pool
(``workers=N``) while enforcing per-query :class:`~repro.matching.result.Budget`
limits, and returns a :class:`BatchReport` with latency percentiles,
solved/match counts, throughput and the cache-counter deltas for the batch —
the numbers a serving system actually monitors.

>>> session = QuerySession(graph)
>>> report = session.run_batch(queries, engine="GM", workers=4)
>>> report.p50, report.throughput_qps, report.cache_hits
>>> session.apply(delta)             # graph update: patch, don't rebuild
>>> session.run_batch(queries)       # served against the new version
"""

from repro.dynamic.maintenance import ApplyReport
from repro.session.batch import BatchReport, QueryOutcome, percentile
from repro.session.session import CacheStats, QuerySession

__all__ = [
    "ApplyReport",
    "BatchReport",
    "CacheStats",
    "QueryOutcome",
    "QuerySession",
    "percentile",
]
