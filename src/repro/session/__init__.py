"""Cached-index batch query execution: the :class:`QuerySession` façade.

Why a session?
--------------
The paper's central argument is economic: a Runtime-Index-Graph matcher wins
because the expensive per-*graph* artifacts — the BFL reachability index,
the transitive closure, inverted label lists and bitmaps — are built once
and amortised over many queries, while per-*query* work (simulation, RIG,
enumeration) stays small.  The standalone entry points
(:class:`repro.GraphMatcher`, the ``repro.engines`` classes) rebuild those
artifacts on every construction; a :class:`QuerySession` owns them instead.

Cache lifecycle
---------------
* A session is bound to **one data graph** for its whole life.  Construct a
  new session if the graph changes — cached artifacts are never invalidated
  in place (``session.clear()`` drops them all if you must reuse the
  object).
* Every artifact is built **lazily on first use** and kept forever: the
  reachability index on the first query, the transitive closure and the
  closure-expanded graph only when a comparator engine meets its first
  descendant query, the GF catalog / EH partitions when those engines are
  first requested, and one RIG per distinct (GM variant, query).
* Builds and reuses are counted in ``session.stats`` (misses = builds,
  hits = reuses), so "the second identical query rebuilds nothing" is an
  assertable property, not a hope.

When to prefer ``run_batch``
----------------------------
Use :meth:`QuerySession.query` for one-off, latency-sensitive calls.  Use
:meth:`QuerySession.run_batch` whenever you have a *workload*: it warms the
matcher once, optionally fans the queries out over a thread pool
(``workers=N``) while enforcing per-query :class:`~repro.matching.result.Budget`
limits, and returns a :class:`BatchReport` with latency percentiles,
solved/match counts, throughput and the cache-counter deltas for the batch —
the numbers a serving system actually monitors.

>>> session = QuerySession(graph)
>>> report = session.run_batch(queries, engine="GM", workers=4)
>>> report.p50, report.throughput_qps, report.cache_hits
"""

from repro.session.batch import BatchReport, QueryOutcome, percentile
from repro.session.session import CacheStats, QuerySession

__all__ = [
    "BatchReport",
    "CacheStats",
    "QueryOutcome",
    "QuerySession",
    "percentile",
]
