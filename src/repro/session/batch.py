"""Batch execution reporting: per-query outcomes and aggregate statistics.

A :class:`BatchReport` is what :meth:`repro.session.QuerySession.run_batch`
returns: one :class:`QueryOutcome` per query plus the aggregates a serving
system monitors — latency percentiles, solved counts, throughput and the
session cache's hit/miss counters over the batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.matching.result import MatchStatus
from repro.obs.quantiles import percentile  # noqa: F401  (canonical home; re-exported)


@dataclass
class QueryOutcome:
    """Result of one query inside a batch."""

    name: str
    seconds: float
    num_matches: int
    status: str
    occurrences: Tuple[Tuple[int, ...], ...] = ()
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def solved(self) -> bool:
        """True if the query counts as solved (ok or match-limit)."""
        return self.status in (MatchStatus.OK.value, MatchStatus.MATCH_LIMIT.value)

    def occurrence_set(self) -> frozenset:
        """The occurrences as a frozenset (for answer comparison)."""
        return frozenset(self.occurrences)


@dataclass
class BatchReport:
    """Aggregate outcome of one :meth:`QuerySession.run_batch` call."""

    engine: str
    outcomes: List[QueryOutcome]
    wall_seconds: float
    workers: int
    #: Cache hit/miss counters accumulated *during* this batch (deltas of the
    #: session's counters between batch start and end).
    cache_hits: Dict[str, int] = field(default_factory=dict)
    cache_misses: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # aggregates
    # ------------------------------------------------------------------ #

    @property
    def num_queries(self) -> int:
        """Number of queries executed."""
        return len(self.outcomes)

    @property
    def solved_count(self) -> int:
        """Number of solved queries."""
        return sum(1 for outcome in self.outcomes if outcome.solved)

    @property
    def total_matches(self) -> int:
        """Sum of match counts over the batch."""
        return sum(outcome.num_matches for outcome in self.outcomes)

    @property
    def total_query_seconds(self) -> float:
        """Sum of per-query latencies (>= wall time when workers > 1)."""
        return sum(outcome.seconds for outcome in self.outcomes)

    def latency_percentile(self, fraction: float) -> float:
        """Nearest-rank latency percentile over the batch."""
        return percentile([outcome.seconds for outcome in self.outcomes], fraction)

    @property
    def p50(self) -> float:
        """Median per-query latency."""
        return self.latency_percentile(0.50)

    @property
    def p90(self) -> float:
        """90th-percentile per-query latency."""
        return self.latency_percentile(0.90)

    @property
    def p99(self) -> float:
        """99th-percentile per-query latency."""
        return self.latency_percentile(0.99)

    @property
    def throughput_qps(self) -> float:
        """Queries per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.num_queries / self.wall_seconds

    @property
    def total_cache_hits(self) -> int:
        """Total cache hits recorded during the batch."""
        return sum(self.cache_hits.values())

    @property
    def total_cache_misses(self) -> int:
        """Total cache misses (artifact builds) recorded during the batch."""
        return sum(self.cache_misses.values())

    def outcome_for(self, name: str) -> Optional[QueryOutcome]:
        """The outcome of the query called ``name``, if present."""
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        return None

    def answers(self) -> Dict[str, frozenset]:
        """Mapping query name -> occurrence set (for cross-run comparison)."""
        return {outcome.name: outcome.occurrence_set() for outcome in self.outcomes}

    def summary(self) -> str:
        """Multi-line human-readable summary of the batch."""
        lines = [
            f"batch[{self.engine}]: {self.num_queries} queries, "
            f"{self.solved_count} solved, {self.total_matches} matches",
            f"  wall {self.wall_seconds:.4f}s ({self.throughput_qps:.1f} q/s, "
            f"{self.workers} worker{'s' if self.workers != 1 else ''})",
            f"  latency p50 {self.p50 * 1000:.2f}ms  p90 {self.p90 * 1000:.2f}ms  "
            f"p99 {self.p99 * 1000:.2f}ms",
            f"  cache: {self.total_cache_hits} hits / {self.total_cache_misses} builds",
        ]
        return "\n".join(lines)
