"""MJoin: multiway-intersection occurrence enumeration (Algorithm 5).

Given a runtime index graph, MJoin enumerates the query's occurrences by a
backtracking search that matches one query node per step.  At step ``i`` the
local candidate set of the current query node is obtained by intersecting
its RIG candidate set with the RIG adjacency lists of every already-matched
neighbour — a node-at-a-time (worst-case-optimal-style) multiway join that
never materialises intermediate relations.

The enumerator supports the paper's match cap and wall-clock budget, and an
``injective`` flag that adds the one-to-one constraint of subgraph
isomorphism (the extension the paper calls "promising" in §7.2).
"""

from __future__ import annotations

import time
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import TimeoutExceeded
from repro.matching.ordering import OrderingMethod, search_order
from repro.matching.result import Budget, BudgetClock
from repro.rig.graph import RuntimeIndexGraph


def _local_candidates(
    rig: RuntimeIndexGraph,
    order: Sequence[int],
    assignment: List[Optional[int]],
    position: int,
    counters: Optional[List[int]] = None,
) -> List[int]:
    """Compute ``cos_i`` for the query node at ``order[position]``.

    Intersects the node's RIG candidate set with the adjacency lists of the
    already-matched neighbours, smallest operand first.  ``counters`` is an
    optional two-slot accumulator ``[candidates_scanned, intersections]``
    the enumerator threads through to count work without touching shared
    state on the hot path.
    """
    query = rig.query
    current = order[position]
    operands = []
    for earlier_position in range(position):
        previous = order[earlier_position]
        value = assignment[earlier_position]
        if query.has_edge(current, previous):
            operands.append(rig.backward_adjacency(current, previous, value))
        if query.has_edge(previous, current):
            operands.append(rig.forward_adjacency(previous, current, value))
    base = rig.candidates(current)
    if not operands:
        if counters is not None:
            counters[0] += len(base)
        return list(base)
    operands.sort(key=len)  # type: ignore[arg-type]
    result = None
    for operand in operands:
        if result is None:
            result = set(operand)
        else:
            result &= set(operand) if not isinstance(operand, (set, frozenset)) else operand
        if not result:
            if counters is not None:
                counters[1] += len(operands)
            return []
    # Finally restrict to the candidate set (cheap when result is small).
    if counters is not None:
        counters[1] += len(operands)
    if isinstance(base, (set, frozenset)):
        local = [value for value in result if value in base]
    else:
        local = [value for value in result if value in base]
    if counters is not None:
        counters[0] += len(local)
    return local


def mjoin_iter(
    rig: RuntimeIndexGraph,
    order: Optional[Sequence[int]] = None,
    budget: Optional[Budget] = None,
    injective: bool = False,
    stats: Optional[dict] = None,
    step_stats: Optional[List[dict]] = None,
) -> Iterator[Tuple[int, ...]]:
    """Lazily enumerate occurrences from ``rig``.

    Yields tuples indexed by *query node id* (not search-order position), so
    the tuple layout is stable across orderings.  Raises
    :class:`TimeoutExceeded` if the budget's time limit is hit; the match cap
    is handled by the caller simply stopping iteration.

    ``stats`` (a mutable mapping) receives the enumeration's work counters
    — ``candidates`` (local candidate vertices produced across all search
    positions) and ``intersections`` (multiway set intersections performed)
    — accumulated in plain local integers and flushed once when the
    generator finishes or is closed, so instrumentation adds no per-step
    synchronisation to the inner loop.

    ``step_stats`` (a mutable list, EXPLAIN ANALYZE only) additionally
    receives one dict per search-order position — ``{"node", "candidates",
    "intersections", "rows"}`` where ``rows`` counts the partial assignments
    accepted at that position (at the last position: occurrences yielded).
    Per-position counters live in plain local lists and are flushed in the
    same ``finally`` block, so the extra cost is one list increment per
    accepted candidate.
    """
    query = rig.query
    if rig.is_empty():
        if stats is not None:
            stats["candidates"] = stats.get("candidates", 0)
            stats["intersections"] = stats.get("intersections", 0)
        return
    if order is None:
        order = search_order(query, rig, OrderingMethod.JO)
    order = list(order)
    n = query.num_nodes
    clock = budget.start_clock() if budget is not None else None

    counters: List[int] = [0, 0]  # [candidates scanned, intersections]
    # EXPLAIN ANALYZE: per-position [candidates, intersections, rows] slots
    # (``_local_candidates`` only ever touches slots 0 and 1).
    per_position: Optional[List[List[int]]] = None
    if step_stats is not None:
        per_position = [[0, 0, 0] for _ in range(n)]
    assignment: List[Optional[int]] = [None] * n
    used: set = set()
    try:
        # Iterative backtracking: stack of candidate iterators per position.
        iterators: List[Iterator[int]] = [
            iter(
                _local_candidates(
                    rig, order, assignment, 0,
                    counters if per_position is None else per_position[0],
                )
            )
        ]
        position = 0
        while position >= 0:
            if clock is not None:
                clock.check_time()
            try:
                candidate = next(iterators[position])
            except StopIteration:
                position -= 1
                if position >= 0 and assignment[position] is not None and injective:
                    used.discard(assignment[position])
                if position >= 0:
                    assignment[position] = None
                iterators.pop()
                continue
            if injective and candidate in used:
                continue
            assignment[position] = candidate
            if per_position is not None:
                per_position[position][2] += 1
            if injective:
                used.add(candidate)
            if position + 1 == n:
                occurrence = [0] * n
                for index, query_node in enumerate(order):
                    occurrence[query_node] = assignment[index]  # type: ignore[assignment]
                yield tuple(occurrence)
                if injective:
                    used.discard(candidate)
                assignment[position] = None
                continue
            position += 1
            iterators.append(
                iter(
                    _local_candidates(
                        rig, order, assignment, position,
                        counters if per_position is None else per_position[position],
                    )
                )
            )
    finally:
        if per_position is not None:
            for slots in per_position:
                counters[0] += slots[0]
                counters[1] += slots[1]
            if step_stats is not None:
                del step_stats[:]
                step_stats.extend(
                    {
                        "node": order[index],
                        "candidates": slots[0],
                        "intersections": slots[1],
                        "rows": slots[2],
                    }
                    for index, slots in enumerate(per_position)
                )
        if stats is not None:
            stats["candidates"] = stats.get("candidates", 0) + counters[0]
            stats["intersections"] = stats.get("intersections", 0) + counters[1]


def mjoin(
    rig: RuntimeIndexGraph,
    order: Optional[Sequence[int]] = None,
    budget: Optional[Budget] = None,
    injective: bool = False,
) -> Tuple[List[Tuple[int, ...]], bool, float]:
    """Enumerate occurrences eagerly.

    Returns ``(occurrences, hit_match_limit, elapsed_seconds)``.  A
    :class:`TimeoutExceeded` exception propagates to the caller (GM converts
    it into a timed-out :class:`MatchReport`).
    """
    start = time.perf_counter()
    occurrences: List[Tuple[int, ...]] = []
    hit_limit = False
    clock = budget.start_clock() if budget is not None else None
    for occurrence in mjoin_iter(rig, order=order, budget=budget, injective=injective):
        occurrences.append(occurrence)
        if clock is not None and clock.check_matches(len(occurrences)):
            hit_limit = True
            break
    return occurrences, hit_limit, time.perf_counter() - start


def count_matches(
    rig: RuntimeIndexGraph,
    order: Optional[Sequence[int]] = None,
    budget: Optional[Budget] = None,
) -> int:
    """Count occurrences without materialising them (subject to the budget)."""
    count = 0
    clock = budget.start_clock() if budget is not None else None
    for _ in mjoin_iter(rig, order=order, budget=budget):
        count += 1
        if clock is not None and clock.check_matches(count):
            break
    return count
