"""Search-order selection for occurrence enumeration (§5.2).

Three strategies, matching the paper's experimental comparison (Table 4):

* ``JO`` — greedy, RIG-statistics-driven: start from the query node with the
  smallest candidate occurrence set, then repeatedly append the adjacent
  query node with the smallest candidate set (connectivity enforced to avoid
  Cartesian products).
* ``RI`` — purely topological (Bonnici et al.): prefer nodes with the most
  edges to already-ordered nodes, breaking ties by edges to unordered
  neighbours of ordered nodes, then by degree; independent of the data.
* ``BJ`` — dynamic programming over left-deep plans, minimising an estimated
  intermediate-result cost derived from RIG candidate-set and edge
  cardinalities.  Exponential in the number of query nodes, so it refuses
  queries beyond a node limit (the paper observes it "does not scale to
  large queries with tens of nodes").
"""

from __future__ import annotations

from enum import Enum
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import MatchingError
from repro.query.pattern import PatternQuery
from repro.rig.graph import RuntimeIndexGraph


class OrderingMethod(Enum):
    """Available search-order strategies."""

    JO = "jo"
    RI = "ri"
    BJ = "bj"


def _connected_prefix_check(query: PatternQuery, order: Sequence[int]) -> bool:
    """True if every prefix of ``order`` induces a connected subquery."""
    placed = set()
    for index, node in enumerate(order):
        if index and not any(neighbor in placed for neighbor in query.neighbors(node)):
            return False
        placed.add(node)
    return True


# ---------------------------------------------------------------------- #
# JO — greedy cardinality-based ordering
# ---------------------------------------------------------------------- #


def jo_order(query: PatternQuery, rig: RuntimeIndexGraph) -> List[int]:
    """Greedy join ordering driven by RIG candidate-set cardinalities."""
    remaining = set(query.nodes())
    sizes = {node: rig.candidate_count(node) for node in query.nodes()}
    start = min(remaining, key=lambda node: (sizes[node], node))
    order = [start]
    remaining.discard(start)
    while remaining:
        frontier = [
            node
            for node in remaining
            if any(neighbor in order for neighbor in query.neighbors(node))
        ]
        if not frontier:
            # Disconnected query (should not happen for paper queries); fall
            # back to the globally smallest remaining node.
            frontier = list(remaining)
        chosen = min(frontier, key=lambda node: (sizes[node], node))
        order.append(chosen)
        remaining.discard(chosen)
    return order


# ---------------------------------------------------------------------- #
# RI — topology-only ordering
# ---------------------------------------------------------------------- #


def ri_order(query: PatternQuery) -> List[int]:
    """RI ordering: maximise constraints introduced early, data-independent."""
    remaining = set(query.nodes())
    start = max(remaining, key=lambda node: (query.degree(node), -node))
    order = [start]
    ordered = {start}
    remaining.discard(start)
    while remaining:
        def score(node: int) -> Tuple[int, int, int, int]:
            neighbors = set(query.neighbors(node))
            # Edges to already-ordered nodes (the constraints this node adds).
            to_ordered = len(neighbors & ordered)
            # Neighbours of ordered nodes that are also neighbours of node
            # (RI's second criterion: "lookahead" connectivity).
            ordered_frontier = {
                other
                for placed in ordered
                for other in query.neighbors(placed)
                if other not in ordered
            }
            lookahead = len(neighbors & ordered_frontier)
            return (to_ordered, lookahead, query.degree(node), -node)

        candidates = [node for node in remaining if set(query.neighbors(node)) & ordered]
        if not candidates:
            candidates = list(remaining)
        chosen = max(candidates, key=score)
        order.append(chosen)
        ordered.add(chosen)
        remaining.discard(chosen)
    return order


# ---------------------------------------------------------------------- #
# BJ — dynamic programming over left-deep plans
# ---------------------------------------------------------------------- #


def _edge_selectivity(rig: RuntimeIndexGraph, source: int, target: int) -> float:
    """Estimated fraction of candidate pairs connected under a query edge."""
    tail = rig.candidate_count(source)
    head = rig.candidate_count(target)
    if tail == 0 or head == 0:
        return 0.0
    return rig.edge_candidate_count(source, target) / float(tail * head)


def bj_order(
    query: PatternQuery, rig: RuntimeIndexGraph, max_nodes: int = 18
) -> List[int]:
    """Optimal left-deep ordering by subset dynamic programming.

    The cost of an order is the estimated total number of intermediate
    tuples produced when extending the partial match node by node, using
    independence-assumption selectivity estimates from the RIG.  Raises
    :class:`MatchingError` for queries with more than ``max_nodes`` nodes
    (the DP enumerates all subsets).
    """
    n = query.num_nodes
    if n > max_nodes:
        raise MatchingError(
            f"BJ ordering is limited to {max_nodes} query nodes (query has {n})"
        )
    sizes = {node: float(max(rig.candidate_count(node), 1)) for node in query.nodes()}
    selectivity: Dict[Tuple[int, int], float] = {}
    for edge in query.edges():
        selectivity[edge.endpoints()] = max(_edge_selectivity(rig, *edge.endpoints()), 1e-9)

    def extension_cardinality(prefix_cardinality: float, prefix: frozenset, node: int) -> float:
        estimate = prefix_cardinality * sizes[node]
        for other in prefix:
            if query.has_edge(node, other):
                estimate *= selectivity[(node, other)]
            if query.has_edge(other, node):
                estimate *= selectivity[(other, node)]
        return estimate

    # DP state: frozenset of placed nodes -> (total cost, result cardinality, order)
    best: Dict[frozenset, Tuple[float, float, Tuple[int, ...]]] = {}
    for node in query.nodes():
        state = frozenset((node,))
        best[state] = (sizes[node], sizes[node], (node,))

    for size in range(1, n):
        current_states = [state for state in best if len(state) == size]
        for state in current_states:
            cost, cardinality, order = best[state]
            for node in query.nodes():
                if node in state:
                    continue
                # Enforce connectivity except when nothing is adjacent.
                adjacent = any(neighbor in state for neighbor in query.neighbors(node))
                if not adjacent and any(
                    any(neighbor in state for neighbor in query.neighbors(candidate))
                    for candidate in query.nodes()
                    if candidate not in state
                ):
                    continue
                new_cardinality = extension_cardinality(cardinality, state, node)
                new_cost = cost + new_cardinality
                new_state = state | {node}
                incumbent = best.get(new_state)
                if incumbent is None or new_cost < incumbent[0]:
                    best[new_state] = (new_cost, new_cardinality, order + (node,))

    full = frozenset(query.nodes())
    return list(best[full][2])


def search_order(
    query: PatternQuery,
    rig: RuntimeIndexGraph,
    method: OrderingMethod = OrderingMethod.JO,
) -> List[int]:
    """Compute a search order with the requested strategy."""
    if method is OrderingMethod.JO:
        return jo_order(query, rig)
    if method is OrderingMethod.RI:
        return ri_order(query)
    if method is OrderingMethod.BJ:
        return bj_order(query, rig)
    raise MatchingError(f"unknown ordering method {method!r}")
