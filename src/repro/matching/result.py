"""Match results, budgets and outcome reporting.

The paper's experiments cap each query at 10^7 enumerated matches and a
10-minute wall-clock budget, and report join-based failures as out-of-memory
(intermediate-result explosion).  :class:`Budget` carries those three limits
(scaled-down defaults); :class:`MatchReport` records the outcome of one query
evaluation — matches found, phase timings, and how the evaluation ended.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.exceptions import MemoryBudgetExceeded, QueryCancelled, TimeoutExceeded


class MatchStatus(Enum):
    """How a query evaluation ended."""

    #: Completed: every occurrence (up to the match cap) was enumerated.
    OK = "ok"
    #: Stopped at the match cap (counted as solved, as in the paper).
    MATCH_LIMIT = "match_limit"
    #: Stopped by the wall-clock budget (the paper's "time out").
    TIMEOUT = "timeout"
    #: Stopped by the intermediate-result cap (the paper's "out of memory").
    OUT_OF_MEMORY = "out_of_memory"
    #: Cancelled cooperatively (service-side cancel / shed mid-evaluation).
    CANCELLED = "cancelled"

    def is_solved(self) -> bool:
        """True if the query is counted as solved in the paper's tables."""
        return self in (MatchStatus.OK, MatchStatus.MATCH_LIMIT)


@dataclass
class Budget:
    """Per-query evaluation limits."""

    #: Maximum number of occurrences to enumerate (None = unlimited).
    max_matches: Optional[int] = 100_000
    #: Wall-clock limit in seconds (None = unlimited).
    time_limit_seconds: Optional[float] = None
    #: Cap on intermediate-result tuples for join-based algorithms
    #: (None = unlimited); models the paper's out-of-memory failures.
    max_intermediate_results: Optional[int] = 2_000_000
    #: Cooperative cancellation flag (any object with ``is_set()``, e.g. a
    #: :class:`threading.Event`).  When set, the next budget-clock
    #: checkpoint inside a match loop raises
    #: :class:`~repro.exceptions.QueryCancelled`.  ``None`` disables the
    #: check.  Compared by identity only; excluded from equality.
    cancel_event: Optional[object] = field(default=None, compare=False)

    def start_clock(self) -> "BudgetClock":
        """Begin tracking this budget for one query evaluation."""
        return BudgetClock(self)

    def with_deadline(self, deadline: Optional[float]) -> "Budget":
        """A copy whose time limit is clamped to ``deadline - now``.

        ``deadline`` is an absolute :func:`time.monotonic` timestamp (the
        admission-control convention); ``None`` returns ``self`` unchanged.
        A deadline already in the past yields a zero time limit, so the
        first clock checkpoint times the query out immediately.
        """
        if deadline is None:
            return self
        remaining = max(0.0, deadline - time.monotonic())
        if self.time_limit_seconds is not None:
            remaining = min(remaining, self.time_limit_seconds)
        return replace(self, time_limit_seconds=remaining)

    def with_cancel_event(self, event: Optional[object]) -> "Budget":
        """A copy carrying ``event`` as its cooperative cancellation flag."""
        return replace(self, cancel_event=event)

    def to_wire(self) -> Dict[str, object]:
        """JSON-serialisable form of the three limits.

        The ``cancel_event`` is deliberately not carried: cancellation does
        not serialise — a wire server re-attaches its own event per request
        (the service's cancel hook), exactly as the in-process service does.
        """
        return {
            "max_matches": self.max_matches,
            "time_limit_seconds": self.time_limit_seconds,
            "max_intermediate_results": self.max_intermediate_results,
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "Budget":
        """Rebuild a budget from :meth:`to_wire` output (absent keys keep defaults)."""
        kwargs = {}
        for key in ("max_matches", "time_limit_seconds", "max_intermediate_results"):
            if key in payload:
                kwargs[key] = payload[key]
        return cls(**kwargs)


class BudgetClock:
    """Tracks one evaluation against a :class:`Budget`.

    The clock is checked from tight inner loops, so the time check is
    amortised: the wall clock is read only every ``check_interval`` calls.
    """

    __slots__ = ("budget", "_start", "_calls", "check_interval")

    def __init__(self, budget: Budget, check_interval: int = 2048) -> None:
        self.budget = budget
        self._start = time.perf_counter()
        self._calls = 0
        self.check_interval = check_interval

    @property
    def elapsed(self) -> float:
        """Seconds since the clock started."""
        return time.perf_counter() - self._start

    def check_time(self) -> None:
        """Raise on an exhausted time budget or a set cancellation flag.

        This is the single checkpoint every match loop already calls, so
        both the wall-clock deadline and cooperative cancellation ride the
        same amortised check: the wall clock (and the cancel event) is
        consulted only every ``check_interval`` calls.
        """
        limit = self.budget.time_limit_seconds
        event = self.budget.cancel_event
        if limit is None and event is None:
            return
        self._calls += 1
        if self._calls % self.check_interval:
            return
        if event is not None and event.is_set():
            raise QueryCancelled()
        if limit is not None and self.elapsed > limit:
            raise TimeoutExceeded(limit)

    def check_matches(self, count: int) -> bool:
        """Return True if the match cap has been reached."""
        limit = self.budget.max_matches
        return limit is not None and count >= limit

    def check_intermediate(self, count: int) -> None:
        """Raise :class:`MemoryBudgetExceeded` if the intermediate cap is hit."""
        limit = self.budget.max_intermediate_results
        if limit is not None and count > limit:
            raise MemoryBudgetExceeded(limit)


@dataclass
class MatchReport:
    """Outcome of evaluating one pattern query with one algorithm."""

    query_name: str
    algorithm: str
    status: MatchStatus
    occurrences: List[Tuple[int, ...]] = field(default_factory=list)
    num_matches: int = 0
    matching_seconds: float = 0.0
    enumeration_seconds: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total query time: matching (filtering + RIG + plan) + enumeration."""
        return self.matching_seconds + self.enumeration_seconds

    @property
    def solved(self) -> bool:
        """True if the evaluation is counted as solved."""
        return self.status.is_solved()

    def occurrence_set(self) -> frozenset:
        """The occurrences as a frozenset of tuples (for answer comparison)."""
        return frozenset(self.occurrences)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.algorithm} on {self.query_name}: {self.num_matches} matches, "
            f"{self.total_seconds:.4f}s ({self.status.value})"
        )

    # ------------------------------------------------------------------ #
    # wire encoding
    # ------------------------------------------------------------------ #

    def to_wire(self, include_occurrences: bool = True) -> Dict[str, object]:
        """JSON-serialisable form (the wire protocol's report payload).

        ``extra`` values that do not serialise to JSON (build reports,
        index objects) are replaced by their ``repr`` so the record stays
        informative without dragging object graphs across the wire.
        ``include_occurrences=False`` ships the counters only — the shape
        used after a streamed query whose pages already carried the
        occurrences.
        """
        return {
            "query_name": self.query_name,
            "algorithm": self.algorithm,
            "status": self.status.value,
            "occurrences": (
                [list(occurrence) for occurrence in self.occurrences]
                if include_occurrences
                else []
            ),
            "num_matches": self.num_matches,
            "matching_seconds": self.matching_seconds,
            "enumeration_seconds": self.enumeration_seconds,
            "extra": {key: jsonable(value) for key, value in self.extra.items()},
        }

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "MatchReport":
        """Rebuild a report from :meth:`to_wire` output."""
        return cls(
            query_name=str(payload.get("query_name", "query")),
            algorithm=str(payload.get("algorithm", "?")),
            status=MatchStatus(payload.get("status", MatchStatus.OK.value)),
            occurrences=[
                tuple(occurrence) for occurrence in payload.get("occurrences", ())
            ],
            num_matches=int(payload.get("num_matches", 0)),
            matching_seconds=float(payload.get("matching_seconds", 0.0)),
            enumeration_seconds=float(payload.get("enumeration_seconds", 0.0)),
            extra=dict(payload.get("extra", ())),
        )


def jsonable(value):
    """``value`` if it serialises to JSON as-is, else its ``repr``.

    The wire encoders use this on open-ended ``extra`` mappings, which may
    hold arbitrary objects in-process (RIG build reports, index handles).
    """
    import json

    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return repr(value)
    return value
