"""Match results, budgets and outcome reporting.

The paper's experiments cap each query at 10^7 enumerated matches and a
10-minute wall-clock budget, and report join-based failures as out-of-memory
(intermediate-result explosion).  :class:`Budget` carries those three limits
(scaled-down defaults); :class:`MatchReport` records the outcome of one query
evaluation — matches found, phase timings, and how the evaluation ended.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.exceptions import MemoryBudgetExceeded, QueryCancelled, TimeoutExceeded


class MatchStatus(Enum):
    """How a query evaluation ended."""

    #: Completed: every occurrence (up to the match cap) was enumerated.
    OK = "ok"
    #: Stopped at the match cap (counted as solved, as in the paper).
    MATCH_LIMIT = "match_limit"
    #: Stopped by the wall-clock budget (the paper's "time out").
    TIMEOUT = "timeout"
    #: Stopped by the intermediate-result cap (the paper's "out of memory").
    OUT_OF_MEMORY = "out_of_memory"
    #: Cancelled cooperatively (service-side cancel / shed mid-evaluation).
    CANCELLED = "cancelled"

    def is_solved(self) -> bool:
        """True if the query is counted as solved in the paper's tables."""
        return self in (MatchStatus.OK, MatchStatus.MATCH_LIMIT)


@dataclass
class Budget:
    """Per-query evaluation limits."""

    #: Maximum number of occurrences to enumerate (None = unlimited).
    max_matches: Optional[int] = 100_000
    #: Wall-clock limit in seconds (None = unlimited).
    time_limit_seconds: Optional[float] = None
    #: Cap on intermediate-result tuples for join-based algorithms
    #: (None = unlimited); models the paper's out-of-memory failures.
    max_intermediate_results: Optional[int] = 2_000_000
    #: Cooperative cancellation flag (any object with ``is_set()``, e.g. a
    #: :class:`threading.Event`).  When set, the next budget-clock
    #: checkpoint inside a match loop raises
    #: :class:`~repro.exceptions.QueryCancelled`.  ``None`` disables the
    #: check.  Compared by identity only; excluded from equality.
    cancel_event: Optional[object] = field(default=None, compare=False)

    def start_clock(self) -> "BudgetClock":
        """Begin tracking this budget for one query evaluation."""
        return BudgetClock(self)

    def with_deadline(self, deadline: Optional[float]) -> "Budget":
        """A copy whose time limit is clamped to ``deadline - now``.

        ``deadline`` is an absolute :func:`time.monotonic` timestamp (the
        admission-control convention); ``None`` returns ``self`` unchanged.
        A deadline already in the past yields a zero time limit, so the
        first clock checkpoint times the query out immediately.
        """
        if deadline is None:
            return self
        remaining = max(0.0, deadline - time.monotonic())
        if self.time_limit_seconds is not None:
            remaining = min(remaining, self.time_limit_seconds)
        return replace(self, time_limit_seconds=remaining)

    def with_cancel_event(self, event: Optional[object]) -> "Budget":
        """A copy carrying ``event`` as its cooperative cancellation flag."""
        return replace(self, cancel_event=event)


class BudgetClock:
    """Tracks one evaluation against a :class:`Budget`.

    The clock is checked from tight inner loops, so the time check is
    amortised: the wall clock is read only every ``check_interval`` calls.
    """

    __slots__ = ("budget", "_start", "_calls", "check_interval")

    def __init__(self, budget: Budget, check_interval: int = 2048) -> None:
        self.budget = budget
        self._start = time.perf_counter()
        self._calls = 0
        self.check_interval = check_interval

    @property
    def elapsed(self) -> float:
        """Seconds since the clock started."""
        return time.perf_counter() - self._start

    def check_time(self) -> None:
        """Raise on an exhausted time budget or a set cancellation flag.

        This is the single checkpoint every match loop already calls, so
        both the wall-clock deadline and cooperative cancellation ride the
        same amortised check: the wall clock (and the cancel event) is
        consulted only every ``check_interval`` calls.
        """
        limit = self.budget.time_limit_seconds
        event = self.budget.cancel_event
        if limit is None and event is None:
            return
        self._calls += 1
        if self._calls % self.check_interval:
            return
        if event is not None and event.is_set():
            raise QueryCancelled()
        if limit is not None and self.elapsed > limit:
            raise TimeoutExceeded(limit)

    def check_matches(self, count: int) -> bool:
        """Return True if the match cap has been reached."""
        limit = self.budget.max_matches
        return limit is not None and count >= limit

    def check_intermediate(self, count: int) -> None:
        """Raise :class:`MemoryBudgetExceeded` if the intermediate cap is hit."""
        limit = self.budget.max_intermediate_results
        if limit is not None and count > limit:
            raise MemoryBudgetExceeded(limit)


@dataclass
class MatchReport:
    """Outcome of evaluating one pattern query with one algorithm."""

    query_name: str
    algorithm: str
    status: MatchStatus
    occurrences: List[Tuple[int, ...]] = field(default_factory=list)
    num_matches: int = 0
    matching_seconds: float = 0.0
    enumeration_seconds: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Total query time: matching (filtering + RIG + plan) + enumeration."""
        return self.matching_seconds + self.enumeration_seconds

    @property
    def solved(self) -> bool:
        """True if the evaluation is counted as solved."""
        return self.status.is_solved()

    def occurrence_set(self) -> frozenset:
        """The occurrences as a frozenset of tuples (for answer comparison)."""
        return frozenset(self.occurrences)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.algorithm} on {self.query_name}: {self.num_matches} matches, "
            f"{self.total_seconds:.4f}s ({self.status.value})"
        )
