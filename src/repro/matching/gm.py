"""GM: the end-to-end RIG-based graph pattern matcher and its ablations.

:class:`GraphMatcher` wires together the full pipeline of the paper:

1. query transitive reduction (§3) — skipped by the GM-NR variant;
2. node selection — node pre-filter + double simulation (GM), double
   simulation only (GM-S), pre-filter only (GM-F);
3. RIG construction (BuildRIG, §4.5);
4. search-order selection (JO / RI / BJ, §5.2);
5. MJoin occurrence enumeration (§5.1).

``match`` returns a :class:`MatchReport` with the matching time (steps 1–4)
and the enumeration time (step 5) separated, which is how the paper reports
query time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from enum import Enum
from typing import Iterator, MutableMapping, Optional, Sequence, Tuple

from repro.explain.plan import PlanOperator, QueryPlan, plan_digest
from repro.graph.digraph import DataGraph
from repro.matching.mjoin import mjoin_iter
from repro.matching.ordering import OrderingMethod, search_order
from repro.matching.result import Budget, MatchReport
from repro.matching.stream import MatchStream
from repro.query.pattern import PatternQuery
from repro.reachability.base import ReachabilityIndex
from repro.rig.build import RIGBuildReport, RIGOptions, build_rig
from repro.simulation.context import MatchContext


class GMVariant(Enum):
    """The GM ablations used throughout the paper's experiments."""

    #: Full pipeline: pre-filter + double simulation + transitive reduction.
    GM = "GM"
    #: No node pre-filtering before double simulation.
    GM_S = "GM-S"
    #: Node pre-filtering only (no double simulation).
    GM_F = "GM-F"
    #: No query transitive reduction.
    GM_NR = "GM-NR"


def _options_for_variant(variant: GMVariant, base: RIGOptions) -> RIGOptions:
    if variant is GMVariant.GM:
        return replace(base, filter_mode="double_sim", prefilter=True, transitive_reduction=True)
    if variant is GMVariant.GM_S:
        return replace(base, filter_mode="double_sim", prefilter=False, transitive_reduction=True)
    if variant is GMVariant.GM_F:
        return replace(base, filter_mode="prefilter", transitive_reduction=True)
    if variant is GMVariant.GM_NR:
        return replace(base, filter_mode="double_sim", prefilter=True, transitive_reduction=False)
    raise ValueError(f"unknown GM variant {variant!r}")


class GraphMatcher:
    """Evaluate hybrid pattern queries on a data graph with the GM pipeline.

    Parameters
    ----------
    graph:
        The data graph.
    reachability_kind:
        Reachability index to build if ``context`` is not given
        (default ``"bfl"``, as in the paper).
    context:
        An existing :class:`MatchContext` to reuse (shares the reachability
        index across many queries, as the benchmarks do).
    variant:
        Which GM ablation to run (default the full GM pipeline).
    ordering:
        Search-order strategy for the enumeration phase (default JO).
    rig_options:
        Overrides for BuildRIG (set representation, child-check method,
        simulation tuning, ...).
    budget:
        Default per-query limits; ``match`` accepts a per-call override.
    rig_cache:
        Optional mutable mapping ``PatternQuery -> RIGBuildReport``.  When
        given, ``match`` reuses the cached RIG of a previously seen query
        instead of rebuilding it (MJoin only reads the RIG, so reuse is
        safe), and records new builds into the mapping.  A
        :class:`~repro.session.QuerySession` passes its own cache here to
        share RIGs across queries and report hit/miss statistics.
    """

    def __init__(
        self,
        graph: DataGraph,
        reachability_kind: str = "bfl",
        context: Optional[MatchContext] = None,
        variant: GMVariant = GMVariant.GM,
        ordering: OrderingMethod = OrderingMethod.JO,
        rig_options: Optional[RIGOptions] = None,
        budget: Optional[Budget] = None,
        rig_cache: Optional[MutableMapping[PatternQuery, RIGBuildReport]] = None,
    ) -> None:
        self.graph = graph
        self.context = context or MatchContext(graph, reachability_kind=reachability_kind)
        self.variant = variant
        self.ordering = ordering
        self.rig_options = _options_for_variant(variant, rig_options or RIGOptions())
        self.budget = budget or Budget()
        self.rig_cache = rig_cache

    @property
    def reachability(self) -> ReachabilityIndex:
        """The reachability index in use."""
        return self.context.reachability

    def algorithm_name(self) -> str:
        """Name used in reports (variant plus non-default ordering)."""
        if self.ordering is OrderingMethod.JO:
            return self.variant.value
        return f"{self.variant.value}-{self.ordering.value.upper()}"

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def build_rig(self, query: PatternQuery) -> RIGBuildReport:
        """Run only the summarization phase (useful for the Fig. 13 ablation)."""
        return build_rig(self.context, query, self.rig_options)

    def _rig_for(self, query: PatternQuery) -> tuple[RIGBuildReport, bool]:
        """Fetch the query's RIG from the cache, building (and storing) on miss."""
        if self.rig_cache is not None:
            cached = self.rig_cache.get(query)
            if cached is not None:
                return cached, True
        report = build_rig(self.context, query, self.rig_options)
        if self.rig_cache is not None:
            self.rig_cache[query] = report
        return report, False

    def iter_matches(
        self,
        query: PatternQuery,
        budget: Optional[Budget] = None,
        order: Optional[Sequence[int]] = None,
        injective: bool = False,
        _info: Optional[dict] = None,
        step_stats: Optional[list] = None,
    ) -> Iterator[Tuple[int, ...]]:
        """Lazily enumerate occurrences of ``query`` (the streaming primitive).

        A generator over the full GM pipeline: the matching phase (steps
        1–4: reduction, filtering, RIG, search order) runs on the first
        ``next()``, then occurrences stream straight out of the MJoin
        backtracking search — each one yielded the moment its embedding
        completes, with the budget clock's time / cancellation checks in
        the yield loop.  Stops at ``budget.max_matches``; raises
        :class:`~repro.exceptions.TimeoutExceeded` /
        :class:`~repro.exceptions.QueryCancelled` on budget exhaustion;
        closing the generator abandons the search mid-backtrack.

        ``_info`` is the mutable channel to :meth:`match_stream`: the
        matching-phase timing and RIG statistics are recorded there once
        the pipeline reaches enumeration.
        """
        budget = budget or self.budget
        start = time.perf_counter()
        report, rig_cached = self._rig_for(query)
        rig = report.rig
        if rig.is_empty():
            if _info is not None:
                _info["matching_seconds"] = time.perf_counter() - start
                _info["extra"] = {
                    "rig_size": rig.size(),
                    "empty_rig": True,
                    "rig_cached": rig_cached,
                }
            return
        chosen_order = list(order) if order is not None else search_order(
            report.query, rig, self.ordering
        )
        # Shared with the enumerator: mjoin_iter flushes its candidate /
        # intersection work counters into this dict when it finishes (or is
        # closed), and because MatchStream reads ``extra`` at report time
        # the late flush is visible in the final MatchReport.
        mjoin_stats: dict = {}
        if _info is not None:
            _info["matching_seconds"] = time.perf_counter() - start
            _info["extra"] = {
                "rig_size": rig.size(),
                "rig_nodes": rig.num_rig_nodes(),
                "rig_edges": rig.num_rig_edges(),
                "search_order": chosen_order,
                "simulation_passes": report.simulation.passes if report.simulation else 0,
                "rig_cached": rig_cached,
                "mjoin": mjoin_stats,
                # Joins this execution to its EXPLAIN output: the slow-query
                # log copies the digest, and GraphMatcher.explain() on the
                # same query/ordering produces the same value.
                "plan_digest": plan_digest(
                    self.algorithm_name(), self.ordering.value, chosen_order
                ),
            }
        clock = budget.start_clock()
        count = 0
        for occurrence in mjoin_iter(
            rig,
            order=chosen_order,
            budget=budget,
            injective=injective,
            stats=mjoin_stats if _info is not None else None,
            step_stats=step_stats,
        ):
            yield occurrence
            count += 1
            if clock.check_matches(count):
                return

    def match_stream(
        self,
        query: PatternQuery,
        budget: Optional[Budget] = None,
        order: Optional[Sequence[int]] = None,
        injective: bool = False,
        keep_occurrences: bool = True,
    ) -> MatchStream:
        """An incremental evaluation of ``query`` as a :class:`MatchStream`.

        Nothing runs until the first occurrence is pulled; budget
        exhaustion terminates the stream with the matching
        :class:`MatchStatus` instead of raising, and ``stream.report()``
        finalises into the exact report :meth:`match` would return.
        """
        budget = budget or self.budget
        info: dict = {}
        return MatchStream(
            self.iter_matches(
                query, budget=budget, order=order, injective=injective, _info=info
            ),
            query_name=query.name,
            algorithm=self.algorithm_name(),
            budget=budget,
            info=info,
            keep_occurrences=keep_occurrences,
        )

    def match(
        self,
        query: PatternQuery,
        budget: Optional[Budget] = None,
        order: Optional[Sequence[int]] = None,
        injective: bool = False,
    ) -> MatchReport:
        """Evaluate ``query`` and return a :class:`MatchReport`.

        A thin driver that drains :meth:`iter_matches` to completion.
        ``injective=True`` enumerates isomorphic (one-to-one) matches instead
        of homomorphic ones.
        """
        budget = budget or self.budget
        start = time.perf_counter()
        report = self.match_stream(
            query, budget=budget, order=order, injective=injective
        ).report()
        if not report.status.is_solved():
            # Historical shape for failed evaluations: elapsed time under
            # matching_seconds, no occurrences, no RIG statistics.
            return MatchReport(
                query_name=query.name,
                algorithm=self.algorithm_name(),
                status=report.status,
                occurrences=[],
                num_matches=0,
                matching_seconds=time.perf_counter() - start,
                enumeration_seconds=0.0,
            )
        return report

    def count(self, query: PatternQuery, budget: Optional[Budget] = None) -> int:
        """Number of occurrences of ``query`` (subject to budget).

        Routed through :meth:`iter_matches` with a counting drain: the
        occurrences are never accumulated, and ``max_matches`` / deadline
        budgets short-circuit the enumeration.  A non-solved termination
        (timeout, cancellation) returns the matches counted *so far*; use
        :meth:`match` when the terminal status matters.
        """
        stream = self.match_stream(query, budget=budget, keep_occurrences=False)
        for _ in stream:
            pass
        return stream.num_yielded

    # ------------------------------------------------------------------ #
    # EXPLAIN / EXPLAIN ANALYZE
    # ------------------------------------------------------------------ #

    def explain(
        self,
        query: PatternQuery,
        analyze: bool = False,
        budget: Optional[Budget] = None,
        order: Optional[Sequence[int]] = None,
        injective: bool = False,
    ) -> QueryPlan:
        """The GM pipeline's :class:`QueryPlan` for ``query``.

        Plan-only mode runs the matching phase (reduction, filtering, RIG,
        search order) but never enumerates: the per-step estimates are the
        RIG candidate-set cardinalities the order selector itself consulted.
        ``analyze=True`` additionally executes the enumeration under the
        budget with per-position counters and reconciles the root operator's
        actual row count against the :class:`MatchReport` of the same run.
        """
        budget = budget or self.budget
        build, rig_cached = self._rig_for(query)
        rig = build.rig
        reduced = build.query
        empty = rig.is_empty()
        if order is not None:
            chosen_order = list(order)
        elif empty:
            chosen_order = list(reduced.nodes())
        else:
            chosen_order = search_order(reduced, rig, self.ordering)

        steps = []
        root_estimate = None if empty else self._estimate_rows(reduced, rig)
        for position, node in enumerate(chosen_order):
            constraints = []
            uses_reachability = False
            placed = set(chosen_order[:position])
            for edge in reduced.edges():
                if (edge.source == node and edge.target in placed) or (
                    edge.target == node and edge.source in placed
                ):
                    constraints.append(repr(edge))
                    uses_reachability = uses_reachability or edge.is_descendant
            details = {"position": position, "node": node}
            if constraints:
                details["constraints"] = constraints
            if uses_reachability:
                details["reachability_index"] = type(self.reachability).__name__
            steps.append(
                PlanOperator(
                    op="mjoin_extend",
                    label=f"extend u{node} [{reduced.label(node)}]",
                    estimate=rig.candidate_count(node),
                    details=details,
                )
            )
        root = PlanOperator(
            op="mjoin",
            label=f"MJoin [{self.algorithm_name()}]",
            estimate=root_estimate,
            details={"injective": injective},
            children=steps,
        )
        artifacts = {
            "reachability_index": type(self.reachability).__name__,
            "rig_cached": rig_cached,
            "rig_size": rig.size(),
            "set_kind": rig.set_kind,
            "simulation_passes": build.simulation.passes if build.simulation else 0,
            "transitive_reduction": self.rig_options.transitive_reduction,
        }
        plan = QueryPlan(
            query=query.name or "query",
            engine=self.algorithm_name(),
            analyze=analyze,
            root=root,
            ordering=self.ordering.value,
            vertex_order=chosen_order,
            artifacts=artifacts,
        )
        if not analyze:
            return plan

        step_stats: list = []
        info: dict = {}
        stream = MatchStream(
            self.iter_matches(
                query,
                budget=budget,
                order=chosen_order,
                injective=injective,
                _info=info,
                step_stats=step_stats,
            ),
            query_name=query.name,
            algorithm=self.algorithm_name(),
            budget=budget,
            info=info,
            keep_occurrences=False,
        )
        for _ in stream:
            pass
        report = stream.report()
        for operator, stats in zip(steps, step_stats):
            operator.actual = {
                "rows": stats["rows"],
                "candidates": stats["candidates"],
                "intersections": stats["intersections"],
            }
        mjoin_stats = report.extra.get("mjoin", {}) if report.extra else {}
        root.actual = {
            "rows": report.num_matches,
            "candidates": mjoin_stats.get("candidates", 0),
            "intersections": mjoin_stats.get("intersections", 0),
        }
        plan.execution = {
            "status": report.status.value,
            "rows": report.num_matches,
            "matching_seconds": report.matching_seconds,
            "enumeration_seconds": report.enumeration_seconds,
        }
        return plan

    @staticmethod
    def _estimate_rows(query: PatternQuery, rig) -> int:
        """Independence-assumption occurrence estimate from RIG statistics."""
        estimate = 1.0
        for node in query.nodes():
            estimate *= max(rig.candidate_count(node), 0)
        for edge in query.edges():
            tail = rig.candidate_count(edge.source)
            head = rig.candidate_count(edge.target)
            if tail == 0 or head == 0:
                return 0
            estimate *= rig.edge_candidate_count(edge.source, edge.target) / float(
                tail * head
            )
        return int(round(estimate))
