"""GM: the end-to-end RIG-based graph pattern matcher and its ablations.

:class:`GraphMatcher` wires together the full pipeline of the paper:

1. query transitive reduction (§3) — skipped by the GM-NR variant;
2. node selection — node pre-filter + double simulation (GM), double
   simulation only (GM-S), pre-filter only (GM-F);
3. RIG construction (BuildRIG, §4.5);
4. search-order selection (JO / RI / BJ, §5.2);
5. MJoin occurrence enumeration (§5.1).

``match`` returns a :class:`MatchReport` with the matching time (steps 1–4)
and the enumeration time (step 5) separated, which is how the paper reports
query time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from enum import Enum
from typing import MutableMapping, Optional, Sequence

from repro.exceptions import BudgetExceeded, QueryCancelled, TimeoutExceeded
from repro.graph.digraph import DataGraph
from repro.matching.mjoin import mjoin
from repro.matching.ordering import OrderingMethod, search_order
from repro.matching.result import Budget, MatchReport, MatchStatus
from repro.query.pattern import PatternQuery
from repro.reachability.base import ReachabilityIndex
from repro.rig.build import RIGBuildReport, RIGOptions, build_rig
from repro.simulation.context import MatchContext


class GMVariant(Enum):
    """The GM ablations used throughout the paper's experiments."""

    #: Full pipeline: pre-filter + double simulation + transitive reduction.
    GM = "GM"
    #: No node pre-filtering before double simulation.
    GM_S = "GM-S"
    #: Node pre-filtering only (no double simulation).
    GM_F = "GM-F"
    #: No query transitive reduction.
    GM_NR = "GM-NR"


def _options_for_variant(variant: GMVariant, base: RIGOptions) -> RIGOptions:
    if variant is GMVariant.GM:
        return replace(base, filter_mode="double_sim", prefilter=True, transitive_reduction=True)
    if variant is GMVariant.GM_S:
        return replace(base, filter_mode="double_sim", prefilter=False, transitive_reduction=True)
    if variant is GMVariant.GM_F:
        return replace(base, filter_mode="prefilter", transitive_reduction=True)
    if variant is GMVariant.GM_NR:
        return replace(base, filter_mode="double_sim", prefilter=True, transitive_reduction=False)
    raise ValueError(f"unknown GM variant {variant!r}")


class GraphMatcher:
    """Evaluate hybrid pattern queries on a data graph with the GM pipeline.

    Parameters
    ----------
    graph:
        The data graph.
    reachability_kind:
        Reachability index to build if ``context`` is not given
        (default ``"bfl"``, as in the paper).
    context:
        An existing :class:`MatchContext` to reuse (shares the reachability
        index across many queries, as the benchmarks do).
    variant:
        Which GM ablation to run (default the full GM pipeline).
    ordering:
        Search-order strategy for the enumeration phase (default JO).
    rig_options:
        Overrides for BuildRIG (set representation, child-check method,
        simulation tuning, ...).
    budget:
        Default per-query limits; ``match`` accepts a per-call override.
    rig_cache:
        Optional mutable mapping ``PatternQuery -> RIGBuildReport``.  When
        given, ``match`` reuses the cached RIG of a previously seen query
        instead of rebuilding it (MJoin only reads the RIG, so reuse is
        safe), and records new builds into the mapping.  A
        :class:`~repro.session.QuerySession` passes its own cache here to
        share RIGs across queries and report hit/miss statistics.
    """

    def __init__(
        self,
        graph: DataGraph,
        reachability_kind: str = "bfl",
        context: Optional[MatchContext] = None,
        variant: GMVariant = GMVariant.GM,
        ordering: OrderingMethod = OrderingMethod.JO,
        rig_options: Optional[RIGOptions] = None,
        budget: Optional[Budget] = None,
        rig_cache: Optional[MutableMapping[PatternQuery, RIGBuildReport]] = None,
    ) -> None:
        self.graph = graph
        self.context = context or MatchContext(graph, reachability_kind=reachability_kind)
        self.variant = variant
        self.ordering = ordering
        self.rig_options = _options_for_variant(variant, rig_options or RIGOptions())
        self.budget = budget or Budget()
        self.rig_cache = rig_cache

    @property
    def reachability(self) -> ReachabilityIndex:
        """The reachability index in use."""
        return self.context.reachability

    def algorithm_name(self) -> str:
        """Name used in reports (variant plus non-default ordering)."""
        if self.ordering is OrderingMethod.JO:
            return self.variant.value
        return f"{self.variant.value}-{self.ordering.value.upper()}"

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def build_rig(self, query: PatternQuery) -> RIGBuildReport:
        """Run only the summarization phase (useful for the Fig. 13 ablation)."""
        return build_rig(self.context, query, self.rig_options)

    def _rig_for(self, query: PatternQuery) -> tuple[RIGBuildReport, bool]:
        """Fetch the query's RIG from the cache, building (and storing) on miss."""
        if self.rig_cache is not None:
            cached = self.rig_cache.get(query)
            if cached is not None:
                return cached, True
        report = build_rig(self.context, query, self.rig_options)
        if self.rig_cache is not None:
            self.rig_cache[query] = report
        return report, False

    def match(
        self,
        query: PatternQuery,
        budget: Optional[Budget] = None,
        order: Optional[Sequence[int]] = None,
        injective: bool = False,
    ) -> MatchReport:
        """Evaluate ``query`` and return a :class:`MatchReport`.

        ``injective=True`` enumerates isomorphic (one-to-one) matches instead
        of homomorphic ones.
        """
        budget = budget or self.budget
        start = time.perf_counter()
        try:
            report, rig_cached = self._rig_for(query)
            rig = report.rig
            if rig.is_empty():
                matching_seconds = time.perf_counter() - start
                return MatchReport(
                    query_name=query.name,
                    algorithm=self.algorithm_name(),
                    status=MatchStatus.OK,
                    occurrences=[],
                    num_matches=0,
                    matching_seconds=matching_seconds,
                    enumeration_seconds=0.0,
                    extra={"rig_size": rig.size(), "empty_rig": True, "rig_cached": rig_cached},
                )
            chosen_order = list(order) if order is not None else search_order(
                report.query, rig, self.ordering
            )
            matching_seconds = time.perf_counter() - start
            occurrences, hit_limit, enumeration_seconds = mjoin(
                rig, order=chosen_order, budget=budget, injective=injective
            )
            status = MatchStatus.MATCH_LIMIT if hit_limit else MatchStatus.OK
            return MatchReport(
                query_name=query.name,
                algorithm=self.algorithm_name(),
                status=status,
                occurrences=occurrences,
                num_matches=len(occurrences),
                matching_seconds=matching_seconds,
                enumeration_seconds=enumeration_seconds,
                extra={
                    "rig_size": rig.size(),
                    "rig_nodes": rig.num_rig_nodes(),
                    "rig_edges": rig.num_rig_edges(),
                    "search_order": chosen_order,
                    "simulation_passes": report.simulation.passes if report.simulation else 0,
                    "rig_cached": rig_cached,
                },
            )
        except TimeoutExceeded:
            elapsed = time.perf_counter() - start
            return MatchReport(
                query_name=query.name,
                algorithm=self.algorithm_name(),
                status=MatchStatus.TIMEOUT,
                occurrences=[],
                num_matches=0,
                matching_seconds=elapsed,
                enumeration_seconds=0.0,
            )
        except QueryCancelled:
            elapsed = time.perf_counter() - start
            return MatchReport(
                query_name=query.name,
                algorithm=self.algorithm_name(),
                status=MatchStatus.CANCELLED,
                occurrences=[],
                num_matches=0,
                matching_seconds=elapsed,
                enumeration_seconds=0.0,
            )
        except BudgetExceeded:
            elapsed = time.perf_counter() - start
            return MatchReport(
                query_name=query.name,
                algorithm=self.algorithm_name(),
                status=MatchStatus.OUT_OF_MEMORY,
                occurrences=[],
                num_matches=0,
                matching_seconds=elapsed,
                enumeration_seconds=0.0,
            )

    def count(self, query: PatternQuery, budget: Optional[Budget] = None) -> int:
        """Convenience: number of occurrences of ``query`` (subject to budget)."""
        return self.match(query, budget=budget).num_matches
