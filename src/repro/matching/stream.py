"""MatchStream: incremental match iteration with running counters.

The eager execution contract — evaluate, materialise every occurrence,
*then* hand the caller a finished :class:`~repro.matching.result.MatchReport`
— makes downstream consumers wait for the slowest part of query evaluation
(the paper caps enumeration at 10^7 matches precisely because it dominates).
:class:`MatchStream` is the incremental half of the redesigned execution
API: it wraps a lazy occurrence iterator (``Engine.iter_matches`` /
``GraphMatcher.iter_matches``), tracks running counters (matches yielded,
time to first match, elapsed wall clock), converts budget exhaustion into a
terminal :class:`~repro.matching.result.MatchStatus` instead of an
exception, and *finalises* into the exact :class:`MatchReport` the eager
path would have produced — same occurrence set, same status.

Consumption patterns::

    stream = session.stream(query)          # nothing evaluated yet
    first = next(stream)                    # time-to-first-match
    for occurrence in stream:               # pipelined enumeration
        ...
    report = stream.report()                # drains the rest, finalises

    session.stream(query).report()          # equivalent to session.query()

Abandoning a stream (``close()``, context-manager exit, or letting it be
garbage-collected) closes the underlying generator, which stops the
producer's backtracking search mid-flight — early termination costs
nothing beyond the matches already produced.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import (
    BudgetExceeded,
    MemoryBudgetExceeded,
    QueryCancelled,
    TimeoutExceeded,
)
from repro.matching.result import Budget, MatchReport, MatchStatus

#: One occurrence: data-node ids indexed by query-node id.
Occurrence = Tuple[int, ...]

#: One streamed page: a tuple of occurrences.
Page = Tuple[Occurrence, ...]


def encode_page(page: Page) -> List[List[int]]:
    """JSON-serialisable form of one streamed occurrence page.

    The wire protocol's page frames carry occurrence tuples as plain nested
    lists; :func:`decode_page` restores the tuple-of-tuples shape every
    in-process consumer (and report comparison) expects.
    """
    return [list(occurrence) for occurrence in page]


def decode_page(payload) -> Page:
    """Rebuild a page from :func:`encode_page` output."""
    return tuple(tuple(int(value) for value in occurrence) for occurrence in payload)


class MatchStream:
    """An in-flight query evaluation, consumable one occurrence at a time.

    Parameters
    ----------
    iterator:
        The lazy occurrence producer.  It may raise
        :class:`~repro.exceptions.TimeoutExceeded`,
        :class:`~repro.exceptions.QueryCancelled` or
        :class:`~repro.exceptions.MemoryBudgetExceeded`; the stream converts
        each into the corresponding terminal status and stops iteration.
        It is expected to stop on its own at the budget's match cap (both
        ``Engine.iter_matches`` and ``GraphMatcher.iter_matches`` do).
    query_name / algorithm:
        Report identity, copied into the finalised :class:`MatchReport`.
    budget:
        The budget the producer runs under; used only to classify a clean
        stop at exactly ``max_matches`` yields as
        :attr:`MatchStatus.MATCH_LIMIT`.
    info:
        A *mutable* mapping the producer may update while running (e.g. the
        GM pipeline records ``matching_seconds`` and its RIG ``extra`` only
        once the matching phase inside the generator finishes).  Read at
        finalisation time.  Recognised keys: ``matching_seconds`` (float)
        and ``extra`` (dict merged into the report's ``extra``).
    keep_occurrences:
        When False the stream only counts matches — the finalised report
        has ``num_matches`` but an empty ``occurrences`` list.  This is the
        counting drain behind ``Engine.count`` / ``QuerySession.count``.
    """

    def __init__(
        self,
        iterator: Iterator[Occurrence],
        query_name: str,
        algorithm: str,
        budget: Optional[Budget] = None,
        info: Optional[Dict[str, object]] = None,
        keep_occurrences: bool = True,
    ) -> None:
        self._iterator = iterator
        self.query_name = query_name
        self.algorithm = algorithm
        self.budget = budget
        self._info = info if info is not None else {}
        self.keep_occurrences = keep_occurrences
        self.occurrences: List[Occurrence] = []
        #: Number of occurrences produced so far.
        self.num_yielded = 0
        #: Seconds from stream creation to the first occurrence (None until then).
        self.first_match_seconds: Optional[float] = None
        self._started = time.perf_counter()
        self._elapsed: Optional[float] = None
        self._status: Optional[MatchStatus] = None

    # ------------------------------------------------------------------ #
    # iteration
    # ------------------------------------------------------------------ #

    def __iter__(self) -> "MatchStream":
        return self

    def __next__(self) -> Occurrence:
        if self._status is not None:
            raise StopIteration
        try:
            occurrence = next(self._iterator)
        except StopIteration:
            self._finish(self._exhausted_status())
            raise
        except TimeoutExceeded:
            self._finish(MatchStatus.TIMEOUT)
            raise StopIteration from None
        except QueryCancelled:
            self._finish(MatchStatus.CANCELLED)
            raise StopIteration from None
        except MemoryBudgetExceeded:
            self._finish(MatchStatus.OUT_OF_MEMORY)
            raise StopIteration from None
        except BudgetExceeded:
            # Any other budget shape (JM-style intermediate explosion)
            # reports as the paper's out-of-memory failure mode.
            self._finish(MatchStatus.OUT_OF_MEMORY)
            raise StopIteration from None
        if self.num_yielded == 0:
            self.first_match_seconds = time.perf_counter() - self._started
        self.num_yielded += 1
        if self.keep_occurrences:
            self.occurrences.append(occurrence)
        return occurrence

    def _exhausted_status(self) -> MatchStatus:
        limit = self.budget.max_matches if self.budget is not None else None
        if limit is not None and self.num_yielded >= limit:
            return MatchStatus.MATCH_LIMIT
        return MatchStatus.OK

    def _finish(self, status: MatchStatus) -> None:
        if self._status is None:
            self._status = status
            self._elapsed = time.perf_counter() - self._started

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #

    @property
    def finished(self) -> bool:
        """True once the stream reached a terminal status."""
        return self._status is not None

    @property
    def status(self) -> Optional[MatchStatus]:
        """The terminal status, or None while the stream is still live."""
        return self._status

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock seconds since creation (frozen at termination)."""
        if self._elapsed is not None:
            return self._elapsed
        return time.perf_counter() - self._started

    # ------------------------------------------------------------------ #
    # finalisation
    # ------------------------------------------------------------------ #

    def report(self, drain: bool = True) -> MatchReport:
        """Finalise into a :class:`MatchReport`.

        With ``drain=True`` (default) the remaining occurrences are pulled
        first, so the report is exactly what the eager ``match()`` path
        would have returned.  With ``drain=False`` the report describes the
        matches consumed so far; a still-live stream is closed and reported
        with its current (partial) counters and status ``CANCELLED``.
        """
        if self._status is None:
            if drain:
                for _ in self:
                    pass
            else:
                self.close()
        source: Optional[MatchReport] = getattr(self, "_source_report", None)
        if source is not None and self.num_yielded == source.num_matches:
            # A fully drained pre-materialised stream: the original report
            # (with its true phase timings) is strictly more faithful.
            return source
        matching_seconds = float(self._info.get("matching_seconds", 0.0))
        extra = dict(self._info.get("extra", ()))
        if self.first_match_seconds is not None:
            extra.setdefault("first_match_seconds", self.first_match_seconds)
        extra.setdefault("streamed", True)
        return MatchReport(
            query_name=self.query_name,
            algorithm=self.algorithm,
            status=self._status or MatchStatus.CANCELLED,
            occurrences=self.occurrences if self.keep_occurrences else [],
            num_matches=self.num_yielded,
            matching_seconds=matching_seconds,
            enumeration_seconds=max(0.0, self.elapsed_seconds - matching_seconds),
            extra=extra,
        )

    def close(self) -> None:
        """Stop the producer (idempotent).  A live stream terminates CANCELLED."""
        close = getattr(self._iterator, "close", None)
        if close is not None:
            close()
        self._finish(MatchStatus.CANCELLED)

    def __enter__(self) -> "MatchStream":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = self._status.value if self._status else "live"
        return (
            f"MatchStream({self.algorithm} on {self.query_name!r}, "
            f"{self.num_yielded} yielded, {state})"
        )

    # ------------------------------------------------------------------ #
    # adapters
    # ------------------------------------------------------------------ #

    @classmethod
    def from_report(cls, report: MatchReport, budget: Optional[Budget] = None) -> "MatchStream":
        """Wrap a finished :class:`MatchReport` as a (degenerate) stream.

        Used for matchers whose algorithm is inherently blocking (the JM /
        TM / ISO baselines): the evaluation has already completed, so the
        stream merely replays its occurrences.  The finalised report keeps
        the original's status and phase timings.
        """
        stream = cls(
            iter(report.occurrences),
            query_name=report.query_name,
            algorithm=report.algorithm,
            budget=budget,
            info={
                "matching_seconds": report.matching_seconds,
                "extra": dict(report.extra, pre_materialized=True),
            },
        )
        stream._source_report = report  # type: ignore[attr-defined]
        original = stream._exhausted_status

        def exhausted() -> MatchStatus:
            status = original()
            # A blocking producer may have ended on a budget failure the
            # occurrences alone cannot reveal; trust its recorded status.
            return report.status if status is MatchStatus.OK else status

        stream._exhausted_status = exhausted  # type: ignore[method-assign]
        return stream
