"""GM: the RIG-based hybrid graph pattern matcher.

This package assembles the paper's contribution: search-order selection
(``JO``, ``RI``, ``BJ``), the MJoin multiway-intersection enumerator
(Algorithm 5) and the :class:`GraphMatcher` pipeline (GM) with its ablation
variants (GM-S, GM-F, GM-NR and the per-ordering variants).
"""

from repro.matching.result import Budget, MatchReport, MatchStatus
from repro.matching.ordering import (
    OrderingMethod,
    jo_order,
    ri_order,
    bj_order,
    search_order,
)
from repro.matching.mjoin import mjoin, mjoin_iter, count_matches
from repro.matching.stream import MatchStream
from repro.matching.gm import GraphMatcher, GMVariant

__all__ = [
    "Budget",
    "MatchReport",
    "MatchStatus",
    "MatchStream",
    "OrderingMethod",
    "jo_order",
    "ri_order",
    "bj_order",
    "search_order",
    "mjoin",
    "mjoin_iter",
    "count_matches",
    "GraphMatcher",
    "GMVariant",
]
