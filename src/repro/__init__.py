"""repro: hybrid graph pattern query evaluation with runtime index graphs.

A from-scratch Python reproduction of "Evaluating Hybrid Graph Pattern
Queries Using Runtime Index Graphs" (EDBT 2023).  The public API re-exports
the pieces most applications need:

* :class:`DataGraph` / :class:`GraphBuilder` — the data-graph substrate;
* :class:`PatternQuery` / :func:`parse_query` — hybrid pattern queries
  (direct ``->`` and reachability ``=>`` edges);
* :class:`GraphMatcher` — the GM pipeline (double simulation + runtime
  index graph + MJoin enumeration);
* :class:`JMMatcher`, :class:`TMMatcher`, :class:`ISOMatcher` — the
  baselines of the paper's evaluation;
* :func:`build_reachability_index` — reachability indexes (BFL, intervals,
  transitive closure);
* :class:`Budget` / :class:`MatchReport` — per-query limits and outcomes;
* :class:`MatchStream` — incremental (pipelined) match iteration with
  running counters, finalising into a :class:`MatchReport`;
* :class:`QuerySession` — cached-index batch execution over one graph;
* :class:`GraphDelta` / :class:`MutableDataGraph` — batched graph updates
  with incremental index maintenance (``session.apply(delta)``);
* :class:`GraphDB` — the unified facade: open / ingest / apply / query /
  stream / count / histogram / stats over the whole store + service stack;
* :class:`Telemetry` / :class:`MetricsRegistry` / :class:`Tracer` /
  :class:`SlowQueryLog` — the unified observability context threaded
  through every layer (``repro.obs``): labelled metric families, sampled
  end-to-end query traces, and a structured slow-query log;
* :class:`GraphServer` / :class:`GraphCatalog` / :class:`GraphClient` —
  multi-tenant network serving of the facade over a length-prefixed JSON
  frame protocol (``repro.server`` / ``repro.client``);
* :class:`ReplicaServer` / :class:`RoutedClient` — one-writer/N-replica
  replication: replicas tail the primary's delta log and serve the full
  read surface, the routed client splits writes (primary) from reads
  (replicas, round-robin under a staleness floor) — ``repro.replication``.
"""

from repro.exceptions import (
    ReproError,
    GraphError,
    QueryError,
    QueryParseError,
    ReachabilityError,
    MatchingError,
    BudgetExceeded,
    TimeoutExceeded,
    MemoryBudgetExceeded,
    QueryCancelled,
    EngineError,
    StaleIndexError,
    StoreError,
    CatalogError,
    UnknownGraphError,
    ProtocolError,
    ServiceOverloadedError,
    ReplicationError,
    ReadOnlyReplicaError,
    ReplicaDivergedError,
    PrimaryUnavailableError,
)
from repro.graph import DataGraph, GraphBuilder, load_dataset, available_datasets
from repro.query import (
    EdgeType,
    PatternEdge,
    PatternQuery,
    parse_query,
    format_query,
    transitive_reduction,
    template_query,
    instantiate_template,
    random_pattern_query,
)
from repro.reachability import build_reachability_index
from repro.simulation import MatchContext, fbsim, fbsim_basic, fbsim_dag
from repro.rig import build_rig, RIGOptions, RuntimeIndexGraph
from repro.matching import (
    Budget,
    MatchReport,
    MatchStatus,
    MatchStream,
    GraphMatcher,
    GMVariant,
    OrderingMethod,
    mjoin,
    mjoin_iter,
)
from repro.baselines import JMMatcher, TMMatcher, ISOMatcher, bruteforce_homomorphisms
from repro.dynamic import ApplyReport, GraphDelta, MutableDataGraph
from repro.session import BatchReport, CacheStats, QuerySession
from repro.store import StoreSnapshot, StoreStats, VersionedGraphStore
from repro.service import (
    QueryService,
    QueryTicket,
    ServiceBatchReport,
    ServiceConfig,
    ServiceStats,
    StreamingResult,
)
from repro.api import GraphDB
from repro.explain import PlanOperator, QueryPlan, plan_digest
from repro.obs import MetricsRegistry, SlowQueryLog, Telemetry, Tracer
from repro.wal import DeltaLog, RecoveryReport, WalDurability
from repro.server import GraphCatalog, GraphServer
from repro.client import GraphClient, RemoteSnapshot, RemoteStream, RoutedClient
from repro.replication import ReplicaServer, ReplicaTail, ReplicationHub

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "GraphError",
    "QueryError",
    "QueryParseError",
    "ReachabilityError",
    "MatchingError",
    "BudgetExceeded",
    "TimeoutExceeded",
    "MemoryBudgetExceeded",
    "EngineError",
    "DataGraph",
    "GraphBuilder",
    "load_dataset",
    "available_datasets",
    "EdgeType",
    "PatternEdge",
    "PatternQuery",
    "parse_query",
    "format_query",
    "transitive_reduction",
    "template_query",
    "instantiate_template",
    "random_pattern_query",
    "build_reachability_index",
    "MatchContext",
    "fbsim",
    "fbsim_basic",
    "fbsim_dag",
    "build_rig",
    "RIGOptions",
    "RuntimeIndexGraph",
    "Budget",
    "MatchReport",
    "MatchStatus",
    "MatchStream",
    "GraphMatcher",
    "GMVariant",
    "OrderingMethod",
    "mjoin",
    "mjoin_iter",
    "JMMatcher",
    "TMMatcher",
    "ISOMatcher",
    "bruteforce_homomorphisms",
    "ApplyReport",
    "GraphDelta",
    "MutableDataGraph",
    "BatchReport",
    "CacheStats",
    "QuerySession",
    "QueryCancelled",
    "StaleIndexError",
    "StoreError",
    "ServiceOverloadedError",
    "StoreSnapshot",
    "StoreStats",
    "VersionedGraphStore",
    "QueryService",
    "QueryTicket",
    "ServiceBatchReport",
    "ServiceConfig",
    "ServiceStats",
    "StreamingResult",
    "GraphDB",
    "PlanOperator",
    "QueryPlan",
    "plan_digest",
    "MetricsRegistry",
    "SlowQueryLog",
    "Telemetry",
    "Tracer",
    "DeltaLog",
    "RecoveryReport",
    "WalDurability",
    "CatalogError",
    "UnknownGraphError",
    "ProtocolError",
    "GraphCatalog",
    "GraphServer",
    "GraphClient",
    "RemoteSnapshot",
    "RemoteStream",
    "RoutedClient",
    "ReplicationError",
    "ReadOnlyReplicaError",
    "ReplicaDivergedError",
    "PrimaryUnavailableError",
    "ReplicaServer",
    "ReplicaTail",
    "ReplicationHub",
    "__version__",
]
