"""Synthetic data-graph generators.

The paper evaluates on nine real SNAP graphs.  Those graphs are not
redistributable inside this repository, so the benchmark harness uses the
generators below to produce graphs with the *shape* that drives the paper's
results: label-alphabet size (selectivity of inverted lists), degree
distribution (uniform vs power-law vs dense), and reachability density
(layered/dag-like vs cyclic).  All generators are deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graph.digraph import DataGraph


def _make_labels(num_nodes: int, num_labels: int, rng: random.Random) -> List[str]:
    """Draw a label for every node uniformly from ``L0 .. L{num_labels-1}``."""
    if num_labels <= 0:
        raise GraphError("num_labels must be positive")
    alphabet = [f"L{i}" for i in range(num_labels)]
    return [rng.choice(alphabet) for _ in range(num_nodes)]


def _check_sizes(num_nodes: int, num_edges: int) -> None:
    if num_nodes <= 0:
        raise GraphError("num_nodes must be positive")
    if num_edges < 0:
        raise GraphError("num_edges must be non-negative")


def random_labeled_graph(
    num_nodes: int,
    num_edges: int,
    num_labels: int,
    seed: int = 0,
    name: str = "random",
) -> DataGraph:
    """Uniform-random directed graph (Erdős–Rényi G(n, m) style).

    Edges are drawn uniformly without replacement; self-loops are excluded.
    """
    _check_sizes(num_nodes, num_edges)
    rng = random.Random(seed)
    labels = _make_labels(num_nodes, num_labels, rng)
    edges = set()
    max_possible = num_nodes * (num_nodes - 1)
    target = min(num_edges, max_possible)
    while len(edges) < target:
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u != v:
            edges.add((u, v))
    return DataGraph(labels, sorted(edges), name=name)


def random_dag(
    num_nodes: int,
    num_edges: int,
    num_labels: int,
    seed: int = 0,
    name: str = "dag",
) -> DataGraph:
    """Random directed *acyclic* graph.

    Edges always point from a smaller to a larger node id under a random
    permutation, which guarantees acyclicity while keeping the degree
    distribution roughly uniform.
    """
    _check_sizes(num_nodes, num_edges)
    rng = random.Random(seed)
    labels = _make_labels(num_nodes, num_labels, rng)
    order = list(range(num_nodes))
    rng.shuffle(order)
    rank = {node: index for index, node in enumerate(order)}
    edges = set()
    max_possible = num_nodes * (num_nodes - 1) // 2
    target = min(num_edges, max_possible)
    attempts = 0
    while len(edges) < target and attempts < 50 * target + 100:
        attempts += 1
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v:
            continue
        if rank[u] > rank[v]:
            u, v = v, u
        edges.add((u, v))
    return DataGraph(labels, sorted(edges), name=name)


def layered_graph(
    num_layers: int,
    nodes_per_layer: int,
    edges_per_node: int,
    num_labels: int,
    skip_probability: float = 0.1,
    seed: int = 0,
    name: str = "layered",
) -> DataGraph:
    """Layered dag resembling citation / dependency networks.

    Nodes are arranged in layers; each node points to ``edges_per_node``
    random nodes in the next layer and, with ``skip_probability``, to a node
    two layers ahead.  This produces long reachability chains, the regime in
    which reachability (descendant) query edges have many matches.
    """
    if num_layers <= 0 or nodes_per_layer <= 0:
        raise GraphError("num_layers and nodes_per_layer must be positive")
    rng = random.Random(seed)
    num_nodes = num_layers * nodes_per_layer
    labels = _make_labels(num_nodes, num_labels, rng)

    def layer_nodes(layer: int) -> range:
        return range(layer * nodes_per_layer, (layer + 1) * nodes_per_layer)

    edges = set()
    for layer in range(num_layers - 1):
        next_layer = list(layer_nodes(layer + 1))
        skip_layer = list(layer_nodes(layer + 2)) if layer + 2 < num_layers else []
        for node in layer_nodes(layer):
            for _ in range(edges_per_node):
                edges.add((node, rng.choice(next_layer)))
            if skip_layer and rng.random() < skip_probability:
                edges.add((node, rng.choice(skip_layer)))
    return DataGraph(labels, sorted(edges), name=name)


def power_law_graph(
    num_nodes: int,
    num_edges: int,
    num_labels: int,
    exponent: float = 1.8,
    seed: int = 0,
    name: str = "powerlaw",
) -> DataGraph:
    """Directed graph with a power-law-ish degree distribution.

    Target endpoints are drawn with probability proportional to
    ``(rank + 1) ** -exponent`` (a Zipf-like attachment), which concentrates
    in-degree on a few hub nodes — the shape of the web / social graphs used
    in the paper (berkstan, google, epinions).
    """
    _check_sizes(num_nodes, num_edges)
    rng = random.Random(seed)
    labels = _make_labels(num_nodes, num_labels, rng)
    weights = [(rank + 1) ** (-exponent) for rank in range(num_nodes)]
    population = list(range(num_nodes))
    edges = set()
    attempts = 0
    while len(edges) < num_edges and attempts < 50 * num_edges + 100:
        attempts += 1
        u = rng.randrange(num_nodes)
        v = rng.choices(population, weights=weights, k=1)[0]
        if u != v:
            edges.add((u, v))
    return DataGraph(labels, sorted(edges), name=name)


def clustered_graph(
    num_clusters: int,
    nodes_per_cluster: int,
    intra_edges_per_node: int,
    inter_edges_per_cluster: int,
    num_labels: int,
    seed: int = 0,
    name: str = "clustered",
) -> DataGraph:
    """Dense clusters with sparse inter-cluster edges.

    This resembles the dense biological graphs (human, yeast) where most
    nodes sit in highly connected neighbourhoods, which is the challenging
    regime for isomorphism-style pruning.
    """
    if num_clusters <= 0 or nodes_per_cluster <= 0:
        raise GraphError("num_clusters and nodes_per_cluster must be positive")
    rng = random.Random(seed)
    num_nodes = num_clusters * nodes_per_cluster
    labels = _make_labels(num_nodes, num_labels, rng)

    def cluster_nodes(cluster: int) -> range:
        return range(cluster * nodes_per_cluster, (cluster + 1) * nodes_per_cluster)

    edges = set()
    for cluster in range(num_clusters):
        members = list(cluster_nodes(cluster))
        for node in members:
            for _ in range(intra_edges_per_node):
                target = rng.choice(members)
                if target != node:
                    edges.add((node, target))
        for _ in range(inter_edges_per_cluster):
            other = rng.randrange(num_clusters)
            if other == cluster:
                continue
            source = rng.choice(members)
            target = rng.choice(list(cluster_nodes(other)))
            edges.add((source, target))
    return DataGraph(labels, sorted(edges), name=name)


def with_label_count(
    graph: DataGraph, num_labels: int, seed: int = 0, name: Optional[str] = None
) -> DataGraph:
    """Re-draw node labels from a smaller/larger alphabet, keeping the edges.

    This implements the "varying data labels" experiment (Fig. 10): the graph
    structure is fixed while the label-alphabet size changes, which changes
    inverted-list cardinalities.
    """
    rng = random.Random(seed)
    labels = _make_labels(graph.num_nodes, num_labels, rng)
    return DataGraph(labels, graph.edges(), name=name or f"{graph.name}-L{num_labels}")
