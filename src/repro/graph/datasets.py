"""Synthetic stand-ins for the paper's datasets (Table 2).

The paper evaluates on nine SNAP graphs.  This module exposes a registry of
:class:`DatasetSpec` objects, one per paper dataset, that generates a graph
with the same *shape* (label-alphabet size, density, broad topology) at a
scale that runs comfortably on a laptop in pure Python.  The ``scale``
argument of :func:`load_dataset` lets benchmarks trade fidelity for speed.

Why this preserves the paper's behaviour: the relative performance of GM,
JM and TM is governed by (a) inverted-list selectivity, driven by ``|L|``
and ``|V|``; (b) per-node degree, which controls edge-match fan-out; and
(c) reachability density, which controls descendant-edge match sizes.  Each
generator is chosen to match the paper dataset on those axes; absolute node
counts are scaled down, which scales absolute times but not the ordering of
the algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.exceptions import GraphError
from repro.graph.digraph import DataGraph
from repro.graph.generators import (
    clustered_graph,
    layered_graph,
    power_law_graph,
    random_labeled_graph,
)


@dataclass(frozen=True)
class DatasetSpec:
    """Description of a synthetic stand-in for a paper dataset.

    Attributes
    ----------
    key:
        Short name used in the paper (``yt``, ``hu``, ``hp``, ``ep``, ``db``,
        ``em``, ``am``, ``bs``, ``go``).
    domain:
        Application domain reported in Table 2.
    paper_nodes / paper_edges / paper_labels / paper_avg_degree:
        The statistics of the original SNAP dataset, kept for reporting.
    factory:
        Callable ``(scale, seed) -> DataGraph`` building the synthetic graph.
    """

    key: str
    domain: str
    paper_nodes: int
    paper_edges: int
    paper_labels: int
    paper_avg_degree: float
    factory: Callable[[float, int], DataGraph]

    def build(self, scale: float = 1.0, seed: int = 0) -> DataGraph:
        """Build the synthetic graph at the given scale (1.0 = default size)."""
        if scale <= 0:
            raise GraphError("scale must be positive")
        return self.factory(scale, seed)


def _scaled(value: int, scale: float, minimum: int = 8) -> int:
    return max(minimum, int(round(value * scale)))


# Default synthetic sizes: ~1-3% of the paper sizes for the big graphs and
# ~30-60% for the small biological ones, so that every benchmark completes in
# seconds in pure Python while retaining the datasets' relative ordering.


def _yeast(scale: float, seed: int) -> DataGraph:
    return clustered_graph(
        num_clusters=_scaled(40, scale, 4),
        nodes_per_cluster=25,
        intra_edges_per_node=4,
        inter_edges_per_cluster=10,
        num_labels=71,
        seed=seed,
        name="yt",
    )


def _human(scale: float, seed: int) -> DataGraph:
    return clustered_graph(
        num_clusters=_scaled(30, scale, 3),
        nodes_per_cluster=30,
        intra_edges_per_node=12,
        inter_edges_per_cluster=40,
        num_labels=44,
        seed=seed,
        name="hu",
    )


def _hprd(scale: float, seed: int) -> DataGraph:
    return clustered_graph(
        num_clusters=_scaled(60, scale, 6),
        nodes_per_cluster=25,
        intra_edges_per_node=4,
        inter_edges_per_cluster=8,
        num_labels=307,
        seed=seed,
        name="hp",
    )


def _epinions(scale: float, seed: int) -> DataGraph:
    nodes = _scaled(2500, scale)
    return power_law_graph(
        num_nodes=nodes,
        num_edges=int(nodes * 6.9),
        num_labels=20,
        exponent=1.6,
        seed=seed,
        name="ep",
    )


def _dblp(scale: float, seed: int) -> DataGraph:
    nodes = _scaled(3000, scale)
    return layered_graph(
        num_layers=max(6, nodes // 400),
        nodes_per_layer=400,
        edges_per_node=3,
        num_labels=20,
        skip_probability=0.15,
        seed=seed,
        name="db",
    )


def _email(scale: float, seed: int) -> DataGraph:
    nodes = _scaled(2600, scale)
    return random_labeled_graph(
        num_nodes=nodes,
        num_edges=int(nodes * 2.6),
        num_labels=20,
        seed=seed,
        name="em",
    )


def _amazon(scale: float, seed: int) -> DataGraph:
    nodes = _scaled(3500, scale)
    return power_law_graph(
        num_nodes=nodes,
        num_edges=int(nodes * 6.3),
        num_labels=3,
        exponent=1.4,
        seed=seed,
        name="am",
    )


def _berkstan(scale: float, seed: int) -> DataGraph:
    nodes = _scaled(3500, scale)
    return power_law_graph(
        num_nodes=nodes,
        num_edges=int(nodes * 8.0),
        num_labels=5,
        exponent=1.9,
        seed=seed,
        name="bs",
    )


def _google(scale: float, seed: int) -> DataGraph:
    nodes = _scaled(4000, scale)
    return power_law_graph(
        num_nodes=nodes,
        num_edges=int(nodes * 6.5),
        num_labels=5,
        exponent=1.7,
        seed=seed,
        name="go",
    )


DATASET_SPECS: Dict[str, DatasetSpec] = {
    "yt": DatasetSpec("yt", "biology", 3_100, 12_000, 71, 8.05, _yeast),
    "hu": DatasetSpec("hu", "biology", 4_600, 86_000, 44, 36.9, _human),
    "hp": DatasetSpec("hp", "biology", 9_400, 35_000, 307, 7.4, _hprd),
    "ep": DatasetSpec("ep", "social", 76_000, 509_000, 20, 6.87, _epinions),
    "db": DatasetSpec("db", "social", 317_000, 1_049_000, 20, 6.62, _dblp),
    "em": DatasetSpec("em", "communication", 265_000, 420_000, 20, 2.6, _email),
    "am": DatasetSpec("am", "product", 403_000, 3_500_000, 3, 6.29, _amazon),
    "bs": DatasetSpec("bs", "web", 685_000, 7_600_000, 5, 11.76, _berkstan),
    "go": DatasetSpec("go", "web", 876_000, 5_100_000, 5, 6.47, _google),
}


def available_datasets() -> Tuple[str, ...]:
    """Return the registered dataset keys in a stable order."""
    return tuple(sorted(DATASET_SPECS))


def load_dataset(key: str, scale: float = 1.0, seed: int = 0) -> DataGraph:
    """Build the synthetic stand-in for the paper dataset ``key``.

    Parameters
    ----------
    key:
        One of the Table 2 abbreviations (``yt``, ``hu``, ``hp``, ``ep``,
        ``db``, ``em``, ``am``, ``bs``, ``go``).
    scale:
        Size multiplier; 1.0 gives the default laptop-scale graph, smaller
        values give faster benchmark graphs.
    seed:
        Seed for the deterministic generator.
    """
    try:
        spec = DATASET_SPECS[key]
    except KeyError as exc:
        raise GraphError(
            f"unknown dataset {key!r}; available: {', '.join(available_datasets())}"
        ) from exc
    return spec.build(scale=scale, seed=seed)
