"""Persistence for data graphs.

Three formats are supported:

* **edge list** — one ``source target`` pair per line, ``#`` comments allowed
  (the SNAP collection distributes its graphs this way);
* **label file** — one ``node label`` pair per line;
* **JSON** — a single self-describing document carrying the graph *plus its
  dynamic metadata*: the monotone data version and, optionally, a pending
  :class:`repro.dynamic.GraphDelta` — so an evolving graph can be
  checkpointed mid-update-stream and resumed exactly.

:func:`save_graph` / :func:`load_graph` bundle the two plain-text files
under a shared stem (``<stem>.edges`` and ``<stem>.labels``);
:func:`save_graph_json` / :func:`load_graph_json` /
:func:`load_graph_delta_json` handle the JSON document.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import GraphError
from repro.graph.digraph import DataGraph

#: Format tag and version written into every JSON graph document.
JSON_FORMAT = "repro-graph"
JSON_FORMAT_VERSION = 1


def write_edge_list(graph: DataGraph, path: str) -> None:
    """Write the graph's edges to ``path`` in SNAP edge-list format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges\n")
        for source, target in graph.edges():
            handle.write(f"{source}\t{target}\n")


def read_edge_list(path: str) -> List[Tuple[int, int]]:
    """Read ``(source, target)`` pairs from an edge-list file."""
    edges: List[Tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{line_number}: expected 'source target', got {line!r}")
            edges.append((int(parts[0]), int(parts[1])))
    return edges


def write_labels(graph: DataGraph, path: str) -> None:
    """Write node labels to ``path``, one ``node label`` pair per line."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# {graph.name}: labels for {graph.num_nodes} nodes\n")
        for node in graph.nodes():
            handle.write(f"{node}\t{graph.label(node)}\n")


def read_labels(path: str) -> Dict[int, str]:
    """Read a node-to-label mapping from a label file."""
    labels: Dict[int, str] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{line_number}: expected 'node label', got {line!r}")
            labels[int(parts[0])] = parts[1]
    return labels


def save_graph(graph: DataGraph, stem: str) -> Tuple[str, str]:
    """Persist ``graph`` as ``<stem>.edges`` and ``<stem>.labels``.

    Returns the pair of file paths written.
    """
    edge_path = stem + ".edges"
    label_path = stem + ".labels"
    write_edge_list(graph, edge_path)
    write_labels(graph, label_path)
    return edge_path, label_path


def load_graph(stem: str, name: str | None = None) -> DataGraph:
    """Load a graph previously written by :func:`save_graph`."""
    edge_path = stem + ".edges"
    label_path = stem + ".labels"
    if not os.path.exists(edge_path):
        raise GraphError(f"missing edge file {edge_path}")
    if not os.path.exists(label_path):
        raise GraphError(f"missing label file {label_path}")
    edges = read_edge_list(edge_path)
    label_map = read_labels(label_path)
    return graph_from_parts(label_map, edges, name=name or os.path.basename(stem))


def _write_json_atomic(payload: Dict, path: str) -> str:
    """Write ``payload`` to ``path`` atomically (temp file + ``os.replace``).

    A reader (or a crash-recovery pass) therefore only ever observes either
    the previous complete document or the new complete document — never a
    truncated half-written one.  The temp file lives in the destination
    directory so the replace stays on one filesystem, and is fsync'd before
    the rename so the checkpoint path can rely on the bytes being durable.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def save_graph_json(graph, path: str, delta=None) -> str:
    """Persist a graph (and optional pending delta) as one JSON document.

    ``graph`` may be a :class:`DataGraph` or a
    :class:`repro.dynamic.MutableDataGraph` overlay — the *current* state
    (labels, edges) and version are written either way.  ``delta`` is an
    optional :class:`repro.dynamic.GraphDelta` serialised alongside, e.g.
    the not-yet-applied tail of an update stream.  The document is written
    atomically (temp file + rename), so a crash mid-save never leaves a
    truncated, unloadable file behind.  Returns ``path``.
    """
    payload = {
        "format": JSON_FORMAT,
        "format_version": JSON_FORMAT_VERSION,
        "name": graph.name,
        "version": getattr(graph, "version", 0),
        "labels": list(graph.labels),
        "edges": [[source, target] for source, target in graph.edges()],
    }
    if delta is not None:
        payload["delta"] = delta.to_dict()
    return _write_json_atomic(payload, path)


def _read_graph_payload(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise GraphError(f"{path}: not valid JSON: {exc}") from exc
    if payload.get("format") != JSON_FORMAT:
        raise GraphError(f"{path}: not a {JSON_FORMAT} document")
    if payload.get("format_version", 0) > JSON_FORMAT_VERSION:
        raise GraphError(
            f"{path}: format version {payload['format_version']} is newer "
            f"than supported ({JSON_FORMAT_VERSION})"
        )
    return payload


def _graph_from_payload(payload: Dict, path: str, name: Optional[str]) -> DataGraph:
    return DataGraph(
        payload["labels"],
        [(int(source), int(target)) for source, target in payload["edges"]],
        name=name or payload.get("name", os.path.basename(path)),
        version=int(payload.get("version", 0)),
    )


def load_graph_json(path: str, name: Optional[str] = None) -> DataGraph:
    """Load a :class:`DataGraph` written by :func:`save_graph_json`.

    Labels, edges, ``I_label`` ordering (a function of node ids, which are
    preserved verbatim) and the data version all round-trip.  A stored
    pending delta, if any, is ignored — use :func:`load_graph_delta_json`
    to recover it.
    """
    return _graph_from_payload(_read_graph_payload(path), path, name)


def load_graph_delta_json(path: str, name: Optional[str] = None):
    """Load ``(graph, pending_delta_or_None)`` from a JSON document.

    Replay is version-checked: a stored delta whose
    :attr:`~repro.dynamic.GraphDelta.base_version` is *older* than the
    saved graph's version was already folded into the graph before the
    save, so returning it would invite a double-apply — it comes back as
    ``None`` instead.  Deltas without a recorded base version (hand-built,
    or written by an older format) are returned as-is.
    """
    from repro.dynamic.delta import GraphDelta

    payload = _read_graph_payload(path)
    graph = _graph_from_payload(payload, path, name)
    raw_delta = payload.get("delta")
    delta = GraphDelta.from_dict(raw_delta) if raw_delta is not None else None
    if (
        delta is not None
        and delta.base_version is not None
        and delta.base_version < graph.version
    ):
        delta = None
    return graph, delta


def graph_from_parts(
    label_map: Dict[int, str], edges: Iterable[Tuple[int, int]], name: str = "graph"
) -> DataGraph:
    """Assemble a :class:`DataGraph` from a label mapping and an edge list.

    Node ids referenced by edges but absent from ``label_map`` are rejected,
    because every node of a data graph must carry a label (Definition 2.1).
    """
    if not label_map:
        return DataGraph([], [], name=name)
    max_node = max(label_map)
    labels: List[str] = ["" for _ in range(max_node + 1)]
    for node, label in label_map.items():
        if node < 0:
            raise GraphError(f"negative node id {node}")
        labels[node] = label
    missing = [node for node, label in enumerate(labels) if label == ""]
    if missing:
        raise GraphError(f"nodes without a label: {missing[:10]}")
    for source, target in edges:
        if source > max_node or target > max_node or source < 0 or target < 0:
            raise GraphError(f"edge ({source}, {target}) references an unlabelled node")
    return DataGraph(labels, edges, name=name)
