"""Core directed, node-labelled data graph.

:class:`DataGraph` is the immutable-after-construction structure that every
algorithm in the library operates on.  Nodes are dense integer identifiers
``0 .. n-1``; each node carries exactly one label.  The structure stores:

* forward adjacency lists (``successors``) and backward adjacency lists
  (``predecessors``), each sorted by node id;
* the label of every node and the *inverted list* ``I_label`` (Definition 2.1
  of the paper): the sorted list of nodes carrying a given label.

Adjacency lists and inverted lists are exposed both as tuples (for ordered
scans / binary search) and as frozensets (for O(1) membership tests), which
is what the bitmap-free baselines use.  The bitmap-backed representations
used by GM live in :mod:`repro.rig` and :mod:`repro.bitmap` and are built
from this structure on demand.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.exceptions import GraphError


class DataGraph:
    """A directed node-labelled data graph with dense integer node ids.

    Parameters
    ----------
    labels:
        Sequence of labels, one per node; node ``i`` has label ``labels[i]``.
    edges:
        Iterable of ``(source, target)`` pairs.  Duplicate edges are
        collapsed; self-loops are allowed (the paper's data graphs are
        arbitrary directed graphs).
    name:
        Optional human-readable name (used by the dataset registry and the
        benchmark reports).
    version:
        Monotone data version.  Freshly built graphs are version 0; graphs
        produced by :meth:`repro.dynamic.MutableDataGraph.materialize` carry
        the overlay's bumped version, so per-graph artifacts (indexes,
        caches) can detect staleness.  The version does not participate in
        equality or hashing — it describes provenance, not structure.
    """

    __slots__ = (
        "_labels",
        "_succ",
        "_pred",
        "_succ_sets",
        "_pred_sets",
        "_inverted",
        "_inverted_sets",
        "_num_edges",
        "name",
        "version",
    )

    def __init__(
        self,
        labels: Sequence[str],
        edges: Iterable[Tuple[int, int]],
        name: str = "graph",
        version: int = 0,
    ) -> None:
        n = len(labels)
        self._labels: Tuple[str, ...] = tuple(str(label) for label in labels)
        self.name = name
        self.version = version

        succ: List[List[int]] = [[] for _ in range(n)]
        pred: List[List[int]] = [[] for _ in range(n)]
        seen = set()
        num_edges = 0
        for u, v in edges:
            if not (0 <= u < n) or not (0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) references a node outside 0..{n - 1}")
            if (u, v) in seen:
                continue
            seen.add((u, v))
            succ[u].append(v)
            pred[v].append(u)
            num_edges += 1

        self._succ: Tuple[Tuple[int, ...], ...] = tuple(tuple(sorted(s)) for s in succ)
        self._pred: Tuple[Tuple[int, ...], ...] = tuple(tuple(sorted(p)) for p in pred)
        self._succ_sets: Tuple[frozenset, ...] = tuple(frozenset(s) for s in self._succ)
        self._pred_sets: Tuple[frozenset, ...] = tuple(frozenset(p) for p in self._pred)
        self._num_edges = num_edges

        inverted: Dict[str, List[int]] = {}
        for node, label in enumerate(self._labels):
            inverted.setdefault(label, []).append(node)
        self._inverted: Dict[str, Tuple[int, ...]] = {
            label: tuple(nodes) for label, nodes in inverted.items()
        }
        self._inverted_sets: Dict[str, frozenset] = {
            label: frozenset(nodes) for label, nodes in self._inverted.items()
        }

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the graph."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of distinct directed edges in the graph."""
        return self._num_edges

    @property
    def labels(self) -> Tuple[str, ...]:
        """Tuple of node labels indexed by node id."""
        return self._labels

    def nodes(self) -> range:
        """Iterate over node ids."""
        return range(self.num_nodes)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all ``(source, target)`` edges."""
        for u, targets in enumerate(self._succ):
            for v in targets:
                yield (u, v)

    def label(self, node: int) -> str:
        """Return the label of ``node``."""
        return self._labels[node]

    def label_alphabet(self) -> Tuple[str, ...]:
        """Return the sorted tuple of distinct labels used in the graph."""
        return tuple(sorted(self._inverted))

    def num_labels(self) -> int:
        """Return the number of distinct labels."""
        return len(self._inverted)

    # ------------------------------------------------------------------ #
    # adjacency
    # ------------------------------------------------------------------ #

    def successors(self, node: int) -> Tuple[int, ...]:
        """Sorted forward adjacency list (children) of ``node``."""
        return self._succ[node]

    def predecessors(self, node: int) -> Tuple[int, ...]:
        """Sorted backward adjacency list (parents) of ``node``."""
        return self._pred[node]

    def successor_set(self, node: int) -> frozenset:
        """Frozenset of children of ``node`` for O(1) membership tests."""
        return self._succ_sets[node]

    def predecessor_set(self, node: int) -> frozenset:
        """Frozenset of parents of ``node`` for O(1) membership tests."""
        return self._pred_sets[node]

    def has_edge(self, u: int, v: int) -> bool:
        """Return True if the directed edge ``(u, v)`` exists."""
        return v in self._succ_sets[u]

    def has_edge_binary_search(self, u: int, v: int) -> bool:
        """Edge test by binary search over the sorted adjacency list.

        This is the ``binSearch`` method compared in Fig. 12(a) of the paper;
        :meth:`has_edge` (hash-set membership) and the bitmap-based methods in
        :mod:`repro.rig` are the alternatives.
        """
        adjacency = self._succ[u]
        index = bisect_left(adjacency, v)
        return index < len(adjacency) and adjacency[index] == v

    def out_degree(self, node: int) -> int:
        """Number of outgoing edges of ``node``."""
        return len(self._succ[node])

    def in_degree(self, node: int) -> int:
        """Number of incoming edges of ``node``."""
        return len(self._pred[node])

    def degree(self, node: int) -> int:
        """Total (in + out) degree of ``node``."""
        return len(self._succ[node]) + len(self._pred[node])

    # ------------------------------------------------------------------ #
    # inverted label lists
    # ------------------------------------------------------------------ #

    def inverted_list(self, label: str) -> Tuple[int, ...]:
        """Sorted inverted list ``I_label``: nodes carrying ``label``."""
        return self._inverted.get(label, ())

    def inverted_set(self, label: str) -> frozenset:
        """Frozenset variant of :meth:`inverted_list`."""
        return self._inverted_sets.get(label, frozenset())

    def inverted_lists(self) -> Mapping[str, Tuple[int, ...]]:
        """Mapping from every label to its inverted list."""
        return dict(self._inverted)

    def max_inverted_list_size(self) -> int:
        """Size of the largest inverted list (``|I_max|`` in the paper)."""
        if not self._inverted:
            return 0
        return max(len(nodes) for nodes in self._inverted.values())

    # ------------------------------------------------------------------ #
    # traversal helpers
    # ------------------------------------------------------------------ #

    def bfs_forward(self, source: int) -> List[int]:
        """Return all nodes reachable from ``source`` (including itself)."""
        visited = [False] * self.num_nodes
        visited[source] = True
        order = [source]
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for child in self._succ[node]:
                    if not visited[child]:
                        visited[child] = True
                        order.append(child)
                        next_frontier.append(child)
            frontier = next_frontier
        return order

    def bfs_backward(self, source: int) -> List[int]:
        """Return all nodes that can reach ``source`` (including itself)."""
        visited = [False] * self.num_nodes
        visited[source] = True
        order = [source]
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for parent in self._pred[node]:
                    if not visited[parent]:
                        visited[parent] = True
                        order.append(parent)
                        next_frontier.append(parent)
            frontier = next_frontier
        return order

    def reaches_bfs(self, u: int, v: int) -> bool:
        """Ground-truth reachability check by BFS (used by tests and oracles).

        Node ``u`` reaches ``v`` if there is a non-empty path from ``u`` to
        ``v`` or ``u == v`` — the paper's ``u ≺ v`` treats every node as
        reaching itself through a trivial path only when an edge exists;
        here we follow the common convention used by its reachability index
        (BFL): ``reaches(u, u)`` is True.
        """
        if u == v:
            return True
        visited = [False] * self.num_nodes
        visited[u] = True
        frontier = [u]
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for child in self._succ[node]:
                    if child == v:
                        return True
                    if not visited[child]:
                        visited[child] = True
                        next_frontier.append(child)
            frontier = next_frontier
        return False

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, labels={self.num_labels()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataGraph):
            return NotImplemented
        return self._labels == other._labels and self._succ == other._succ

    def __hash__(self) -> int:
        return hash((self._labels, self._succ))
