"""Mutable builder for :class:`repro.graph.DataGraph`.

The builder accepts arbitrary hashable node keys (strings, tuples, ints) and
maps them to dense integer ids at :meth:`GraphBuilder.build` time, which is
the representation every algorithm in the library expects.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.exceptions import GraphError
from repro.graph.digraph import DataGraph


class GraphBuilder:
    """Incrementally assemble a :class:`DataGraph`.

    Example
    -------
    >>> builder = GraphBuilder()
    >>> builder.add_node("alice", "Person")
    0
    >>> builder.add_node("post1", "Post")
    1
    >>> builder.add_edge("alice", "post1")
    >>> graph = builder.build(name="tiny")
    >>> graph.num_nodes, graph.num_edges
    (2, 1)
    """

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._labels: List[str] = []
        self._edges: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_node(self, key: Hashable, label: str) -> int:
        """Add a node identified by ``key`` with the given label.

        Returns the dense integer id assigned to the node.  Adding the same
        key twice with the same label is a no-op; adding it with a different
        label raises :class:`GraphError`.
        """
        if key in self._ids:
            node = self._ids[key]
            if self._labels[node] != label:
                raise GraphError(
                    f"node {key!r} already added with label {self._labels[node]!r}, "
                    f"cannot relabel to {label!r}"
                )
            return node
        node = len(self._labels)
        self._ids[key] = node
        self._labels.append(label)
        return node

    def ensure_node(self, key: Hashable, label: Optional[str] = None) -> int:
        """Return the id of ``key``, creating it with ``label`` if missing."""
        if key in self._ids:
            return self._ids[key]
        if label is None:
            raise GraphError(f"node {key!r} is unknown and no label was provided")
        return self.add_node(key, label)

    def add_edge(self, source: Hashable, target: Hashable) -> None:
        """Add a directed edge between two previously added nodes."""
        if source not in self._ids:
            raise GraphError(f"unknown source node {source!r}")
        if target not in self._ids:
            raise GraphError(f"unknown target node {target!r}")
        self._edges.append((self._ids[source], self._ids[target]))

    def add_labeled_edge(
        self, source: Hashable, source_label: str, target: Hashable, target_label: str
    ) -> None:
        """Add an edge, creating either endpoint if it does not exist yet."""
        self.ensure_node(source, source_label)
        self.ensure_node(target, target_label)
        self.add_edge(source, target)

    def add_edges(self, pairs: Iterable[Tuple[Hashable, Hashable]]) -> None:
        """Add many edges between previously added nodes."""
        for source, target in pairs:
            self.add_edge(source, target)

    # ------------------------------------------------------------------ #
    # queries on the builder state
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of nodes added so far."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of edges added so far (duplicates counted)."""
        return len(self._edges)

    def node_id(self, key: Hashable) -> int:
        """Return the dense id assigned to ``key``."""
        try:
            return self._ids[key]
        except KeyError as exc:
            raise GraphError(f"unknown node {key!r}") from exc

    def __contains__(self, key: Hashable) -> bool:
        return key in self._ids

    # ------------------------------------------------------------------ #
    # finalisation
    # ------------------------------------------------------------------ #

    def build(self, name: str = "graph") -> DataGraph:
        """Freeze the builder into an immutable :class:`DataGraph`."""
        return DataGraph(self._labels, self._edges, name=name)

    def id_mapping(self) -> Dict[Hashable, int]:
        """Return a copy of the key-to-id mapping (useful after build)."""
        return dict(self._ids)
