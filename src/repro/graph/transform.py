"""Structural transforms and statistics over data graphs.

Includes strongly-connected-component condensation (needed to answer
reachability queries on cyclic graphs with dag-only index schemes),
induced-subgraph extraction (used by the size-scalability experiment of
Fig. 11), label re-mapping, graph reversal and summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graph.digraph import DataGraph


# ---------------------------------------------------------------------- #
# strongly connected components (iterative Tarjan)
# ---------------------------------------------------------------------- #


def strongly_connected_components(graph: DataGraph) -> List[List[int]]:
    """Return the strongly connected components of ``graph``.

    Uses an iterative Tarjan traversal so that very deep graphs do not hit
    Python's recursion limit.  Components are returned in reverse topological
    order of the condensation (standard Tarjan output order).
    """
    n = graph.num_nodes
    index_counter = 0
    indices = [-1] * n
    lowlinks = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    components: List[List[int]] = []

    for root in range(n):
        if indices[root] != -1:
            continue
        # Each work item is (node, iterator over successors).
        work = [(root, iter(graph.successors(root)))]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, successors = work[-1]
            advanced = False
            for child in successors:
                if indices[child] == -1:
                    indices[child] = lowlinks[child] = index_counter
                    index_counter += 1
                    stack.append(child)
                    on_stack[child] = True
                    work.append((child, iter(graph.successors(child))))
                    advanced = True
                    break
                if on_stack[child]:
                    lowlinks[node] = min(lowlinks[node], indices[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


@dataclass(frozen=True)
class Condensation:
    """SCC condensation of a data graph.

    Attributes
    ----------
    dag:
        The condensed graph; node ``i`` of the dag represents component ``i``.
        Labels of the condensed graph are synthetic (``"SCC"``) because a
        component may mix labels — reachability algorithms only use structure.
    component_of:
        For every original node, the id of its component in ``dag``.
    components:
        The member lists of every component.
    """

    dag: DataGraph
    component_of: Tuple[int, ...]
    components: Tuple[Tuple[int, ...], ...]


def condensation(graph: DataGraph) -> Condensation:
    """Compute the SCC condensation of ``graph``.

    The resulting dag has one node per strongly connected component and an
    edge between two components whenever the original graph has an edge
    between their members.  Reachability in the original graph reduces to
    reachability in the condensation, which is what the interval and BFL
    reachability indexes operate on.
    """
    components = strongly_connected_components(graph)
    component_of = [0] * graph.num_nodes
    for component_id, members in enumerate(components):
        for member in members:
            component_of[member] = component_id
    dag_edges = set()
    for source, target in graph.edges():
        cs, ct = component_of[source], component_of[target]
        if cs != ct:
            dag_edges.add((cs, ct))
    dag = DataGraph(["SCC"] * len(components), sorted(dag_edges), name=f"{graph.name}-scc")
    return Condensation(
        dag=dag,
        component_of=tuple(component_of),
        components=tuple(tuple(sorted(members)) for members in components),
    )


# ---------------------------------------------------------------------- #
# subgraphs and relabelling
# ---------------------------------------------------------------------- #


def induced_subgraph(graph: DataGraph, nodes: Iterable[int], name: str | None = None) -> DataGraph:
    """Return the subgraph induced by ``nodes`` with ids compacted to 0..k-1."""
    keep = sorted(set(nodes))
    for node in keep:
        if not (0 <= node < graph.num_nodes):
            raise GraphError(f"node {node} outside graph")
    remap = {node: index for index, node in enumerate(keep)}
    labels = [graph.label(node) for node in keep]
    edges = [
        (remap[source], remap[target])
        for source in keep
        for target in graph.successors(source)
        if target in remap
    ]
    return DataGraph(labels, edges, name=name or f"{graph.name}-sub{len(keep)}")


def node_prefix_subgraph(graph: DataGraph, num_nodes: int, name: str | None = None) -> DataGraph:
    """Induced subgraph over the first ``num_nodes`` node ids.

    This is how the paper builds "increasingly larger randomly chosen subsets
    of the DBLP data" for the size-scalability experiment (Fig. 11): node ids
    are already randomised by the generators, so a prefix is a random subset.
    """
    num_nodes = min(num_nodes, graph.num_nodes)
    return induced_subgraph(graph, range(num_nodes), name=name or f"{graph.name}-{num_nodes}")


def relabel_nodes(graph: DataGraph, mapping: Callable[[int, str], str], name: str | None = None) -> DataGraph:
    """Return a copy of ``graph`` with labels rewritten by ``mapping(node, label)``."""
    labels = [mapping(node, graph.label(node)) for node in graph.nodes()]
    return DataGraph(labels, graph.edges(), name=name or f"{graph.name}-relabel")


def reverse_graph(graph: DataGraph, name: str | None = None) -> DataGraph:
    """Return the graph with every edge reversed."""
    edges = [(target, source) for source, target in graph.edges()]
    return DataGraph(graph.labels, edges, name=name or f"{graph.name}-rev")


def undirected_double(graph: DataGraph, name: str | None = None) -> DataGraph:
    """Store each edge in both directions.

    The paper does exactly this to compare against RapidMatch, which treats
    graphs as undirected: "we store each edge of data graphs in both
    directions and use them as input to GM" (§7.5).
    """
    edges = set()
    for source, target in graph.edges():
        edges.add((source, target))
        edges.add((target, source))
    return DataGraph(graph.labels, sorted(edges), name=name or f"{graph.name}-undir")


# ---------------------------------------------------------------------- #
# statistics
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics of a data graph (Table 2 of the paper)."""

    name: str
    num_nodes: int
    num_edges: int
    num_labels: int
    avg_degree: float
    max_out_degree: int
    max_in_degree: int
    max_inverted_list: int

    def as_row(self) -> Tuple[str, int, int, int, float]:
        """Return the (name, |V|, |E|, |L|, d_avg) row used by Table 2."""
        return (self.name, self.num_nodes, self.num_edges, self.num_labels, self.avg_degree)


def graph_statistics(graph: DataGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph``."""
    n = graph.num_nodes
    max_out = max((graph.out_degree(v) for v in graph.nodes()), default=0)
    max_in = max((graph.in_degree(v) for v in graph.nodes()), default=0)
    avg_degree = (graph.num_edges / n) if n else 0.0
    return GraphStatistics(
        name=graph.name,
        num_nodes=n,
        num_edges=graph.num_edges,
        num_labels=graph.num_labels(),
        avg_degree=round(avg_degree, 2),
        max_out_degree=max_out,
        max_in_degree=max_in,
        max_inverted_list=graph.max_inverted_list_size(),
    )
