"""Data-graph substrate: directed node-labelled graphs.

The data model follows Definition 2.1 of the paper: a data graph is a
directed graph whose nodes carry a single label from a finite alphabet.
The package provides the core :class:`DataGraph` structure, a builder,
file I/O, synthetic generators, structural transforms (SCC condensation,
subgraph extraction) and synthetic stand-ins for the paper's datasets.
"""

from repro.graph.digraph import DataGraph
from repro.graph.builder import GraphBuilder
from repro.graph.generators import (
    random_labeled_graph,
    random_dag,
    layered_graph,
    power_law_graph,
    clustered_graph,
)
from repro.graph.transform import (
    condensation,
    induced_subgraph,
    node_prefix_subgraph,
    relabel_nodes,
    reverse_graph,
    graph_statistics,
    GraphStatistics,
)
from repro.graph.io import (
    write_edge_list,
    read_edge_list,
    write_labels,
    read_labels,
    save_graph,
    load_graph,
    save_graph_json,
    load_graph_json,
    load_graph_delta_json,
)
from repro.graph.datasets import (
    DatasetSpec,
    DATASET_SPECS,
    load_dataset,
    available_datasets,
)

__all__ = [
    "DataGraph",
    "GraphBuilder",
    "random_labeled_graph",
    "random_dag",
    "layered_graph",
    "power_law_graph",
    "clustered_graph",
    "condensation",
    "induced_subgraph",
    "node_prefix_subgraph",
    "relabel_nodes",
    "reverse_graph",
    "graph_statistics",
    "GraphStatistics",
    "write_edge_list",
    "read_edge_list",
    "write_labels",
    "read_labels",
    "save_graph",
    "load_graph",
    "save_graph_json",
    "load_graph_json",
    "load_graph_delta_json",
    "DatasetSpec",
    "DATASET_SPECS",
    "load_dataset",
    "available_datasets",
]
