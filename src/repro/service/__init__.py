"""Concurrent query service: admission control, pinned execution, streaming.

The serving layer on top of :mod:`repro.store`:

* :class:`QueryService` — a worker pool executing queries against pinned
  MVCC snapshots; batch execution (:meth:`~QueryService.run_batch`) pins
  one version for the whole batch, single submits pin the head at
  execution time.  Writes delegate to the store (synchronous
  :meth:`~QueryService.apply` or the background writer queue).
* **Admission control** — a bounded queue sheds on overload
  (:class:`~repro.exceptions.ServiceOverloadedError`), per-request
  deadlines shed stale queued work and clamp the running query's
  :class:`~repro.matching.result.Budget`, and
  :meth:`QueryTicket.cancel` unwinds a running query at its next budget
  checkpoint.
* :class:`StreamingResult` — paginated result iteration that holds its
  snapshot pin until the consumer finishes, so pagination never tears
  across versions.
* :class:`ServiceStats` — throughput, p50/p95/p99 latency, shed counts,
  per-version load; :meth:`QueryService.stats_snapshot` merges in the
  store gauges (pinned epochs, retained versions, GC count).

>>> with QueryService(graph, config=ServiceConfig(workers=4)) as service:
...     ticket = service.submit(query)            # admission-controlled
...     batch = service.run_batch(queries)        # one pinned version
...     service.apply(delta)                      # publishes a new head
...     service.stats_snapshot()["latency_p95_seconds"]
"""

from repro.service.service import (
    QueryService,
    QueryTicket,
    ServiceBatchReport,
    ServiceConfig,
    StreamingResult,
    TICKET_CANCELLED,
    TICKET_DONE,
    TICKET_FAILED,
    TICKET_QUEUED,
    TICKET_RUNNING,
    TICKET_SHED,
)
from repro.service.stats import ServiceStats

__all__ = [
    "QueryService",
    "QueryTicket",
    "ServiceBatchReport",
    "ServiceConfig",
    "ServiceStats",
    "StreamingResult",
    "TICKET_CANCELLED",
    "TICKET_DONE",
    "TICKET_FAILED",
    "TICKET_QUEUED",
    "TICKET_RUNNING",
    "TICKET_SHED",
]
