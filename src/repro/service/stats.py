"""Service-side observability: latency, throughput and shed counters."""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.obs.quantiles import Reservoir, percentile


class ServiceStats:
    """Thread-safe counters and a bounded latency reservoir.

    Latencies are recorded from admission to completion into a bounded
    uniform reservoir (:class:`~repro.obs.quantiles.Reservoir`) of
    ``latency_window`` samples, so percentiles describe the service's whole
    history in constant memory; percentiles are nearest-rank over the
    retained samples.  For queued submits (:meth:`QueryService.submit`)
    that includes queueing delay; for batch queries
    (:meth:`QueryService.run_batch`) admission and execution coincide, so
    the sample is the query's execution time.  Shed counters split by
    admission-control reason: ``queue_full`` (bounded queue at capacity at
    submit time) and ``deadline`` (the request expired before a worker
    picked it up).

    When a :class:`~repro.obs.metrics.MetricsRegistry` is bound via
    :meth:`bind_registry`, every recording also increments the shared
    ``service_*`` metric families; the registry counters are monotone and
    survive any local reuse of this object.
    """

    def __init__(self, latency_window: int = 4096) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._latencies = Reservoir(capacity=latency_window)
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.shed_queue_full = 0
        self.shed_deadline = 0
        self._status_counts: Dict[str, int] = {}
        self._version_counts: Dict[int, int] = {}
        self._m_submitted = None
        self._m_completed = None
        self._m_failed = None
        self._m_cancelled = None
        self._m_shed = None
        self._m_seconds = None

    # ------------------------------------------------------------------ #
    # registry mirroring
    # ------------------------------------------------------------------ #

    def bind_registry(self, registry) -> None:
        """Mirror every future recording into ``service_*`` families."""
        self._m_submitted = registry.counter(
            "service_submitted_total", "Requests admitted to the service queue"
        )
        self._m_completed = registry.counter(
            "service_completed_total",
            "Completed queries by terminal status",
            labelnames=("status",),
        )
        self._m_failed = registry.counter(
            "service_failed_total", "Queries that raised during execution"
        )
        self._m_cancelled = registry.counter(
            "service_cancelled_total", "Queries cancelled before or during execution"
        )
        self._m_shed = registry.counter(
            "service_shed_total",
            "Requests shed by admission control, by reason",
            labelnames=("reason",),
        )
        self._m_seconds = registry.histogram(
            "service_query_seconds", "Admission-to-completion query latency"
        )

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def note_submitted(self) -> None:
        with self._lock:
            self.submitted += 1
        if self._m_submitted is not None:
            self._m_submitted.inc()

    def note_completed(self, seconds: float, status: str, version: int) -> None:
        with self._lock:
            self.completed += 1
            self._latencies.add(seconds)
            self._status_counts[status] = self._status_counts.get(status, 0) + 1
            self._version_counts[version] = self._version_counts.get(version, 0) + 1
            if status == "cancelled":
                self.cancelled += 1
        if self._m_completed is not None:
            self._m_completed.labels(status).inc()
            self._m_seconds.observe(seconds)
            if status == "cancelled":
                self._m_cancelled.inc()

    def note_cancelled(self) -> None:
        """A request cancelled before it ever ran (no latency / version)."""
        with self._lock:
            self.cancelled += 1
        if self._m_cancelled is not None:
            self._m_cancelled.inc()

    def note_failed(self) -> None:
        with self._lock:
            self.failed += 1
        if self._m_failed is not None:
            self._m_failed.inc()

    def note_shed(self, reason: str) -> None:
        with self._lock:
            if reason == "deadline":
                self.shed_deadline += 1
            else:
                self.shed_queue_full += 1
        if self._m_shed is not None:
            self._m_shed.labels(reason if reason == "deadline" else "queue_full").inc()

    # ------------------------------------------------------------------ #
    # aggregates
    # ------------------------------------------------------------------ #

    @property
    def shed_count(self) -> int:
        """Total requests shed by admission control (both reasons)."""
        with self._lock:
            return self.shed_queue_full + self.shed_deadline

    @property
    def uptime_seconds(self) -> float:
        """Seconds since the stats object (the service) was created."""
        return time.monotonic() - self._started

    @property
    def throughput_qps(self) -> float:
        """Completed queries per second of service uptime."""
        uptime = self.uptime_seconds
        if uptime <= 0:
            return 0.0
        with self._lock:
            return self.completed / uptime

    def latency_percentile(self, fraction: float) -> float:
        """Nearest-rank end-to-end latency percentile over the reservoir."""
        with self._lock:
            samples: List[float] = self._latencies.samples()
        return percentile(samples, fraction)

    @property
    def p50(self) -> float:
        """Median end-to-end latency."""
        return self.latency_percentile(0.50)

    @property
    def p95(self) -> float:
        """95th-percentile end-to-end latency."""
        return self.latency_percentile(0.95)

    @property
    def p99(self) -> float:
        """99th-percentile end-to-end latency."""
        return self.latency_percentile(0.99)

    def versions_served(self) -> Dict[int, int]:
        """Mapping graph version -> completed query count (per-version load)."""
        with self._lock:
            return dict(self._version_counts)

    def status_counts(self) -> Dict[int, int]:
        """Mapping match status -> completed query count."""
        with self._lock:
            return dict(self._status_counts)

    def snapshot(self, extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """One JSON-serialisable view of every counter and percentile.

        ``extra`` (e.g. the owning service's store gauges: pinned epochs,
        head version, GC count) is merged into the result.
        """
        with self._lock:
            samples = self._latencies.samples()
            document: Dict[str, object] = {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "shed_queue_full": self.shed_queue_full,
                "shed_deadline": self.shed_deadline,
                "shed_count": self.shed_queue_full + self.shed_deadline,
                "status_counts": dict(self._status_counts),
                "versions_served": {
                    str(version): count
                    for version, count in sorted(self._version_counts.items())
                },
            }
        document["uptime_seconds"] = round(self.uptime_seconds, 6)
        document["throughput_qps"] = (
            round(document["completed"] / document["uptime_seconds"], 3)
            if document["uptime_seconds"] > 0
            else 0.0
        )
        document["latency_p50_seconds"] = round(percentile(samples, 0.50), 6)
        document["latency_p95_seconds"] = round(percentile(samples, 0.95), 6)
        document["latency_p99_seconds"] = round(percentile(samples, 0.99), 6)
        if extra:
            document.update(extra)
        return document

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServiceStats(completed={self.completed}, shed={self.shed_count}, "
            f"p50={self.p50 * 1000:.2f}ms)"
        )
