"""Concurrent query service over a versioned graph store.

:class:`QueryService` is the serving layer: a fixed worker pool executes
admitted queries against **pinned store snapshots**, so a query (or a whole
batch) always answers from one consistent graph version while the store
folds updates behind it.

Admission control
-----------------
The service holds a bounded queue.  At submit time, a request beyond
``queue_limit`` is **shed** immediately
(:class:`~repro.exceptions.ServiceOverloadedError`, reason
``"queue_full"``); a queued request whose deadline expires before a worker
picks it up is shed at dequeue (reason ``"deadline"``).  A running query is
bounded by its :class:`~repro.matching.result.Budget` — the service clamps
the budget's time limit to the request's remaining deadline and wires a
cancellation event through it, so the match loops' amortised checkpoints
(:meth:`BudgetClock.check_time`) observe both.

Results
-------
:meth:`QueryService.submit` returns a :class:`QueryTicket` future;
:meth:`QueryService.stream` returns a :class:`StreamingResult` whose pages
are **pipelined**: the worker feeds a bounded page queue as the matcher's
streaming iterator produces occurrences, so the first page is consumable
while the query is still enumerating.  The result holds its snapshot pin
until the consumer finishes (or abandons) paging, so pagination stays
consistent with the version the query ran on even if the head moves; a
consumer that walks away mid-stream cancels the producer and releases the
pin through the page generator's ``finally``.
"""

from __future__ import annotations

import itertools
import queue as queue_module
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple, Union

from repro.dynamic.delta import GraphDelta
from repro.dynamic.maintenance import ApplyReport
from repro.exceptions import ServiceOverloadedError, StoreError
from repro.graph.digraph import DataGraph
from repro.matching.result import Budget, MatchReport, MatchStatus
from repro.obs.context import TraceContext
from repro.obs.trace import NULL_TRACE
from repro.query.pattern import PatternQuery
from repro.session.batch import BatchReport
from repro.service.stats import ServiceStats
from repro.store.versioned import StoreSnapshot, VersionedGraphStore

#: Ticket lifecycle states.
TICKET_QUEUED = "queued"
TICKET_RUNNING = "running"
TICKET_DONE = "done"
TICKET_SHED = "shed"
TICKET_CANCELLED = "cancelled"
TICKET_FAILED = "failed"


@dataclass
class ServiceConfig:
    """Tuning knobs for a :class:`QueryService`."""

    #: Worker threads — also the maximum number of in-flight queries.
    workers: int = 4
    #: Bounded admission queue: submits beyond this many waiting requests
    #: are shed with reason ``"queue_full"``.
    queue_limit: int = 64
    #: Default end-to-end deadline per request (submit to completion);
    #: ``None`` disables deadline shedding/clamping.
    deadline_seconds: Optional[float] = None
    #: Default engine for requests that do not name one.
    default_engine: str = "GM"
    #: Default per-query budget (falls back to the store session's budget).
    default_budget: Optional[Budget] = None
    #: Sliding-window size of the latency reservoir.
    latency_window: int = 4096
    #: Backpressure depth of a streaming query's page queue: the producer
    #: runs at most this many pages ahead of the consumer before blocking.
    #: With ``keep_occurrences=False`` this bounds the stream's in-flight
    #: occurrence buffering to ``(stream_buffer_pages + 1) * page_size``;
    #: the default ``keep_occurrences=True`` additionally accumulates the
    #: full occurrence list worker-side for the final ``report()``.
    stream_buffer_pages: int = 4


class _StreamBuffer:
    """Bounded page queue between a streaming worker and its consumer.

    The worker calls :meth:`put_page` as pages fill (blocking once the
    consumer is ``max_pages`` behind — that backpressure is what bounds a
    stream's in-flight buffering) and the ticket's terminal transition
    calls :meth:`finish` exactly once.  The consumer iterates
    :meth:`pages`.  :meth:`abandon` (consumer walked away) unblocks a
    waiting producer and makes every later ``put_page`` a fast no-op.
    """

    _DONE = object()
    #: Producer poll period while blocked on a full queue (seconds); each
    #: wakeup re-checks abandonment so a stalled consumer never wedges a
    #: worker thread.
    _POLL_SECONDS = 0.05

    def __init__(self, max_pages: int) -> None:
        self._queue: "queue_module.Queue" = queue_module.Queue(maxsize=max(1, max_pages))
        self._abandoned = threading.Event()
        self._error: Optional[BaseException] = None
        self._finished = threading.Event()

    def put_page(self, page: Tuple[Tuple[int, ...], ...]) -> bool:
        """Enqueue one page; False once the consumer abandoned the stream."""
        while not self._abandoned.is_set():
            try:
                self._queue.put(page, timeout=self._POLL_SECONDS)
                return True
            except queue_module.Full:
                continue
        return False

    def finish(self, error: Optional[BaseException] = None) -> None:
        """Mark the stream complete (idempotent); wakes the consumer."""
        if self._finished.is_set():
            return
        self._error = error
        self._finished.set()
        while not self._abandoned.is_set():
            try:
                self._queue.put(self._DONE, timeout=self._POLL_SECONDS)
                return
            except queue_module.Full:
                continue

    def abandon(self) -> None:
        """Consumer-side teardown: unblock producer *and* consumer, drop pages.

        Besides unblocking a producer waiting on a full queue, this wakes a
        consumer blocked in :meth:`pages` from *another* thread (the wire
        server's pump threads page in an executor while the connection
        handler abandons from the event loop): the sentinel makes that
        consumer's ``get`` return immediately instead of waiting out its
        page timeout.
        """
        self._abandoned.set()
        while True:
            try:
                self._queue.get_nowait()
            except queue_module.Empty:
                break
        try:
            self._queue.put_nowait(self._DONE)
        except queue_module.Full:  # pragma: no cover - queue was just drained
            pass

    def pages(self, timeout: Optional[float] = None) -> Iterator[Tuple[Tuple[int, ...], ...]]:
        """Yield pages until the stream finishes; re-raises a failed ticket.

        ``timeout`` bounds the wait for *each* page; exceeding it raises
        :class:`TimeoutError` (same contract as :meth:`QueryTicket.result`).
        """
        while True:
            try:
                item = self._queue.get(timeout=timeout)
            except queue_module.Empty:
                raise TimeoutError(
                    f"no streamed page within {timeout}s"
                ) from None
            if item is self._DONE:
                if self._error is not None and not self._abandoned.is_set():
                    raise self._error
                return
            yield item


class QueryTicket:
    """A submitted query: future-style handle with cancellation.

    ``result()`` blocks until the query finishes and returns its
    :class:`MatchReport`; shed tickets raise
    :class:`~repro.exceptions.ServiceOverloadedError` and failed tickets
    re-raise the worker-side exception.  ``cancel()`` is cooperative: a
    queued ticket is dropped at dequeue, a running one unwinds at the
    match loop's next budget checkpoint (status
    :attr:`MatchStatus.CANCELLED`).
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        query: PatternQuery,
        engine: str,
        budget: Optional[Budget],
        deadline: Optional[float],
        snapshot: Optional[StoreSnapshot] = None,
        name: Optional[str] = None,
        page_size: Optional[int] = None,
        stream_buffer: Optional[_StreamBuffer] = None,
        keep_occurrences: bool = True,
    ) -> None:
        self.ticket_id = next(self._ids)
        self.name = name or query.name
        self.query = query
        self.engine = engine
        self.budget = budget
        self.deadline = deadline
        self.snapshot = snapshot
        #: Streaming execution: page size and the bounded page queue the
        #: worker feeds (None for plain submit-and-wait tickets).
        self.page_size = page_size
        self.stream_buffer = stream_buffer
        self.keep_occurrences = keep_occurrences
        self.submitted_at = time.monotonic()
        #: The query's distributed trace (a no-op :data:`NULL_TRACE` unless
        #: the owning service sampled this request or the caller forced a
        #: trace id through the wire protocol).
        self.trace = NULL_TRACE
        self.status = TICKET_QUEUED
        self.report: Optional[MatchReport] = None
        self.error: Optional[BaseException] = None
        self.pinned_version: Optional[int] = None
        self.seconds: Optional[float] = None
        self.cancel_event = threading.Event()
        self._done = threading.Event()
        self._callbacks: list = []
        self._callback_lock = threading.Lock()

    def cancel(self) -> None:
        """Request cooperative cancellation (idempotent)."""
        self.cancel_event.set()

    def add_done_callback(self, callback) -> None:
        """Run ``callback(ticket)`` once the ticket reaches a terminal state.

        The hook the wire server uses to drop finished tickets from its
        per-connection registry (so a dropped connection only has to cancel
        what is still in flight).  Registered on an already-terminal ticket
        the callback runs immediately, in the calling thread; otherwise it
        runs in the worker thread that finishes the ticket.  Callback
        exceptions are swallowed — a misbehaving observer must not corrupt
        the ticket's terminal transition.
        """
        with self._callback_lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        try:
            callback(self)
        except Exception:  # pragma: no cover - defensive
            pass

    @property
    def done(self) -> bool:
        """True once the ticket reached a terminal state."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until terminal (or ``timeout``); True if terminal."""
        return self._done.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> MatchReport:
        """The query's :class:`MatchReport` (blocking).

        Raises :class:`~repro.exceptions.ServiceOverloadedError` for shed
        tickets, the original exception for failed ones, and
        :class:`TimeoutError` if the ticket is not terminal in time.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(f"ticket {self.ticket_id} still {self.status}")
        if self.error is not None:
            raise self.error
        if self.report is None:  # defensive: every terminal path sets one
            raise StoreError(
                f"ticket {self.ticket_id} finished as {self.status} "
                "without a report"
            )
        return self.report

    # internal: terminal transitions (worker / service side only) -------- #

    def _finish(self, status: str, report=None, error=None) -> None:
        if self._done.is_set():
            # Already terminal: a late failure after a successful finish
            # (e.g. a post-completion bookkeeping error in the worker) must
            # not overwrite the delivered result.
            return
        self.status = status
        self.report = report
        self.error = error
        self.seconds = time.monotonic() - self.submitted_at
        self._done.set()
        if self.stream_buffer is not None:
            # Every terminal path — done, cancelled, shed at dequeue,
            # failed — wakes a paging consumer exactly once.
            self.stream_buffer.finish(error=error)
        with self._callback_lock:
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback(self)
            except Exception:  # pragma: no cover - defensive
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryTicket(#{self.ticket_id} {self.name!r}, {self.status})"


class _PageIterator:
    """Iterator over a :class:`StreamingResult`'s pages that cannot leak the pin.

    A plain generator only runs its ``finally`` once iteration *starts*: a
    caller that built ``result.pages()`` and walked away before the first
    ``next()`` would leave the ticket running and the snapshot pinned
    forever.  This object closes the owning result on exhaustion, on error,
    on :meth:`close` — and on garbage collection even if it was never
    advanced.
    """

    __slots__ = ("_result", "_inner", "_closed")

    def __init__(self, result: "StreamingResult", timeout: Optional[float]) -> None:
        self._result = result
        self._inner = result._buffer.pages(timeout)
        self._closed = False

    def __iter__(self) -> "_PageIterator":
        return self

    def __next__(self) -> Tuple[Tuple[int, ...], ...]:
        try:
            return next(self._inner)
        except BaseException:
            # StopIteration (exhaustion), TimeoutError, a re-raised ticket
            # error: every exit releases the pin and cancels a live producer.
            self.close()
            raise

    def close(self) -> None:
        """Stop paging: cancel a live producer, release the pin (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._inner.close()
        self._result.close()

    def __del__(self) -> None:  # pragma: no cover - exercised via gc in tests
        self.close()


@dataclass
class ServiceBatchReport(BatchReport):
    """A :class:`BatchReport` that also names the pinned graph version."""

    #: The store version every query of the batch was answered against.
    version: int = -1


class StreamingResult:
    """Pipelined, paginated iteration over one query's occurrences.

    Pages are fed by the executing worker through a bounded queue **as the
    matcher produces them**: the first page is consumable while the query
    is still enumerating, and a slow consumer exerts backpressure that
    caps the producer's lead at the queue depth (no unbounded buffering in
    the pipe).  The snapshot pin is held from submission until
    :meth:`close` (or exhaustion of :meth:`pages`, or context-manager
    exit, or the page generator being closed/garbage-collected after an
    abandoned ``for`` loop), so every page — no matter how slowly the
    consumer drains — describes the same graph version.  Closing before
    exhaustion cancels the producer cooperatively and releases the pin.
    """

    def __init__(self, ticket: QueryTicket, snapshot: StoreSnapshot, page_size: int) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        if ticket.stream_buffer is None:
            raise ValueError("ticket was not submitted with a stream buffer")
        self.ticket = ticket
        self.page_size = page_size
        self._buffer = ticket.stream_buffer
        self._snapshot = snapshot
        self._version = snapshot.version
        self._closed = False

    @property
    def version(self) -> int:
        """The pinned graph version the occurrences describe.

        Cached at pin time so it stays readable after the pin is released.
        """
        return self._version

    def report(self, timeout: Optional[float] = None) -> MatchReport:
        """The finalised :class:`MatchReport` (blocks until the query ends).

        Unlike :meth:`pages` this waits for the *whole* evaluation; with
        ``keep_occurrences=False`` at submission the report carries counts
        and timings but an empty occurrence list.
        """
        return self.ticket.result(timeout)

    def pages(self, timeout: Optional[float] = None) -> "_PageIterator":
        """Yield occurrence pages of ``page_size`` as they are produced.

        The first page arrives as soon as the worker fills it — before the
        query finishes.  ``timeout`` bounds the wait per page
        (:class:`TimeoutError`); a shed or failed ticket re-raises its
        error here.  Exhaustion, an error, or abandonment (closing the
        iterator / breaking out of the loop and dropping it — even before
        the first ``next()``) all release the snapshot pin and cancel a
        still-running producer.
        """
        return _PageIterator(self, timeout)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        """Yield occurrences one by one; releases the pin at the end."""
        for page in self.pages():
            for occurrence in page:
                yield occurrence

    def close(self) -> None:
        """Cancel if still running and release the snapshot pin (idempotent)."""
        if not self._closed:
            self._closed = True
            if not self.ticket.done:
                self.ticket.cancel()
            self._buffer.abandon()
            self._snapshot.release()

    def __enter__(self) -> "StreamingResult":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (
            f"StreamingResult(#{self.ticket.ticket_id} v{self._version}, "
            f"page_size={self.page_size}, {state})"
        )


class QueryService:
    """Admission-controlled concurrent query execution over a store.

    Parameters
    ----------
    store:
        A :class:`VersionedGraphStore`, or a plain :class:`DataGraph` /
        :class:`~repro.session.QuerySession` (a store is created and owned;
        it is closed with the service).
    config:
        A :class:`ServiceConfig`; defaults are serving-friendly.

    The service starts its worker pool immediately and is a context
    manager; :meth:`close` drains the backlog and stops the workers.
    """

    def __init__(
        self,
        store: Union[VersionedGraphStore, DataGraph, "QuerySession"],
        config: Optional[ServiceConfig] = None,
        telemetry=None,
        **store_kwargs,
    ) -> None:
        if isinstance(store, VersionedGraphStore):
            self.store = store
            self._owns_store = False
        else:
            self.store = VersionedGraphStore(store, **store_kwargs)
            self._owns_store = True
        self.config = config or ServiceConfig()
        if self.config.workers < 1:
            raise ValueError("service needs at least one worker")
        self.stats = ServiceStats(latency_window=self.config.latency_window)
        self._queue: "queue_module.Queue" = queue_module.Queue()
        self._admission_lock = threading.Lock()
        self._queued = 0
        self._busy = 0
        self._closed = False
        self.telemetry = None
        self._m_engine_queries = None
        self._m_engine_seconds = None
        self._m_engine_candidates = None
        self._m_engine_intersections = None
        self.bind_telemetry(telemetry)
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"query-service-worker-{index}", daemon=True
            )
            for index in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #

    def bind_telemetry(self, telemetry) -> None:
        """Wire this service into a :class:`~repro.obs.Telemetry` context.

        Binds the stats mirror, registers the engine-side metric families,
        and exposes the live queue depth / worker occupancy as callback
        gauges (sampled only when the registry is snapshotted — the hot
        path pays nothing for them).  ``None`` is a no-op; rebinding
        replaces the gauge callbacks and reuses existing families.
        """
        if telemetry is None:
            return
        self.telemetry = telemetry
        registry = telemetry.registry
        self.stats.bind_registry(registry)
        registry.gauge(
            "service_queue_depth",
            "Requests waiting in the bounded admission queue",
            fn=lambda: self._queued,
        )
        registry.gauge(
            "service_workers_busy",
            "Worker threads currently executing a query",
            fn=lambda: self._busy,
        )
        registry.gauge(
            "service_workers_total",
            "Size of the worker pool",
            fn=lambda: self.config.workers,
        )
        self._m_engine_queries = registry.counter(
            "engine_queries_total",
            "Queries executed, by matching engine",
            labelnames=("engine",),
        )
        self._m_engine_seconds = registry.histogram(
            "engine_query_seconds",
            "Worker-side engine execution latency",
            labelnames=("engine",),
        )
        self._m_engine_candidates = registry.counter(
            "engine_candidates_total",
            "Candidate vertices scanned by the multi-way join",
        )
        self._m_engine_intersections = registry.counter(
            "engine_intersections_total",
            "Adjacency/candidate-set intersections performed by the multi-way join",
        )

    # ------------------------------------------------------------------ #
    # admission + submission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        query: PatternQuery,
        engine: Optional[str] = None,
        budget: Optional[Budget] = None,
        deadline_seconds: Optional[float] = None,
        name: Optional[str] = None,
        snapshot: Optional[StoreSnapshot] = None,
        page_size: Optional[int] = None,
        keep_occurrences: bool = True,
        trace_id: Optional[str] = None,
    ) -> QueryTicket:
        """Admit one query for asynchronous execution.

        Raises :class:`~repro.exceptions.ServiceOverloadedError`
        (``reason="queue_full"``) when the bounded queue is at capacity —
        the request is shed *before* queuing, which is what keeps tail
        latency bounded under overload.  ``snapshot`` pins the execution
        to an explicitly pinned epoch (the caller keeps ownership of the
        pin); by default each query pins the head at execution time.

        ``page_size`` switches the ticket to streaming execution: the
        worker feeds occurrence pages into a bounded queue as they are
        produced (see :meth:`stream`, which wraps this in a
        :class:`StreamingResult`).  ``keep_occurrences=False`` makes the
        final report count-only — pages still flow, but the worker never
        accumulates the full occurrence list.

        ``trace_id`` forces end-to-end tracing for this request regardless
        of the telemetry sample rate (the wire server passes the client's
        propagated id through here); without it the service's
        :class:`~repro.obs.trace.Tracer` decides by sampling.
        """
        self.stats.note_submitted()
        effective_deadline = (
            deadline_seconds
            if deadline_seconds is not None
            else self.config.deadline_seconds
        )
        deadline = (
            time.monotonic() + effective_deadline
            if effective_deadline is not None
            else None
        )
        stream_buffer = None
        if page_size is not None:
            if page_size <= 0:
                raise ValueError(f"page_size must be positive, got {page_size}")
            stream_buffer = _StreamBuffer(self.config.stream_buffer_pages)
        ticket = QueryTicket(
            query,
            engine=engine or self.config.default_engine,
            budget=budget or self.config.default_budget,
            deadline=deadline,
            snapshot=snapshot,
            name=name,
            page_size=page_size,
            stream_buffer=stream_buffer,
            keep_occurrences=keep_occurrences,
        )
        if self.telemetry is not None:
            # Callers inside a distributed trace may hand the whole
            # context; the service's per-query trace keys on the id alone.
            if isinstance(trace_id, TraceContext):
                trace_id = trace_id.trace_id
            ticket.trace = self.telemetry.tracer.trace(
                "query", trace_id=trace_id
            )
            ticket.trace.annotate(query=ticket.name, engine=ticket.engine)
        with self._admission_lock:
            if self._closed:
                raise StoreError("service is closed")
            if self._queued >= self.config.queue_limit:
                self.stats.note_shed("queue_full")
                ticket._finish(
                    TICKET_SHED,
                    error=ServiceOverloadedError(
                        "queue_full",
                        f"{self._queued} queued >= limit {self.config.queue_limit}",
                        queue_depth=self._queued,
                        workers_busy=self._busy,
                        workers_total=self.config.workers,
                    ),
                )
                raise ticket.error
            self._queued += 1
            # Enqueue under the admission lock — the same lock close() holds
            # while putting the worker shutdown sentinels — so an admitted
            # ticket can never land behind a sentinel and starve.
            self._queue.put(ticket)
        return ticket

    def query(
        self,
        query: PatternQuery,
        engine: Optional[str] = None,
        budget: Optional[Budget] = None,
        deadline_seconds: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> MatchReport:
        """Synchronous convenience: submit and wait for the report."""
        return self.submit(
            query, engine=engine, budget=budget, deadline_seconds=deadline_seconds
        ).result(timeout)

    def stream(
        self,
        query: PatternQuery,
        engine: Optional[str] = None,
        budget: Optional[Budget] = None,
        page_size: int = 256,
        deadline_seconds: Optional[float] = None,
        keep_occurrences: bool = True,
        trace_id: Optional[str] = None,
    ) -> StreamingResult:
        """Submit a query and page through its results as they are found.

        True pipelined streaming: the worker pushes each page into the
        result's bounded queue the moment the matcher has produced
        ``page_size`` occurrences, so the first page is available *before*
        the query completes, and a slow consumer throttles the producer
        instead of growing an unbounded pipe.  Pass
        ``keep_occurrences=False`` for a strictly memory-bounded stream —
        by default the worker also accumulates the occurrence list so
        :meth:`StreamingResult.report` stays complete.  The whole stream
        is pinned to one version; dropping out early cancels the query and
        releases the pin.
        """
        snapshot = self.store.pin()
        try:
            ticket = self.submit(
                query,
                engine=engine,
                budget=budget,
                deadline_seconds=deadline_seconds,
                snapshot=snapshot,
                page_size=page_size,
                keep_occurrences=keep_occurrences,
                trace_id=trace_id,
            )
        except Exception:
            snapshot.release()
            raise
        return StreamingResult(ticket, snapshot, page_size)

    # ------------------------------------------------------------------ #
    # batches
    # ------------------------------------------------------------------ #

    def run_batch(
        self,
        queries: Union[Mapping[str, PatternQuery], Iterable[PatternQuery]],
        engine: Optional[str] = None,
        budget: Optional[Budget] = None,
        workers: Optional[int] = None,
        keep_occurrences: bool = True,
        snapshot: Optional[StoreSnapshot] = None,
    ) -> ServiceBatchReport:
        """Execute a whole batch against one pinned version.

        The batch pins the head (or runs inside the caller's ``snapshot``)
        and fans out over the epoch session's thread pool; every query of
        the batch is therefore answered from the same graph version even
        while the store publishes new heads.  The report carries that
        version alongside the usual latency/throughput aggregates.
        """
        own_pin = snapshot is None
        snap = snapshot or self.store.pin()
        try:
            report = snap.run_batch(
                queries,
                engine=engine or self.config.default_engine,
                workers=workers if workers is not None else self.config.workers,
                budget=budget or self.config.default_budget,
                keep_occurrences=keep_occurrences,
            )
            for outcome in report.outcomes:
                self.stats.note_submitted()
                self.stats.note_completed(outcome.seconds, outcome.status, snap.version)
            return ServiceBatchReport(
                engine=report.engine,
                outcomes=report.outcomes,
                wall_seconds=report.wall_seconds,
                workers=report.workers,
                cache_hits=report.cache_hits,
                cache_misses=report.cache_misses,
                version=snap.version,
            )
        finally:
            if own_pin:
                snap.release()

    # ------------------------------------------------------------------ #
    # writes (delegated to the store)
    # ------------------------------------------------------------------ #

    def apply(self, delta: GraphDelta, materialize: bool = True) -> ApplyReport:
        """Fold a delta synchronously (see :meth:`VersionedGraphStore.apply`)."""
        return self.store.apply(delta, materialize=materialize)

    def apply_async(self, delta: GraphDelta, materialize: bool = True):
        """Queue a delta on the store's background writer; returns a future."""
        return self.store.apply_async(delta, materialize=materialize)

    # ------------------------------------------------------------------ #
    # worker pool
    # ------------------------------------------------------------------ #

    def _worker_loop(self) -> None:
        while True:
            ticket = self._queue.get()
            try:
                if ticket is None:
                    return
                with self._admission_lock:
                    self._queued -= 1
                    self._busy += 1
                try:
                    self._execute(ticket)
                finally:
                    with self._admission_lock:
                        self._busy -= 1
            finally:
                self._queue.task_done()

    def _execute(self, ticket: QueryTicket) -> None:
        now = time.monotonic()
        if ticket.cancel_event.is_set():
            # Cancelled while still queued: never ran, so don't record a
            # completion (no latency sample, no per-version count) — just
            # the cancellation.  result() still returns a CANCELLED report.
            ticket._finish(
                TICKET_CANCELLED,
                report=MatchReport(
                    query_name=ticket.query.name,
                    algorithm=ticket.engine,
                    status=MatchStatus.CANCELLED,
                ),
            )
            self.stats.note_cancelled()
            return
        if ticket.deadline is not None and now > ticket.deadline:
            self.stats.note_shed("deadline")
            with self._admission_lock:
                queue_depth, busy = self._queued, self._busy
            ticket._finish(
                TICKET_SHED,
                error=ServiceOverloadedError(
                    "deadline",
                    f"expired {now - ticket.deadline:.3f}s before execution",
                    queue_depth=queue_depth,
                    workers_busy=busy,
                    workers_total=self.config.workers,
                ),
            )
            return
        ticket.status = TICKET_RUNNING
        queue_wait = now - ticket.submitted_at
        own_pin = ticket.snapshot is None
        try:
            pin_started = time.perf_counter()
            snapshot = ticket.snapshot or self.store.pin()
            pin_seconds = time.perf_counter() - pin_started
        except StoreError as exc:  # closed mid-flight
            ticket._finish(TICKET_FAILED, error=exc)
            self.stats.note_failed()
            return
        try:
            session = snapshot.session
            budget = (
                (ticket.budget or session.budget)
                .with_deadline(ticket.deadline)
                .with_cancel_event(ticket.cancel_event)
            )
            run_started = time.perf_counter()
            if ticket.stream_buffer is not None:
                report = self._run_streaming(ticket, session, budget)
            else:
                report = session.query(ticket.query, engine=ticket.engine, budget=budget)
            run_seconds = time.perf_counter() - run_started
            # Cache the version BEFORE finishing the ticket: _finish wakes
            # the consumer, whose prompt close() may release the snapshot,
            # after which snapshot.version raises StoreError.
            version = snapshot.version
            ticket.pinned_version = version
            self._record_engine_metrics(ticket.engine, run_seconds, report)
            self._finish_trace(
                ticket, report, version, queue_wait, pin_seconds, run_seconds
            )
            if report.status is MatchStatus.CANCELLED:
                ticket._finish(TICKET_CANCELLED, report=report)
            else:
                ticket._finish(TICKET_DONE, report=report)
            self.stats.note_completed(ticket.seconds, report.status.value, version)
            self._record_slow_query(ticket, report, version)
        except Exception as exc:  # engine/user errors surface via result()
            if ticket.cancel_event.is_set():
                # A cancel that landed mid-setup (e.g. StreamingResult.close()
                # released the caller's pin while this worker was starting)
                # is a cancellation, not a failure.
                ticket._finish(
                    TICKET_CANCELLED,
                    report=MatchReport(
                        query_name=ticket.query.name,
                        algorithm=ticket.engine,
                        status=MatchStatus.CANCELLED,
                    ),
                )
                self.stats.note_cancelled()
            else:
                ticket._finish(TICKET_FAILED, error=exc)
                self.stats.note_failed()
        finally:
            if own_pin:
                snapshot.release()

    def _run_streaming(self, ticket: QueryTicket, session, budget: Budget) -> MatchReport:
        """Drive one streaming ticket: pump pages as matches are produced.

        The matcher's :class:`~repro.matching.stream.MatchStream` is
        consumed one occurrence at a time; every ``page_size`` occurrences
        a page is pushed into the ticket's bounded buffer (blocking on a
        slow consumer — that backpressure *is* the memory bound).  A
        consumer that abandons the stream flips the buffer, which stops
        the pump and closes the match stream, cancelling the engine's
        enumeration mid-search.
        """
        stream = session.stream(
            ticket.query,
            engine=ticket.engine,
            budget=budget,
            keep_occurrences=ticket.keep_occurrences,
        )
        buffer = ticket.stream_buffer
        page_size = ticket.page_size or 1
        page: list = []
        abandoned = False
        with stream:
            for occurrence in stream:
                page.append(occurrence)
                if len(page) >= page_size:
                    if not buffer.put_page(tuple(page)):
                        abandoned = True
                        break
                    page = []
            if not abandoned and page:
                buffer.put_page(tuple(page))
        # Exiting the ``with`` closed the stream: an abandoned (still-live)
        # evaluation finalises as CANCELLED, a finished one keeps its
        # terminal status.  No drain — the matches already produced are
        # exactly what the consumer saw.
        return stream.report(drain=False)

    # ------------------------------------------------------------------ #
    # telemetry recording (worker side)
    # ------------------------------------------------------------------ #

    def _record_engine_metrics(self, engine: str, run_seconds: float, report) -> None:
        """Mirror one finished report into the ``engine_*`` families."""
        if self._m_engine_queries is None:
            return
        self._m_engine_queries.labels(engine).inc()
        self._m_engine_seconds.labels(engine).observe(run_seconds)
        mjoin = report.extra.get("mjoin")
        if isinstance(mjoin, dict):
            candidates = int(mjoin.get("candidates", 0))
            intersections = int(mjoin.get("intersections", 0))
            if candidates:
                self._m_engine_candidates.inc(candidates)
            if intersections:
                self._m_engine_intersections.inc(intersections)

    def _finish_trace(
        self,
        ticket: QueryTicket,
        report,
        version: int,
        queue_wait: float,
        pin_seconds: float,
        run_seconds: float,
    ) -> None:
        """Synthesise the query's span tree and attach it to the report.

        The stage breakdown is reconstructed from the engine's own timings:
        ``plan`` is the matcher's preparation+search phase
        (``matching_seconds``), ``index_build`` the session-side artifact
        precompute if one ran, ``first_match`` the gap between planning
        and the first streamed occurrence, and ``stream_drain`` the
        remainder of worker-side execution — so the children always sum to
        ``queue_wait + pin + run`` and the tree stays within a few percent
        of the root's wall clock.  The server later appends its
        ``wire_encode`` span and re-finishes the same trace.
        """
        trace = ticket.trace
        if not trace:
            return
        extra = report.extra
        plan = float(report.matching_seconds or 0.0)
        index_build = float(extra.get("precompute_seconds") or 0.0)
        first_match_at = extra.get("first_match_seconds")
        first_match = (
            max(0.0, float(first_match_at) - plan)
            if first_match_at is not None
            else 0.0
        )
        stream_drain = max(0.0, run_seconds - plan - index_build - first_match)
        trace.add_span("queue_wait", queue_wait)
        trace.add_span("pin", pin_seconds)
        trace.add_span("plan", plan)
        if index_build:
            trace.add_span("index_build", index_build)
        if first_match_at is not None:
            trace.add_span("first_match", first_match)
        trace.add_span("stream_drain", stream_drain)
        trace.annotate(
            status=report.status.value,
            version=version,
            num_matches=report.num_matches,
        )
        plan_digest = report.extra.get("plan_digest")
        if plan_digest:
            trace.annotate(plan_digest=plan_digest)
        trace.finish()
        extra["trace"] = trace.to_dict()

    def _record_slow_query(self, ticket: QueryTicket, report, version: int) -> None:
        """Append one structured entry to the slow-query log if over threshold."""
        if self.telemetry is None:
            return
        log = self.telemetry.slow_log
        if not log.enabled or ticket.seconds is None:
            return
        log.record(
            ticket.seconds,
            query=ticket.name,
            engine=ticket.engine,
            status=report.status.value,
            num_matches=report.num_matches,
            version=version,
            trace_id=ticket.trace.trace_id,
            plan_digest=report.extra.get("plan_digest"),
            trace=ticket.trace.to_dict(),
        )

    def stats_snapshot(self) -> Dict[str, object]:
        """Service counters merged with the store's version-chain gauges."""
        return self.stats.snapshot(
            extra={
                "head_version": self.store.head_version,
                "pinned_epochs": self.store.pinned_epoch_count,
                "versions_retained": self.store.num_versions_retained,
                "store": self.store.stats.snapshot(),
            }
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drain the backlog, stop the workers, close an owned store.

        The shutdown sentinels are enqueued under the admission lock — the
        lock :meth:`submit` enqueues under — so every admitted ticket sits
        ahead of them in the FIFO queue and is executed before the workers
        exit.
        """
        with self._admission_lock:
            if self._closed:
                return
            self._closed = True
            for _worker in self._workers:
                self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=30.0)
        if self._owns_store:
            self.store.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryService(workers={self.config.workers}, "
            f"head=v{self.store.head_version}, "
            f"completed={self.stats.completed})"
        )
