"""The EXPLAIN plan document: operators, estimates, actuals, renderer.

A :class:`QueryPlan` is the structured answer to "what will (or did) this
query do?".  It is produced in two modes:

* **EXPLAIN** (``analyze=False``) — plan only, nothing executes.  The plan
  captures the chosen ordering strategy and vertex order, per-operator
  cardinality *estimates* (RIG candidate-set sizes, catalog statistics,
  edge-partition sizes — whatever the engine's own planner consulted), and
  which shared artifacts (reachability index, expanded graph, catalog,
  partitions) each step will use.
* **EXPLAIN ANALYZE** (``analyze=True``) — the query runs with lightweight
  per-operator counters threaded through the enumeration loops, and every
  operator additionally carries *actuals*: rows emitted, candidates
  examined, intersections performed.  The root operator's actual row count
  reconciles exactly with the :class:`~repro.matching.result.MatchReport`
  the same execution would have produced.

The document round-trips losslessly through JSON (:meth:`QueryPlan.to_wire`
/ :meth:`QueryPlan.from_wire` — that is what the ``explain`` wire op
ships), and renders deterministically as a pg-style indented tree with
estimate-vs-actual columns (:meth:`QueryPlan.render`).

Plans are identified by a :meth:`QueryPlan.digest` — a stable hash over the
plan *shape* (engine, ordering strategy, vertex order), not over data-
dependent estimates.  The GM matcher stamps the same digest into
``report.extra["plan_digest"]`` at execution time, so a slow-query-log
entry can be joined against an analyzed plan after the fact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


def plan_digest(engine: str, ordering: Optional[str], order: Optional[Sequence[int]]) -> str:
    """A stable 12-hex-char digest of a plan's identity.

    The identity is the *choice* the planner made — engine, ordering
    strategy, vertex order — not the data-dependent cardinality estimates,
    so the digest of a query's plan is stable across graph versions that
    do not change the chosen plan.
    """
    canonical = json.dumps(
        {
            "engine": engine,
            "ordering": ordering,
            "order": list(order) if order is not None else None,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


@dataclass
class PlanOperator:
    """One node of the operator tree.

    ``op`` is the machine-readable operator kind (see the glossary in
    ``docs/architecture.md``); ``label`` the human-readable variant shown
    by :meth:`QueryPlan.render`.  ``estimate`` is the planner's row/
    candidate cardinality estimate (``None`` when the planner has no
    statistic for this operator); ``actual`` holds the ANALYZE counters
    (empty in plan-only mode).
    """

    op: str
    label: str
    estimate: Optional[int] = None
    details: Dict[str, object] = field(default_factory=dict)
    children: List["PlanOperator"] = field(default_factory=list)
    actual: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {"op": self.op, "label": self.label}
        if self.estimate is not None:
            document["estimate"] = self.estimate
        if self.details:
            document["details"] = dict(self.details)
        if self.actual:
            document["actual"] = dict(self.actual)
        if self.children:
            document["children"] = [child.to_dict() for child in self.children]
        return document

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PlanOperator":
        return cls(
            op=str(payload["op"]),
            label=str(payload["label"]),
            estimate=payload.get("estimate"),  # type: ignore[arg-type]
            details=dict(payload.get("details") or {}),  # type: ignore[arg-type]
            children=[
                cls.from_dict(child) for child in payload.get("children") or ()  # type: ignore[union-attr]
            ],
            actual=dict(payload.get("actual") or {}),  # type: ignore[arg-type]
        )

    def walk(self):
        """Pre-order iteration over this operator and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class QueryPlan:
    """The full EXPLAIN document for one query on one engine."""

    query: str
    engine: str
    analyze: bool
    root: PlanOperator
    ordering: Optional[str] = None
    vertex_order: Optional[List[int]] = None
    artifacts: Dict[str, object] = field(default_factory=dict)
    execution: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #

    def digest(self) -> str:
        """Stable plan-shape digest (joins slow-log entries to plans)."""
        return plan_digest(self.engine, self.ordering, self.vertex_order)

    # ------------------------------------------------------------------ #
    # JSON codec (also the wire form)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "query": self.query,
            "engine": self.engine,
            "analyze": self.analyze,
            "digest": self.digest(),
            "root": self.root.to_dict(),
        }
        if self.ordering is not None:
            document["ordering"] = self.ordering
        if self.vertex_order is not None:
            document["vertex_order"] = list(self.vertex_order)
        if self.artifacts:
            document["artifacts"] = dict(self.artifacts)
        if self.execution:
            document["execution"] = dict(self.execution)
        return document

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "QueryPlan":
        vertex_order = payload.get("vertex_order")
        return cls(
            query=str(payload["query"]),
            engine=str(payload["engine"]),
            analyze=bool(payload.get("analyze", False)),
            root=PlanOperator.from_dict(payload["root"]),  # type: ignore[arg-type]
            ordering=payload.get("ordering"),  # type: ignore[arg-type]
            vertex_order=list(vertex_order) if vertex_order is not None else None,  # type: ignore[arg-type]
            artifacts=dict(payload.get("artifacts") or {}),  # type: ignore[arg-type]
            execution=dict(payload.get("execution") or {}),  # type: ignore[arg-type]
        )

    def to_wire(self) -> Dict[str, object]:
        """The frame payload of the ``explain`` wire op."""
        return self.to_dict()

    @classmethod
    def from_wire(cls, payload: Dict[str, object]) -> "QueryPlan":
        return cls.from_dict(payload)

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #

    def render(self) -> str:
        """Deterministic pg-style indented tree with est-vs-actual columns.

        The output depends only on the plan document (no timestamps, no
        hashes beyond the digest, stable key order), so golden tests can
        compare it verbatim.
        """
        mode = "EXPLAIN ANALYZE" if self.analyze else "EXPLAIN"
        header = f"{mode}  query={self.query}  engine={self.engine}"
        if self.ordering is not None:
            header += f"  ordering={self.ordering}"
        header += f"  digest={self.digest()}"
        lines = [header]
        if self.vertex_order is not None:
            lines.append(
                "  vertex order: " + " -> ".join(str(node) for node in self.vertex_order)
            )
        if self.artifacts:
            rendered = " ".join(
                f"{key}={_render_value(self.artifacts[key])}"
                for key in sorted(self.artifacts)
            )
            lines.append(f"  artifacts: {rendered}")
        lines.extend(self._render_operator(self.root, depth=0))
        if self.execution:
            rendered = "  ".join(
                f"{key}={_render_value(self.execution[key])}"
                for key in sorted(self.execution)
            )
            lines.append(f"  execution: {rendered}")
        return "\n".join(lines)

    def _render_operator(self, operator: PlanOperator, depth: int) -> List[str]:
        indent = "  " + "    " * depth
        prefix = "" if depth == 0 else "->  "
        columns = []
        if operator.estimate is not None:
            columns.append(f"est={operator.estimate}")
        if self.analyze:
            rows = operator.actual.get("rows")
            columns.append(f"act={rows if rows is not None else '-'}")
            extras = [
                f"{key}={_render_value(operator.actual[key])}"
                for key in sorted(operator.actual)
                if key != "rows"
            ]
            columns.extend(extras)
        suffix = f"  ({', '.join(columns)})" if columns else ""
        lines = [f"{indent}{prefix}{operator.label}{suffix}"]
        for child in operator.children:
            lines.extend(self._render_operator(child, depth + 1))
        return lines


def _render_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6f}".rstrip("0").rstrip(".")
    return str(value)
