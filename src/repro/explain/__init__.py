"""EXPLAIN / EXPLAIN ANALYZE: query-plan introspection and profiling.

The plan document lives here (:class:`QueryPlan`, :class:`PlanOperator`,
:func:`plan_digest`); the builders live with the code they introspect —
:meth:`repro.matching.gm.GraphMatcher.explain` for the GM pipeline,
:meth:`repro.engines.base.Engine.explain` for the alternative engines, and
:meth:`repro.session.QuerySession.explain` /
:meth:`repro.api.GraphDB.explain` as the cache-aware entry points.
"""

from repro.explain.plan import PlanOperator, QueryPlan, plan_digest

__all__ = ["PlanOperator", "QueryPlan", "plan_digest"]
