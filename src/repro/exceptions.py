"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for invalid data-graph construction or access."""


class QueryError(ReproError):
    """Raised for malformed pattern queries (bad edges, labels, parse errors)."""


class QueryParseError(QueryError):
    """Raised when the textual query DSL cannot be parsed."""


class ReachabilityError(ReproError):
    """Raised for invalid reachability-index construction or usage."""


class MatchingError(ReproError):
    """Raised for errors during pattern-matching execution."""


class BudgetExceeded(MatchingError):
    """Raised internally when a query exceeds its configured budget.

    The budget can be a wall-clock time limit, a cap on the number of
    enumerated matches, or a cap on intermediate-result size (the library's
    stand-in for the out-of-memory failures reported in the paper).
    Public APIs catch this exception and report the outcome through
    :class:`repro.matching.result.MatchReport` rather than letting it escape.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(f"budget exceeded: {reason}" + (f" ({detail})" if detail else ""))
        self.reason = reason
        self.detail = detail


class TimeoutExceeded(BudgetExceeded):
    """Raised when a query runs past its wall-clock budget."""

    def __init__(self, limit_seconds: float) -> None:
        super().__init__("timeout", f"limit={limit_seconds}s")
        self.limit_seconds = limit_seconds


class MemoryBudgetExceeded(BudgetExceeded):
    """Raised when intermediate results exceed the configured cap.

    This models the out-of-memory failures that the join-based baseline (JM)
    and some engines exhibit in the paper's experiments.
    """

    def __init__(self, limit_items: int) -> None:
        super().__init__("memory", f"limit={limit_items} intermediate tuples")
        self.limit_items = limit_items


class EngineError(ReproError):
    """Raised by the comparator query engines for unsupported operations."""
