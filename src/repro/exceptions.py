"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for invalid data-graph construction or access."""


class QueryError(ReproError):
    """Raised for malformed pattern queries (bad edges, labels, parse errors)."""


class QueryParseError(QueryError):
    """Raised when the textual query DSL cannot be parsed."""


class ReachabilityError(ReproError):
    """Raised for invalid reachability-index construction or usage."""


class MatchingError(ReproError):
    """Raised for errors during pattern-matching execution."""


class BudgetExceeded(MatchingError):
    """Raised internally when a query exceeds its configured budget.

    The budget can be a wall-clock time limit, a cap on the number of
    enumerated matches, or a cap on intermediate-result size (the library's
    stand-in for the out-of-memory failures reported in the paper).
    Public APIs catch this exception and report the outcome through
    :class:`repro.matching.result.MatchReport` rather than letting it escape.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(f"budget exceeded: {reason}" + (f" ({detail})" if detail else ""))
        self.reason = reason
        self.detail = detail


class TimeoutExceeded(BudgetExceeded):
    """Raised when a query runs past its wall-clock budget."""

    def __init__(self, limit_seconds: float) -> None:
        super().__init__("timeout", f"limit={limit_seconds}s")
        self.limit_seconds = limit_seconds


class MemoryBudgetExceeded(BudgetExceeded):
    """Raised when intermediate results exceed the configured cap.

    This models the out-of-memory failures that the join-based baseline (JM)
    and some engines exhibit in the paper's experiments.
    """

    def __init__(self, limit_items: int) -> None:
        super().__init__("memory", f"limit={limit_items} intermediate tuples")
        self.limit_items = limit_items


class QueryCancelled(BudgetExceeded):
    """Raised when a query is cancelled cooperatively mid-evaluation.

    The query service sets a cancellation event on the query's
    :class:`repro.matching.result.Budget`; the amortised budget clock
    observes it at the next checkpoint inside the match loops and unwinds
    the evaluation.  Public APIs report the outcome as
    :attr:`repro.matching.result.MatchStatus.CANCELLED`.
    """

    def __init__(self, detail: str = "") -> None:
        super().__init__("cancelled", detail)


class EngineError(ReproError):
    """Raised by the comparator query engines for unsupported operations."""


class StaleIndexError(EngineError):
    """Raised when an engine is handed an index built for another graph version.

    A shared cache (a :class:`~repro.session.QuerySession`, or a pinned
    store snapshot) may outlive a graph update; injecting its
    closure-expanded graph into an engine bound to a newer graph would
    silently produce answers for the wrong data.  The error names both
    monotone versions so the mismatch is diagnosable.
    """

    def __init__(
        self,
        engine: str,
        artifact: str,
        expected_version: int,
        found_version: int,
        detail: str = "",
    ) -> None:
        message = (
            f"{engine}: injected {artifact} is stale "
            f"(built for graph version {found_version}, data graph is "
            f"version {expected_version})"
        )
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.engine = engine
        self.artifact = artifact
        self.expected_version = expected_version
        self.found_version = found_version


class StoreError(ReproError):
    """Raised for invalid versioned-graph-store operations.

    Typical causes: applying a delta through a frozen per-version session
    instead of the owning store, or using a snapshot after it was released.
    """


class WalError(StoreError):
    """Raised for corrupt or inconsistent write-ahead-log state.

    Typical causes: a journal frame whose body is valid-length but not
    JSON (real corruption, as opposed to the torn tail a crash leaves —
    that is repaired silently), a replayed delta producing a version the
    journal entry did not announce, or initialising durable storage over
    a directory that already holds a tenant.
    """


class ReplicationError(StoreError):
    """Raised for replication-subsystem failures.

    Typical causes: subscribing to the delta log of a tenant that has no
    write-ahead log to ship, a log-shipping subscription falling so far
    behind that its frame buffer overflowed, or routing a request to a
    topology with no node able to serve it.
    """


class ReadOnlyReplicaError(ReplicationError):
    """Raised when a write operation is sent to a read-only replica.

    Replicas fold exactly the deltas the primary ships; a locally applied
    write would fork the version chain and make every subsequent shipped
    frame diverge, so the serving layer rejects writes outright.
    """


class ReplicaDivergedError(ReplicationError):
    """Raised when folding a shipped delta does not reproduce the version
    the primary journalled.

    The version chain is deterministic — the same delta folded onto the
    same base graph always yields the same version — so a mismatch means
    the replica's graph is not the primary's graph and the only safe
    recovery is a fresh snapshot bootstrap.
    """

    def __init__(self, expected_version: int, found_version: int) -> None:
        super().__init__(
            f"replica diverged: shipped frame announced version "
            f"{expected_version}, fold produced {found_version}"
        )
        self.expected_version = expected_version
        self.found_version = found_version


class PrimaryUnavailableError(ReplicationError):
    """Raised by the routed client when a write cannot reach the primary.

    Reads keep flowing from the surviving replicas under the configured
    staleness bound; writes have exactly one home, so they fail fast with
    this typed error instead of blocking until the primary returns.
    """


class CatalogError(StoreError):
    """Raised for invalid multi-tenant catalog operations.

    Typical causes: creating a graph under a name that already exists, or
    an empty / non-string graph name.
    """


class UnknownGraphError(CatalogError):
    """Raised when a catalog (or wire) operation names a graph that does not exist."""

    def __init__(self, name: str, available=()) -> None:
        detail = f"unknown graph {name!r}"
        if available:
            detail += f" (catalog holds: {', '.join(sorted(available))})"
        super().__init__(detail)
        self.name = name


class ProtocolError(ReproError):
    """Raised for malformed wire-protocol traffic.

    Typical causes: a truncated or oversized frame, a body that is not a
    JSON object, or a request missing its ``op`` / ``id`` fields.  The
    server answers with an error frame where it can and closes the
    connection — framing errors are not recoverable mid-stream.
    """


class ServiceOverloadedError(ReproError):
    """Raised when the query service sheds a request under admission control.

    ``reason`` is ``"queue_full"`` (the bounded admission queue was at
    capacity) or ``"deadline"`` (the request's deadline expired before a
    worker picked it up).  The load observed at the rejection instant
    travels with the error — ``queue_depth`` (requests waiting in the
    admission queue) and ``workers_busy`` / ``workers_total`` (worker-pool
    occupancy) — so a shed client can tell "momentary blip" from
    "saturated pool" without a second round trip.  All three are ``None``
    when the shedding side did not capture them (e.g. an older server).
    """

    def __init__(
        self,
        reason: str,
        detail: str = "",
        queue_depth=None,
        workers_busy=None,
        workers_total=None,
    ) -> None:
        message = f"service overloaded: {reason}" + (f" ({detail})" if detail else "")
        context = []
        if queue_depth is not None:
            context.append(f"queue_depth={queue_depth}")
        if workers_busy is not None and workers_total is not None:
            context.append(f"workers={workers_busy}/{workers_total} busy")
        if context:
            message += f" [{', '.join(context)}]"
        super().__init__(message)
        self.reason = reason
        self.detail = detail
        self.queue_depth = queue_depth
        self.workers_busy = workers_busy
        self.workers_total = workers_total
