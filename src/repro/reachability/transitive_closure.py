"""Materialised transitive closure.

Exact reachability with O(1) query time at the cost of an O(V * E) build and
O(V^2 / 64) memory.  This is the scheme the paper has to hand GraphflowDB in
the D-query comparison (Fig. 18): because GF cannot map edges to paths, the
paper materialises the transitive closure as an explicit edge set first —
whose construction time "grows very fast as the number of graph nodes
increases", the effect the Fig. 18(a) benchmark reproduces.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bitmap.intbitset import IntBitSet
from repro.graph.digraph import DataGraph
from repro.reachability.base import ReachabilityIndex


class TransitiveClosureIndex(ReachabilityIndex):
    """Stores, for every node, the bit set of all nodes it reaches."""

    def _build(self, graph: DataGraph) -> None:
        n = graph.num_nodes
        closure: List[IntBitSet] = [IntBitSet() for _ in range(n)]
        # Process nodes in reverse topological order of the SCC condensation
        # so each closure is computed from already-final child closures.
        # For simplicity and robustness on cyclic graphs we fall back to a
        # per-node BFS, which is O(V * (V + E)) worst case but has a small
        # constant and is exact.
        for source in range(n):
            reachable = closure[source]
            reachable.add(source)
            visited = [False] * n
            visited[source] = True
            frontier = [source]
            while frontier:
                next_frontier: List[int] = []
                for node in frontier:
                    for child in graph.successors(node):
                        if not visited[child]:
                            visited[child] = True
                            reachable.add(child)
                            next_frontier.append(child)
                frontier = next_frontier
        self._closure = closure
        self._last_additions: List[Tuple[int, int]] = []

    def copy(self) -> "TransitiveClosureIndex":
        """Aliasing-safe copy (see :meth:`ReachabilityIndex.copy`).

        ``apply_delta`` mutates the row list in place (``append`` /
        per-row replacement), so the list itself must be copied; the
        :class:`IntBitSet` rows are replaced rather than mutated by the
        patch path and can be shared.
        """
        clone = super().copy()
        clone._closure = list(self._closure)
        clone._last_additions = []
        return clone

    def apply_delta(self, graph: DataGraph, delta) -> bool:
        """Patch the closure in place for an insertion-only delta.

        The classic incremental-closure step: inserting edge ``(u, v)``
        extends the reachable set of every ancestor of ``u`` (``u``
        included) by everything ``v`` reaches.  Ancestors are found by one
        O(V) membership scan of the closure column for ``u`` — exact,
        because the closure is kept exact after every processed edge, and
        correct on cycle-closing inserts (every node on the new cycle is an
        ancestor of ``u`` and absorbs ``v``'s row).  Each row extension is
        one big-int OR, so a small delta costs a few thousand word
        operations instead of the O(V * (V + E)) rebuild.

        Deltas with edge removals return False (rebuild); relabels are
        irrelevant to reachability and allowed.
        """
        if delta.has_removals:
            return False
        closure = self._closure
        if delta.base_num_nodes != len(closure):
            return False  # delta written against a different graph state
        additions: List[Tuple[int, int]] = []
        for node_id, _label in delta.added_nodes:
            closure.append(IntBitSet((node_id,)))
        n = len(closure)
        for source, target in delta.added_edges:
            if target in closure[source]:
                continue
            target_mask = closure[target].mask
            for node in range(n):
                row = closure[node]
                if source in row:
                    merged = row.mask | target_mask
                    if merged != row.mask:
                        additions.append((node, merged & ~row.mask))
                        closure[node] = IntBitSet.from_mask(merged)
        self._graph = graph
        self._last_additions = additions
        return True

    def last_patch_additions(self) -> List[Tuple[int, int]]:
        """Reachable pairs added by the most recent successful patch.

        Returned as ``(source, added_mask)`` rows: ``added_mask`` is the
        bit set of targets that became reachable from ``source`` during the
        last :meth:`apply_delta`.  This is what lets the closure-expanded
        data graph be patched with exactly the new pairs instead of being
        rebuilt from the full closure (empty until a patch succeeds).
        """
        return list(getattr(self, "_last_additions", ()))

    def reaches(self, source: int, target: int) -> bool:
        return target in self._closure[source]

    def reachable_set(self, source: int) -> IntBitSet:
        """The full set of nodes reachable from ``source`` (including itself)."""
        return self._closure[source]

    def closure_edges(self) -> List[Tuple[int, int]]:
        """Materialise the closure as an edge list (u, v) with u != v.

        This is what the GF comparison feeds to the engine as an expanded
        data graph for descendant-edge workloads.
        """
        edges: List[Tuple[int, int]] = []
        for source, reachable in enumerate(self._closure):
            for target in reachable:
                if target != source:
                    edges.append((source, target))
        return edges

    def num_closure_edges(self) -> int:
        """Number of (u, v) pairs with u reaching v, u != v."""
        return sum(len(reachable) - 1 for reachable in self._closure)
