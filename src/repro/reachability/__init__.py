"""Node-reachability indexes.

Evaluating reachability (descendant) query edges requires checking whether a
data node reaches another (``u ≺ v``).  The paper's implementation uses the
BFL (Bloom Filter Labeling) scheme; this package provides:

* :class:`TransitiveClosureIndex` — full materialised transitive closure
  (exact, expensive to build — the scheme GF has to fall back to in Fig. 18);
* :class:`IntervalIndex` — DFS interval labels over the SCC condensation,
  a negative-cut filter with pruned-DFS fallback (also exposes the interval
  labels that BuildRIG's early-expansion-termination optimisation needs);
* :class:`BloomFilterLabeling` — a BFL-style scheme: Bloom filters over the
  ancestor and descendant sets of every node give constant-time negative
  cuts, with a pruned DFS resolving the (rare) candidate-positive cases;
* :class:`BFSReachability` — index-free BFS fallback used as ground truth.

All indexes share the :class:`ReachabilityIndex` interface and operate on
arbitrary directed graphs (cycles are handled through SCC condensation).
"""

from repro.reachability.base import ReachabilityIndex, BFSReachability
from repro.reachability.transitive_closure import TransitiveClosureIndex
from repro.reachability.interval import IntervalIndex
from repro.reachability.bfl import BloomFilterLabeling
from repro.reachability.factory import build_reachability_index, REACHABILITY_KINDS

__all__ = [
    "ReachabilityIndex",
    "BFSReachability",
    "TransitiveClosureIndex",
    "IntervalIndex",
    "BloomFilterLabeling",
    "build_reachability_index",
    "REACHABILITY_KINDS",
]
