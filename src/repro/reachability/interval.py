"""DFS interval labels over the SCC condensation.

Every condensation node gets an interval ``(begin, end)`` from a depth-first
traversal.  The interval gives a *negative cut*: if ``end(u) < begin(v)``
then ``u`` cannot reach ``v`` (used by BuildRIG's early-expansion-termination
optimisation, §4.5).  It also gives a *positive* answer for tree descendants:
if ``begin(u) <= begin(v) <= end(u)`` along the DFS tree the answer may still
require confirmation for cross edges, so the index falls back to a pruned DFS
memoised per source.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graph.digraph import DataGraph
from repro.graph.transform import Condensation, condensation
from repro.reachability.base import ReachabilityIndex


class IntervalIndex(ReachabilityIndex):
    """Reachability via DFS intervals on the condensation, with DFS fallback."""

    def _build(self, graph: DataGraph) -> None:
        self._cond: Condensation = condensation(graph)
        dag = self._cond.dag
        n = dag.num_nodes
        begin = [0] * n
        end = [0] * n
        visited = [False] * n
        clock = 0

        # Iterative DFS over the condensation, roots in topological-ish order
        # (nodes with no incoming dag edges first so intervals nest nicely).
        roots = [node for node in dag.nodes() if dag.in_degree(node) == 0]
        roots.extend(node for node in dag.nodes() if dag.in_degree(node) > 0)
        for root in roots:
            if visited[root]:
                continue
            stack: List[Tuple[int, int]] = [(root, 0)]
            visited[root] = True
            clock += 1
            begin[root] = clock
            while stack:
                node, child_index = stack[-1]
                children = dag.successors(node)
                advanced = False
                while child_index < len(children):
                    child = children[child_index]
                    child_index += 1
                    if not visited[child]:
                        stack[-1] = (node, child_index)
                        visited[child] = True
                        clock += 1
                        begin[child] = clock
                        stack.append((child, 0))
                        advanced = True
                        break
                else:
                    stack[-1] = (node, child_index)
                if advanced:
                    continue
                clock += 1
                end[node] = clock
                stack.pop()

        self._begin = begin
        self._end = end
        # Memoised positive-reachability cache per (source component).
        self._reach_cache: Dict[int, set] = {}

    # ------------------------------------------------------------------ #
    # interval access (used by BuildRIG early termination)
    # ------------------------------------------------------------------ #

    def interval(self, node: int) -> Tuple[int, int]:
        """Return the ``(begin, end)`` interval of the node's component."""
        component = self._cond.component_of[node]
        return (self._begin[component], self._end[component])

    def definitely_not_reaches(self, source: int, target: int) -> bool:
        """Negative cut: True means ``source`` certainly does not reach ``target``."""
        cs = self._cond.component_of[source]
        ct = self._cond.component_of[target]
        if cs == ct:
            return False
        return self._end[cs] < self._begin[ct]

    # ------------------------------------------------------------------ #
    # reachability
    # ------------------------------------------------------------------ #

    def reaches(self, source: int, target: int) -> bool:
        if source == target:
            return True
        cs = self._cond.component_of[source]
        ct = self._cond.component_of[target]
        if cs == ct:
            return True
        # Negative cut from the interval labels.
        if self._end[cs] < self._begin[ct]:
            return False
        return ct in self._component_reachable(cs)

    def _component_reachable(self, component: int) -> set:
        cached = self._reach_cache.get(component)
        if cached is not None:
            return cached
        dag = self._cond.dag
        reachable = {component}
        frontier = [component]
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for child in dag.successors(node):
                    if child not in reachable:
                        reachable.add(child)
                        next_frontier.append(child)
            frontier = next_frontier
        self._reach_cache[component] = reachable
        return reachable

    def condensation_result(self) -> Condensation:
        """Expose the condensation (components and mapping) for callers."""
        return self._cond
