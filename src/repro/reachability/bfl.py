"""Bloom Filter Labeling (BFL) reachability index.

BFL (Su, Zhu, Wei, Yu — TKDE 2017) assigns every node two small Bloom
filters: ``L_out(u)`` summarises the set of nodes reachable *from* ``u`` and
``L_in(u)`` summarises the set of nodes that *reach* ``u``.  Both are built
in two linear passes over the SCC condensation.  A reachability query
``u ≺ v`` is answered as follows:

* negative cuts — if ``L_out(v) ⊄ L_out(u)`` then ``u`` cannot reach ``v``
  (anything reachable from ``v`` would also be reachable from ``u``);
  symmetrically if ``L_in(u) ⊄ L_in(v)``; the DFS interval labels give a
  third cut (``end(u) < begin(v)``);
* otherwise a pruned DFS from ``u`` confirms or refutes the answer, using
  the same cuts to avoid exploring branches that cannot contain ``v``.

This mirrors the original design: constant-time negative answers for the
overwhelming majority of non-reachable pairs (which dominate real query
workloads), small labels, and near-linear construction — the property the
Fig. 18(a) benchmark contrasts with transitive-closure construction.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.graph.digraph import DataGraph
from repro.graph.transform import Condensation, condensation
from repro.reachability.base import ReachabilityIndex

#: Hash-mixing constants shared by :meth:`BloomFilterLabeling._hash_bits`.
_MIX_A = 0x9E3779B97F4A7C15
_MIX_B = 0xBF58476D1CE4E5B9


class BloomFilterLabeling(ReachabilityIndex):
    """BFL-style reachability with Bloom-filter negative cuts.

    Parameters
    ----------
    graph:
        The data graph to index.
    num_bits:
        Width of each Bloom filter in bits (default 64: one machine word,
        as in the original paper's in-word configuration).
    num_hashes:
        Number of hash functions per element.
    seed:
        Seed for the hash mixing constants (deterministic by default).
    """

    def __init__(self, graph: DataGraph, num_bits: int = 64, num_hashes: int = 2, seed: int = 7) -> None:
        self._num_bits = num_bits
        self._num_hashes = num_hashes
        self._seed = seed
        super().__init__(graph)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def _hash_bits(self, value: int) -> int:
        """Return the Bloom mask for one element."""
        mask = 0
        for i in range(self._num_hashes):
            mixed = (value * _MIX_A + (i + 1) * self._seed * _MIX_B) & 0xFFFFFFFFFFFFFFFF
            mixed ^= mixed >> 31
            mask |= 1 << (mixed % self._num_bits)
        return mask

    def _build(self, graph: DataGraph) -> None:
        self._cond: Condensation = condensation(graph)
        dag = self._cond.dag
        n = dag.num_nodes

        # Assign every component a random "interval-set" style token, as in
        # BFL, so that hub components do not all hash to the same bits.
        rng = random.Random(self._seed)
        self._tokens = [rng.randrange(1 << 30) for _ in range(n)]
        tokens = self._tokens

        # L_out: propagate bottom-up; L_in: top-down (needs the topo order).
        self._index_dag(dag)
        order = self._topo_order
        l_out = [0] * n
        for node in reversed(order):
            bits = self._hash_bits(tokens[node])
            for child in dag.successors(node):
                bits |= l_out[child]
            l_out[node] = bits

        l_in = [0] * n
        for node in order:
            bits = self._hash_bits(tokens[node])
            for parent in dag.predecessors(node):
                bits |= l_in[parent]
            l_in[node] = bits

        self._l_out = l_out
        self._l_in = l_in
        self._query_dfs_count = 0
        self._patch_count = 0

    def _index_dag(self, dag) -> None:
        """(Re)compute the topo order/positions and DFS interval labels.

        These two negative cuts depend on a global order over the whole
        condensation, so unlike the Bloom labels they cannot be patched a
        node at a time — but both are single linear passes, which is what
        keeps :meth:`apply_delta` cheap.  ``dag`` may be a
        :class:`~repro.graph.digraph.DataGraph` or a
        :class:`~repro.dynamic.MutableDataGraph` overlay.
        """
        n = dag.num_nodes

        # Topological order (Kahn).
        in_degree = [dag.in_degree(node) for node in dag.nodes()]
        order: List[int] = [node for node in dag.nodes() if in_degree[node] == 0]
        head = 0
        while head < len(order):
            node = order[head]
            head += 1
            for child in dag.successors(node):
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    order.append(child)
        self._topo_order = order
        topo_position = [0] * n
        for position, node in enumerate(order):
            topo_position[node] = position
        self._topo_position = topo_position

        # DFS interval labels as an extra negative cut (standard in BFL).
        begin = [0] * n
        end = [0] * n
        visited = [False] * n
        clock = 0
        for root in order:
            if visited[root]:
                continue
            stack: List[Tuple[int, int]] = [(root, 0)]
            visited[root] = True
            clock += 1
            begin[root] = clock
            while stack:
                node, child_index = stack[-1]
                children = dag.successors(node)
                advanced = False
                while child_index < len(children):
                    child = children[child_index]
                    child_index += 1
                    if not visited[child]:
                        stack[-1] = (node, child_index)
                        visited[child] = True
                        clock += 1
                        begin[child] = clock
                        stack.append((child, 0))
                        advanced = True
                        break
                else:
                    stack[-1] = (node, child_index)
                if advanced:
                    continue
                clock += 1
                end[node] = clock
                stack.pop()

        self._begin = begin
        self._end = end

    # ------------------------------------------------------------------ #
    # incremental maintenance
    # ------------------------------------------------------------------ #

    def apply_delta(self, graph, delta) -> bool:
        """Patch the index in place for an insertion-only delta.

        ``graph`` is the already-patched data graph (the state *after* the
        delta); ``delta`` is the effective change log.  Returns True on
        success; returns False — leaving the index untouched — when the
        delta contains edge removals or an inserted edge merges two
        strongly connected components, in which case the caller must
        rebuild.

        The patch exploits that insertions only ever add reachable pairs:

        * new nodes become fresh singleton components with fresh tokens;
        * for each inserted cross-component edge ``(cx, cy)``, the Bloom
          bits of ``cy``'s ``L_out`` flow up to every ancestor of ``cx``
          and the bits of ``cx``'s ``L_in`` flow down to every descendant
          of ``cy`` — a targeted traversal touching only affected
          components, instead of the full two-pass propagation;
        * the topological and DFS-interval cuts are global orders, so they
          are recomputed — but those are single linear passes over the
          (usually much smaller) condensation.

        Relabels are irrelevant to reachability and therefore allowed.
        """
        if delta.has_removals:
            return False
        # Local import: repro.dynamic imports would otherwise be circular at
        # module load (dynamic -> digraph only, but keep the layering clean).
        from repro.dynamic.overlay import MutableDataGraph

        cond = self._cond
        if delta.base_num_nodes != len(cond.component_of):
            return False  # delta written against a different graph state
        component_of = list(cond.component_of)
        components = list(cond.components)
        tokens = list(self._tokens)
        l_out = list(self._l_out)
        l_in = list(self._l_in)
        dag = MutableDataGraph(cond.dag)

        rng = random.Random(self._seed ^ (0x5BF03635 + len(tokens)))
        for node_id, _label in delta.added_nodes:
            comp = dag.add_node("SCC")
            component_of.append(comp)
            components.append((node_id,))
            token = rng.randrange(1 << 30)
            tokens.append(token)
            bits = self._hash_bits(token)
            l_out.append(bits)
            l_in.append(bits)

        for source, target in delta.added_edges:
            cs, ct = component_of[source], component_of[target]
            if cs == ct or dag.has_edge(cs, ct):
                continue
            if dag.reaches_bfs(ct, cs):
                # The new edge closes a cycle: components merge, the
                # condensation changes shape — rebuild.  No state has been
                # committed to ``self`` yet, so the index stays valid.
                return False
            dag.add_edge(cs, ct)
            # Targeted propagation on the dag-so-far: sound because after
            # each step the labels over-approximate exactly the reachability
            # of the graph with the edges applied so far.
            out_bits = l_out[ct]
            for ancestor in dag.bfs_backward(cs):
                l_out[ancestor] |= out_bits
            in_bits = l_in[cs]
            for descendant in dag.bfs_forward(ct):
                l_in[descendant] |= in_bits

        # Commit: freeze the patched condensation and recompute the global
        # order-based cuts (linear in the condensation size).
        new_dag = dag.materialize(name=cond.dag.name)
        self._cond = Condensation(
            dag=new_dag,
            component_of=tuple(component_of),
            components=tuple(components),
        )
        self._tokens = tokens
        self._l_out = l_out
        self._l_in = l_in
        self._index_dag(new_dag)
        self._graph = graph
        self._patch_count += 1
        return True

    @property
    def patch_count(self) -> int:
        """Number of successful :meth:`apply_delta` patches."""
        return self._patch_count

    def copy(self) -> "BloomFilterLabeling":
        """Aliasing-safe copy (see :meth:`ReachabilityIndex.copy`).

        :meth:`apply_delta` already stages its changes in fresh lists and
        commits by attribute rebinding, so a shallow copy would suffice
        today; the label/interval lists are copied anyway so the clone
        stays safe even if a future patch path mutates them in place.
        """
        clone = super().copy()
        clone._tokens = list(self._tokens)
        clone._l_out = list(self._l_out)
        clone._l_in = list(self._l_in)
        clone._topo_order = list(self._topo_order)
        clone._topo_position = list(self._topo_position)
        clone._begin = list(self._begin)
        clone._end = list(self._end)
        return clone

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def _component_reaches(self, source: int, target: int) -> bool:
        """Pruned DFS over the condensation, using the negative cuts."""
        if source == target:
            return True
        l_out = self._l_out
        l_in = self._l_in
        begin = self._begin
        end = self._end
        topo_position = self._topo_position
        target_out = l_out[target]
        target_begin = begin[target]
        target_position = topo_position[target]
        dag = self._cond.dag
        self._query_dfs_count += 1

        stack = [source]
        visited = {source}
        while stack:
            node = stack.pop()
            for child in dag.successors(node):
                if child == target:
                    return True
                if child in visited:
                    continue
                # Negative cuts: prune children that cannot lead to target.
                if end[child] < target_begin:
                    continue
                if topo_position[child] > target_position:
                    continue
                if (target_out & ~l_out[child]) != 0:
                    continue
                if (l_in[child] & ~l_in[target]) != 0:
                    continue
                visited.add(child)
                stack.append(child)
        return False

    def reaches(self, source: int, target: int) -> bool:
        if source == target:
            return True
        cs = self._cond.component_of[source]
        ct = self._cond.component_of[target]
        if cs == ct:
            return True
        # Constant-time negative cuts.
        if self._end[cs] < self._begin[ct]:
            return False
        if self._topo_position[cs] > self._topo_position[ct]:
            return False
        if (self._l_out[ct] & ~self._l_out[cs]) != 0:
            return False
        if (self._l_in[cs] & ~self._l_in[ct]) != 0:
            return False
        return self._component_reaches(cs, ct)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def dfs_fallback_count(self) -> int:
        """Number of queries that could not be decided by the filters alone."""
        return self._query_dfs_count

    def label_size_bits(self) -> int:
        """Total label storage in bits (both filters over all components)."""
        return 2 * self._num_bits * self._cond.dag.num_nodes
