"""Factory for reachability indexes.

The matching algorithms accept any :class:`ReachabilityIndex`; this factory
keeps the string-to-class mapping in one place so benchmarks and examples can
select a scheme by name (``"bfl"`` is the default, as in the paper).
"""

from __future__ import annotations

from typing import Dict, Type

from repro.exceptions import ReachabilityError
from repro.graph.digraph import DataGraph
from repro.reachability.base import BFSReachability, ReachabilityIndex
from repro.reachability.bfl import BloomFilterLabeling
from repro.reachability.interval import IntervalIndex
from repro.reachability.transitive_closure import TransitiveClosureIndex

REACHABILITY_KINDS: Dict[str, Type[ReachabilityIndex]] = {
    "bfl": BloomFilterLabeling,
    "interval": IntervalIndex,
    "tc": TransitiveClosureIndex,
    "bfs": BFSReachability,
}


def build_reachability_index(graph: DataGraph, kind: str = "bfl", **kwargs) -> ReachabilityIndex:
    """Build a reachability index of the requested kind for ``graph``.

    Parameters
    ----------
    graph:
        The data graph to index.
    kind:
        One of ``"bfl"`` (Bloom Filter Labeling, the paper's choice),
        ``"interval"`` (DFS intervals on the condensation), ``"tc"``
        (materialised transitive closure) or ``"bfs"`` (no index).
    kwargs:
        Extra keyword arguments forwarded to the index constructor
        (e.g. ``num_bits`` for BFL).
    """
    try:
        index_class = REACHABILITY_KINDS[kind]
    except KeyError as exc:
        raise ReachabilityError(
            f"unknown reachability index kind {kind!r}; "
            f"available: {', '.join(sorted(REACHABILITY_KINDS))}"
        ) from exc
    return index_class(graph, **kwargs)
