"""Common interface for reachability indexes."""

from __future__ import annotations

import copy as _copy
import time
from abc import ABC, abstractmethod
from typing import Iterable, Tuple

from repro.graph.digraph import DataGraph


class ReachabilityIndex(ABC):
    """Answers ``reaches(u, v)``: is there a path from ``u`` to ``v``?

    By convention every node reaches itself (``reaches(u, u)`` is True),
    matching the behaviour the query-evaluation algorithms expect for
    descendant edges mapped to paths of length >= 1 between *distinct*
    candidate pairs — self-pairs only arise when a query maps two query
    nodes to the same data node, which a homomorphism permits.

    Concrete indexes record their construction time so the benchmark for
    Fig. 18(a) (BFL vs transitive closure vs catalog build time) can report
    it without re-measuring.
    """

    def __init__(self, graph: DataGraph) -> None:
        self._graph = graph
        self._build_seconds = 0.0
        start = time.perf_counter()
        self._build(graph)
        self._build_seconds = time.perf_counter() - start

    @property
    def graph(self) -> DataGraph:
        """The data graph this index was built for."""
        return self._graph

    @property
    def build_seconds(self) -> float:
        """Wall-clock seconds spent building the index."""
        return self._build_seconds

    @abstractmethod
    def _build(self, graph: DataGraph) -> None:
        """Construct the index structures for ``graph``."""

    @abstractmethod
    def reaches(self, source: int, target: int) -> bool:
        """Return True if ``source`` reaches ``target`` (or they are equal)."""

    def apply_delta(self, graph: DataGraph, delta) -> bool:
        """Try to patch this index in place for a graph delta.

        ``graph`` is the patched data graph (the state *after* applying the
        :class:`repro.dynamic.GraphDelta` ``delta``).  Returns True if the
        index now answers queries for ``graph``; False if the scheme cannot
        patch this delta shape (the caller must rebuild).  The default is
        always-rebuild; incremental schemes (BFL, the transitive closure)
        override it for insertion-only deltas.

        Implementations must leave the index unchanged when returning
        False, so a failed patch never corrupts the running index.
        """
        return False

    def copy(self) -> "ReachabilityIndex":
        """An independent copy safe to :meth:`apply_delta` without aliasing.

        The copy-on-write contract used by the versioned graph store: after
        ``clone = index.copy()``, patching ``clone`` in place must never
        change an answer ``index`` returns.  The default shallow copy is
        sufficient for indexes whose ``apply_delta`` only *rebinds*
        attributes; schemes that mutate container state in place must
        override and copy those containers (see
        :class:`~repro.reachability.transitive_closure.TransitiveClosureIndex`).
        """
        return _copy.copy(self)

    def reaches_strict(self, source: int, target: int) -> bool:
        """Reachability through a path of length >= 1.

        ``reaches_strict(u, u)`` is True only if ``u`` lies on a cycle.
        """
        if source != target:
            return self.reaches(source, target)
        return any(
            self.reaches(child, source) for child in self._graph.successors(source)
        )

    def descendants(self, source: int) -> Iterable[int]:
        """All nodes reachable from ``source`` (including itself)."""
        return self._graph.bfs_forward(source)

    def ancestors(self, target: int) -> Iterable[int]:
        """All nodes that reach ``target`` (including itself)."""
        return self._graph.bfs_backward(target)

    def index_name(self) -> str:
        """Short name for reports."""
        return type(self).__name__


class BFSReachability(ReachabilityIndex):
    """Index-free reachability: answer each query with a fresh BFS.

    Used as the ground truth in tests and as the no-precomputation baseline;
    it has zero build cost and O(V + E) query cost.
    """

    def _build(self, graph: DataGraph) -> None:
        # Nothing to precompute.
        return

    def apply_delta(self, graph: DataGraph, delta) -> bool:
        # Index-free: any delta shape is "patched" by re-binding the graph.
        self._graph = graph
        return True

    def reaches(self, source: int, target: int) -> bool:
        return self._graph.reaches_bfs(source, target)
