"""Benchmark datasets and query workloads.

Builds the scaled-down dataset stand-ins and the query sets each experiment
needs: per-class representative templates (the paper's figures show three
queries from each of the acyclic / cyclic / clique / combo classes), the
C/H/D variants, and random dense/sparse query sets for the biological
datasets.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from repro.graph.datasets import load_dataset
from repro.graph.digraph import DataGraph
from repro.query.classify import QueryClass, classify_query
from repro.query.generators import (
    QUERY_TEMPLATES,
    TEMPLATES_BY_CLASS,
    instantiate_template,
    random_pattern_query,
    template_query,
    to_child_only,
    to_descendant_only,
)
from repro.query.pattern import PatternQuery

#: Default size multiplier for benchmark graphs (kept small so the whole
#: benchmark suite completes in minutes in pure Python).
BENCH_SCALE = 0.25


@lru_cache(maxsize=32)
def bench_graph(key: str, scale: float = BENCH_SCALE, seed: int = 17) -> DataGraph:
    """Build (and cache) the benchmark stand-in for dataset ``key``."""
    return load_dataset(key, scale=scale, seed=seed)


def representative_templates(per_class: int = 3) -> List[str]:
    """Template names: ``per_class`` representatives from each structural class.

    Matches the figures' selection ("three queries from each of the acyclic,
    cyclic, clique, and combo pattern classes").
    """
    chosen: List[str] = []
    for query_class in (QueryClass.ACYCLIC, QueryClass.CYCLIC, QueryClass.CLIQUE, QueryClass.COMBO):
        names = TEMPLATES_BY_CLASS.get(query_class, ())
        chosen.extend(names[:per_class])
    return chosen


def query_set(
    graph: DataGraph,
    kind: str = "H",
    templates: Sequence[str] | None = None,
    seed: int = 11,
) -> Dict[str, PatternQuery]:
    """Instantiate a template query set of the given kind on ``graph``.

    ``kind`` is ``"H"`` (hybrid), ``"C"`` (child-only) or ``"D"``
    (descendant-only); the returned mapping is keyed by instantiated query
    name (``HQ3`` / ``CQ3`` / ``DQ3`` ...).
    """
    templates = list(templates) if templates is not None else representative_templates()
    queries: Dict[str, PatternQuery] = {}
    for index, name in enumerate(templates):
        base = instantiate_template(name, graph, seed=seed + index)
        if kind == "H":
            queries[base.name] = base
        elif kind == "C":
            converted = to_child_only(base)
            queries[converted.name] = converted
        elif kind == "D":
            converted = to_descendant_only(base)
            queries[converted.name] = converted
        else:
            raise ValueError(f"unknown query kind {kind!r}")
    return queries


def random_query_set(
    graph: DataGraph,
    node_counts: Sequence[int],
    kind: str = "H",
    dense: bool = False,
    per_size: int = 2,
    seed: int = 23,
) -> Dict[str, PatternQuery]:
    """Random query sets by node count (the biological-dataset workloads)."""
    queries: Dict[str, PatternQuery] = {}
    for num_nodes in node_counts:
        for repeat in range(per_size):
            query = random_pattern_query(
                graph,
                num_nodes,
                seed=seed + num_nodes * 10 + repeat,
                dense=dense,
                descendant_probability=0.5 if kind == "H" else (1.0 if kind == "D" else 0.0),
                name=f"{num_nodes}N-{repeat}",
            )
            if kind == "C":
                query = to_child_only(query, name=query.name)
            elif kind == "D":
                query = to_descendant_only(query, name=query.name)
            queries[query.name] = query
    return queries


def template_class(name: str) -> str:
    """Structural class of a template (for table grouping)."""
    return classify_query(template_query(name)).value
