"""Benchmark harness.

The modules in this package regenerate the paper's tables and figures
(scaled down): :mod:`repro.bench.workloads` builds the datasets and query
sets, :mod:`repro.bench.harness` runs a set of matchers over a workload and
collects per-query timings and statuses, :mod:`repro.bench.reporting`
renders text tables / series, and :mod:`repro.bench.experiments` contains
one driver per paper table or figure.  ``python -m repro.bench.run_all``
runs everything and prints the results.

Beyond the paper's experiments, :mod:`repro.bench.concurrency` drives a
mixed reader/writer workload through the serialised single-session model
and the MVCC store + service, including per-pinned-version answer
verification (see ``benchmarks/bench_service_concurrency.py``).
"""

from repro.bench.concurrency import (
    BatchRecord,
    MixedWorkloadResult,
    run_concurrent_workload,
    run_serialised_workload,
    verify_batch_consistency,
)
from repro.bench.harness import MatcherSpec, QueryRun, WorkloadResult, make_matcher, run_workload
from repro.bench.workloads import bench_graph, query_set, representative_templates
from repro.bench.reporting import format_table, format_series
from repro.bench.experiments import (
    ExperimentReport,
    fig08_hybrid_queries,
    fig09_child_queries,
    table3_descendant_queries,
    fig10_label_scaling,
    fig11_size_scaling,
    fig12_constraint_checking,
    fig13_rig_size,
    fig15_transitive_reduction,
    table4_search_order,
    fig16_wcoj_engine,
    table5_engines,
    fig17_rm_human,
    fig18_reachability_engines,
    table6_hybrid_engines,
    ALL_EXPERIMENTS,
)

__all__ = [
    "BatchRecord",
    "MixedWorkloadResult",
    "run_concurrent_workload",
    "run_serialised_workload",
    "verify_batch_consistency",
    "MatcherSpec",
    "QueryRun",
    "WorkloadResult",
    "make_matcher",
    "run_workload",
    "bench_graph",
    "query_set",
    "representative_templates",
    "format_table",
    "format_series",
    "ExperimentReport",
    "fig08_hybrid_queries",
    "fig09_child_queries",
    "table3_descendant_queries",
    "fig10_label_scaling",
    "fig11_size_scaling",
    "fig12_constraint_checking",
    "fig13_rig_size",
    "fig15_transitive_reduction",
    "table4_search_order",
    "fig16_wcoj_engine",
    "table5_engines",
    "fig17_rm_human",
    "fig18_reachability_engines",
    "table6_hybrid_engines",
    "ALL_EXPERIMENTS",
]
