"""Plain-text rendering of benchmark tables and series."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render an aligned text table."""
    rendered_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(widths[index]) for index, value in enumerate(values))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[object],
    title: str = "",
    unit: str = "s",
) -> str:
    """Render one row per series with one column per x value (figure data)."""
    headers = ["series"] + [str(label) for label in x_labels]
    rows = []
    for name, values in series.items():
        rows.append([name] + [f"{value:.4f}{unit}" if value is not None else "-" for value in values])
    return format_table(headers, rows, title=title)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
