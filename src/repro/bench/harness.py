"""Run a set of matchers over a query workload and collect results."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.baselines.iso import ISOMatcher
from repro.baselines.jm import JMMatcher
from repro.baselines.tm import TMMatcher
from repro.engines.base import Engine
from repro.engines.binary_join import BinaryJoinEngine
from repro.engines.relational import RelationalEngine
from repro.engines.treedecomp import TreeDecompEngine
from repro.engines.wcoj import WCOJEngine
from repro.exceptions import MemoryBudgetExceeded
from repro.graph.digraph import DataGraph
from repro.matching.gm import GMVariant, GraphMatcher
from repro.matching.ordering import OrderingMethod
from repro.matching.result import Budget, MatchReport, MatchStatus
from repro.query.pattern import PatternQuery
from repro.session import QuerySession
from repro.simulation.context import MatchContext

#: Default per-query budget used by the benchmark experiments: a small match
#: cap and time limit keep the pure-Python suite fast while preserving the
#: paper's "solved / timeout / out-of-memory" outcome classification.
DEFAULT_BENCH_BUDGET = Budget(
    max_matches=20_000, time_limit_seconds=20.0, max_intermediate_results=400_000
)


@dataclass
class MatcherSpec:
    """A named matcher configuration the harness can instantiate."""

    name: str
    factory: Callable[[DataGraph, MatchContext, Budget], object]

    def build(self, graph: DataGraph, context: MatchContext, budget: Budget):
        """Instantiate the matcher for one graph/context."""
        return self.factory(graph, context, budget)


def _gm_factory(variant: GMVariant, ordering: OrderingMethod = OrderingMethod.JO):
    def factory(graph: DataGraph, context: MatchContext, budget: Budget) -> GraphMatcher:
        return GraphMatcher(graph, context=context, variant=variant, ordering=ordering, budget=budget)

    return factory


_MATCHER_FACTORIES: Dict[str, Callable[[DataGraph, MatchContext, Budget], object]] = {
    "GM": _gm_factory(GMVariant.GM),
    "GM-S": _gm_factory(GMVariant.GM_S),
    "GM-F": _gm_factory(GMVariant.GM_F),
    "GM-NR": _gm_factory(GMVariant.GM_NR),
    "GM-JO": _gm_factory(GMVariant.GM, OrderingMethod.JO),
    "GM-RI": _gm_factory(GMVariant.GM, OrderingMethod.RI),
    "GM-BJ": _gm_factory(GMVariant.GM, OrderingMethod.BJ),
    "JM": lambda graph, context, budget: JMMatcher(graph, context=context, budget=budget),
    "TM": lambda graph, context, budget: TMMatcher(graph, context=context, budget=budget),
    "ISO": lambda graph, context, budget: ISOMatcher(graph, context=context, budget=budget),
    "GF": lambda graph, context, budget: WCOJEngine(graph, budget=budget),
    "EH": lambda graph, context, budget: RelationalEngine(graph, budget=budget),
    "RM": lambda graph, context, budget: TreeDecompEngine(graph, budget=budget),
    "Neo4j": lambda graph, context, budget: BinaryJoinEngine(graph, budget=budget),
}


def available_matchers() -> Sequence[str]:
    """Names accepted by :func:`make_matcher`."""
    return tuple(sorted(_MATCHER_FACTORIES))


def make_matcher(
    name: str,
    graph: DataGraph,
    context: MatchContext,
    budget: Budget,
    session: Optional[QuerySession] = None,
):
    """Instantiate a matcher / engine by its benchmark name.

    When ``session`` is given, the matcher is obtained from (and cached in)
    the session, so every matcher of one experiment shares the session's
    pre-built indexes instead of rebuilding its own.  The shared instance
    keeps the *session's* default budget — pass ``budget`` to each ``match``
    call (as :func:`run_workload` does) rather than relying on the default.
    """
    if session is not None:
        return session.matcher(name)
    try:
        factory = _MATCHER_FACTORIES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown matcher {name!r}; available: {', '.join(available_matchers())}"
        ) from exc
    return factory(graph, context, budget)


@dataclass
class QueryRun:
    """One (matcher, query) measurement."""

    matcher: str
    query: str
    seconds: float
    matches: int
    status: str
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def solved(self) -> bool:
        """True if the run is counted as solved."""
        return self.status in (MatchStatus.OK.value, MatchStatus.MATCH_LIMIT.value)


@dataclass
class WorkloadResult:
    """All runs of one experiment workload."""

    dataset: str
    runs: List[QueryRun] = field(default_factory=list)

    def by_matcher(self) -> Dict[str, List[QueryRun]]:
        """Group runs by matcher name."""
        grouped: Dict[str, List[QueryRun]] = {}
        for run in self.runs:
            grouped.setdefault(run.matcher, []).append(run)
        return grouped

    def solved_count(self, matcher: str) -> int:
        """Number of solved queries for ``matcher``."""
        return sum(1 for run in self.runs if run.matcher == matcher and run.solved)

    def average_time(self, matcher: str, solved_only: bool = True) -> float:
        """Mean query time for ``matcher`` (optionally over solved runs only)."""
        times = [
            run.seconds
            for run in self.runs
            if run.matcher == matcher and (run.solved or not solved_only)
        ]
        return sum(times) / len(times) if times else 0.0

    def run_for(self, matcher: str, query: str) -> Optional[QueryRun]:
        """The run of ``matcher`` on ``query``, if present."""
        for run in self.runs:
            if run.matcher == matcher and run.query == query:
                return run
        return None


def _evaluate(matcher, query: PatternQuery, budget: Budget) -> QueryRun:
    name = getattr(matcher, "name", None) or getattr(matcher, "algorithm_name", lambda: "?")()
    start = time.perf_counter()
    if isinstance(matcher, Engine):
        result = matcher.match(query, budget=budget)
        report = result.report
        extra = {"precompute_seconds": result.precompute_seconds}
    else:
        report = matcher.match(query, budget=budget)
        extra = dict(report.extra)
    elapsed = time.perf_counter() - start
    return QueryRun(
        matcher=name if isinstance(name, str) else str(name),
        query=query.name,
        seconds=report.total_seconds if report.total_seconds > 0 else elapsed,
        matches=report.num_matches,
        status=report.status.value,
        extra=extra,
    )


def run_workload(
    graph: DataGraph,
    queries: Mapping[str, PatternQuery],
    matcher_names: Sequence[str],
    budget: Optional[Budget] = None,
    context: Optional[MatchContext] = None,
    reachability_kind: str = "bfl",
    session: Optional[QuerySession] = None,
) -> WorkloadResult:
    """Run every matcher on every query of the workload.

    The matchers share one :class:`MatchContext` (and thus one reachability
    index), as the paper's setup shares the BFL index across algorithms.
    Passing a :class:`QuerySession` shares *all* per-graph artifacts —
    reachability index, transitive closure, expanded graph, catalogs and
    RIGs — across the matchers and across repeated ``run_workload`` calls.
    Engine construction failures (e.g. the GF catalog cap) are recorded as
    out-of-memory runs for every query of the workload.
    """
    budget = budget or DEFAULT_BENCH_BUDGET
    if session is not None:
        if session.graph is not graph:
            raise ValueError("session is bound to a different data graph")
        if context is not None and context is not session.context:
            raise ValueError("pass either context or session, not both")
        context = session.context
    else:
        context = context or MatchContext(graph, reachability_kind=reachability_kind)
    result = WorkloadResult(dataset=graph.name)
    for matcher_name in matcher_names:
        try:
            matcher = make_matcher(matcher_name, graph, context, budget, session=session)
        except MemoryBudgetExceeded:
            for query_name in queries:
                result.runs.append(
                    QueryRun(
                        matcher=matcher_name,
                        query=query_name,
                        seconds=0.0,
                        matches=0,
                        status=MatchStatus.OUT_OF_MEMORY.value,
                    )
                )
            continue
        for query in queries.values():
            run = _evaluate(matcher, query, budget)
            run.matcher = matcher_name
            result.runs.append(run)
    return result
