"""Run every experiment and print its table.

Usage::

    python -m repro.bench.run_all                 # all experiments
    python -m repro.bench.run_all fig08 table5    # a subset
    python -m repro.bench.run_all --output results.txt

The drivers run at the default benchmark scale; pass ``--scale`` to shrink
or enlarge the synthetic datasets.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from repro.bench.experiments import ALL_EXPERIMENTS


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description="Run the paper-reproduction experiments")
    parser.add_argument("experiments", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--scale", type=float, default=None, help="dataset scale override")
    parser.add_argument("--output", type=str, default=None, help="also write the report to this file")
    args = parser.parse_args(argv)

    selected = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [name for name in selected if name not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}; available: {', '.join(ALL_EXPERIMENTS)}")

    sections: List[str] = []
    for name in selected:
        driver = ALL_EXPERIMENTS[name]
        start = time.perf_counter()
        kwargs = {"scale": args.scale} if args.scale is not None else {}
        report = driver(**kwargs)
        elapsed = time.perf_counter() - start
        section = report.text() + f"\n  (driver wall-clock: {elapsed:.1f}s)"
        sys.stdout.write(section + "\n\n")
        sections.append(section)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(sections) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
