"""Experiment drivers: one function per paper table / figure.

Every driver builds the scaled-down workload, runs the relevant matchers and
returns an :class:`ExperimentReport` whose rows carry the same quantities the
paper reports (per-query times, solved counts, sizes, build times).  The
drivers are deliberately parameterised by ``scale`` so the same code serves
the fast test-suite runs and the fuller ``run_all`` benchmark runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import DEFAULT_BENCH_BUDGET, run_workload
from repro.bench.reporting import format_table
from repro.bench.workloads import (
    BENCH_SCALE,
    bench_graph,
    query_set,
    random_query_set,
    representative_templates,
)
from repro.baselines.tm import TMMatcher
from repro.engines.binary_join import BinaryJoinEngine
from repro.engines.wcoj import WCOJEngine, build_catalog
from repro.exceptions import MemoryBudgetExceeded
from repro.graph.datasets import load_dataset
from repro.graph.generators import with_label_count
from repro.graph.transform import node_prefix_subgraph, undirected_double
from repro.matching.gm import GMVariant, GraphMatcher
from repro.matching.ordering import OrderingMethod
from repro.matching.result import Budget
from repro.query.generators import (
    instantiate_template,
    to_descendant_only,
)
from repro.query.pattern import EdgeType, PatternEdge, PatternQuery
from repro.query.transitive import transitive_closure
from repro.reachability.bfl import BloomFilterLabeling
from repro.reachability.transitive_closure import TransitiveClosureIndex
from repro.rig.build import RIGOptions, build_rig
from repro.rig.stats import rig_statistics
from repro.simulation.context import ChildCheckMethod, MatchContext
from repro.simulation.fbsim import SimulationOptions, fbsim, fbsim_basic, fbsim_dag


@dataclass
class ExperimentReport:
    """Result of one experiment driver."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: str = ""

    def text(self) -> str:
        """Render the report as an aligned text table."""
        table = format_table(self.headers, self.rows, title=f"{self.experiment_id}: {self.title}")
        if self.notes:
            table += f"\n  note: {self.notes}"
        return table


def _budget(budget: Optional[Budget]) -> Budget:
    return budget or DEFAULT_BENCH_BUDGET


# ---------------------------------------------------------------------- #
# Fig. 8 — H-query evaluation: GM vs TM vs JM
# ---------------------------------------------------------------------- #


def fig08_hybrid_queries(
    datasets: Sequence[str] = ("em", "ep", "hu"),
    scale: float = BENCH_SCALE,
    budget: Optional[Budget] = None,
    per_class: int = 2,
) -> ExperimentReport:
    """H-query evaluation time of GM, TM and JM (paper Fig. 8)."""
    budget = _budget(budget)
    report = ExperimentReport(
        experiment_id="Fig8",
        title="H-query evaluation time (seconds) of GM, TM and JM",
        headers=("dataset", "query", "matcher", "time_s", "matches", "status"),
    )
    templates = representative_templates(per_class=per_class)
    for key in datasets:
        graph = bench_graph(key, scale=scale)
        queries = query_set(graph, kind="H", templates=templates)
        result = run_workload(graph, queries, ("GM", "TM", "JM"), budget=budget)
        for run in result.runs:
            report.rows.append((key, run.query, run.matcher, run.seconds, run.matches, run.status))
    return report


# ---------------------------------------------------------------------- #
# Fig. 9 — C-query evaluation: GM vs TM vs JM vs ISO
# ---------------------------------------------------------------------- #


def fig09_child_queries(
    datasets: Sequence[str] = ("ep", "bs", "hu"),
    scale: float = BENCH_SCALE,
    budget: Optional[Budget] = None,
    per_class: int = 2,
) -> ExperimentReport:
    """C-query evaluation time of GM, TM, JM and ISO (paper Fig. 9)."""
    budget = _budget(budget)
    report = ExperimentReport(
        experiment_id="Fig9",
        title="C-query evaluation time (seconds) of GM, TM, JM and ISO",
        headers=("dataset", "query", "matcher", "time_s", "matches", "status"),
    )
    templates = representative_templates(per_class=per_class)
    for key in datasets:
        graph = bench_graph(key, scale=scale)
        queries = query_set(graph, kind="C", templates=templates)
        result = run_workload(graph, queries, ("GM", "TM", "JM", "ISO"), budget=budget)
        for run in result.runs:
            report.rows.append((key, run.query, run.matcher, run.seconds, run.matches, run.status))
    return report


# ---------------------------------------------------------------------- #
# Table 3 — large D-queries: solved counts and average times
# ---------------------------------------------------------------------- #


def table3_descendant_queries(
    datasets: Sequence[str] = ("hu", "hp", "yt"),
    scale: float = BENCH_SCALE,
    budget: Optional[Budget] = None,
    node_counts: Sequence[int] = (4, 8, 12),
    per_size: int = 2,
) -> ExperimentReport:
    """Performance of JM, TM and GM on large D-queries (paper Table 3)."""
    budget = _budget(budget)
    report = ExperimentReport(
        experiment_id="Table3",
        title="D-query outcomes: timeouts, memory failures, solved, avg time",
        headers=("dataset", "matcher", "timeout", "out_of_memory", "solved", "avg_time_s"),
    )
    for key in datasets:
        graph = bench_graph(key, scale=scale)
        queries = random_query_set(graph, node_counts, kind="D", per_size=per_size)
        result = run_workload(graph, queries, ("JM", "TM", "GM"), budget=budget)
        for matcher in ("JM", "TM", "GM"):
            runs = [run for run in result.runs if run.matcher == matcher]
            timeouts = sum(1 for run in runs if run.status == "timeout")
            memory = sum(1 for run in runs if run.status == "out_of_memory")
            solved = sum(1 for run in runs if run.solved)
            avg = result.average_time(matcher)
            report.rows.append((key, matcher, timeouts, memory, solved, avg))
    return report


# ---------------------------------------------------------------------- #
# Fig. 10 — varying the number of data labels
# ---------------------------------------------------------------------- #


def fig10_label_scaling(
    label_counts: Sequence[int] = (5, 10, 15, 20),
    templates: Sequence[str] = ("HQ2", "HQ4", "HQ7", "HQ18"),
    scale: float = BENCH_SCALE,
    budget: Optional[Budget] = None,
) -> ExperimentReport:
    """Query time while varying the number of labels on em (paper Fig. 10)."""
    budget = _budget(budget)
    report = ExperimentReport(
        experiment_id="Fig10",
        title="H-query time on em versions with 5..20 labels",
        headers=("labels", "query", "matcher", "time_s", "matches", "status"),
    )
    base = bench_graph("em", scale=scale)
    for num_labels in label_counts:
        graph = with_label_count(base, num_labels, seed=5)
        queries = {}
        for index, name in enumerate(templates):
            query = instantiate_template(name, graph, seed=31 + index)
            queries[query.name] = query
        result = run_workload(graph, queries, ("GM", "TM", "JM"), budget=budget)
        for run in result.runs:
            report.rows.append((num_labels, run.query, run.matcher, run.seconds, run.matches, run.status))
    return report


# ---------------------------------------------------------------------- #
# Fig. 11 — varying the data-graph size
# ---------------------------------------------------------------------- #


def fig11_size_scaling(
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    templates: Sequence[str] = ("HQ8", "HQ12"),
    scale: float = BENCH_SCALE,
    budget: Optional[Budget] = None,
) -> ExperimentReport:
    """Query time on increasingly larger subsets of dblp (paper Fig. 11)."""
    budget = _budget(budget)
    report = ExperimentReport(
        experiment_id="Fig11",
        title="H-query time on growing subsets of the dblp-shaped graph",
        headers=("nodes", "query", "matcher", "time_s", "matches", "status"),
    )
    full = bench_graph("db", scale=scale)
    for fraction in fractions:
        size = max(10, int(full.num_nodes * fraction))
        graph = node_prefix_subgraph(full, size)
        queries = {}
        for index, name in enumerate(templates):
            query = instantiate_template(name, graph, seed=41 + index)
            queries[query.name] = query
        result = run_workload(graph, queries, ("JM", "TM", "GM"), budget=budget)
        for run in result.runs:
            report.rows.append((graph.num_nodes, run.query, run.matcher, run.seconds, run.matches, run.status))
    return report


# ---------------------------------------------------------------------- #
# Fig. 12 — child-constraint checking and simulation construction
# ---------------------------------------------------------------------- #


def fig12_constraint_checking(
    dataset: str = "em",
    scale: float = BENCH_SCALE,
    per_class: int = 2,
) -> ExperimentReport:
    """Child-check methods and FB-construction methods (paper Fig. 12)."""
    graph = bench_graph(dataset, scale=scale)
    context = MatchContext(graph)
    report = ExperimentReport(
        experiment_id="Fig12",
        title="(a) child-constraint check methods; (b) FB construction methods",
        headers=("part", "query", "method", "time_s"),
    )
    templates = representative_templates(per_class=per_class)

    # Part (a): C-queries, RIG construction time under each check method.
    methods = {
        "binSearch": ChildCheckMethod.BIN_SEARCH,
        "bitIter": ChildCheckMethod.BIT_ITER,
        "bitBat": ChildCheckMethod.BIT_BAT,
    }
    child_queries = query_set(graph, kind="C", templates=templates)
    for query in child_queries.values():
        for method_name, method in methods.items():
            options = RIGOptions(child_check=method)
            options.simulation_options = SimulationOptions(child_check=method)
            start = time.perf_counter()
            build_rig(context, query, options)
            report.rows.append(("a", query.name, method_name, time.perf_counter() - start))

    # Part (b): H-queries, double-simulation construction time per algorithm.
    simulators: Dict[str, Callable] = {
        "Gra": lambda q: fbsim_basic(context, q),
        "Dag": lambda q: fbsim(context, q, options=SimulationOptions(use_change_flags=False)),
        "DagMap": lambda q: fbsim(context, q, options=SimulationOptions(use_change_flags=True)),
    }
    hybrid_queries = query_set(graph, kind="H", templates=templates)
    for query in hybrid_queries.values():
        for simulator_name, simulator in simulators.items():
            start = time.perf_counter()
            simulator(query)
            report.rows.append(("b", query.name, simulator_name, time.perf_counter() - start))
    return report


# ---------------------------------------------------------------------- #
# Fig. 13 — RIG size, construction time and query time per GM variant
# ---------------------------------------------------------------------- #


def fig13_rig_size(
    dataset: str = "ep",
    scale: float = BENCH_SCALE,
    budget: Optional[Budget] = None,
    per_class: int = 2,
) -> ExperimentReport:
    """RIG size / construction time / query time for GM, GM-S, GM-F and TM."""
    budget = _budget(budget)
    graph = bench_graph(dataset, scale=scale)
    context = MatchContext(graph)
    graph_size = graph.num_nodes + graph.num_edges
    report = ExperimentReport(
        experiment_id="Fig13",
        title="Summary-graph size ratio, construction time and query time",
        headers=("query", "variant", "size_ratio_pct", "construction_s", "query_s", "status"),
    )
    templates = representative_templates(per_class=per_class)
    queries = query_set(graph, kind="H", templates=templates)

    variants = {
        "GM": GMVariant.GM,
        "GM-S": GMVariant.GM_S,
        "GM-F": GMVariant.GM_F,
    }
    for query in queries.values():
        for variant_name, variant in variants.items():
            matcher = GraphMatcher(graph, context=context, variant=variant, budget=budget)
            build_report = matcher.build_rig(query)
            stats = rig_statistics(build_report.rig, graph)
            match_report = matcher.match(query, budget=budget)
            report.rows.append(
                (
                    query.name,
                    variant_name,
                    round(stats.ratio_percent(), 3),
                    build_report.total_seconds,
                    match_report.total_seconds,
                    match_report.status.value,
                )
            )
        # TM's auxiliary structure (answer graph for the spanning tree).
        tm = TMMatcher(graph, context=context, budget=budget)
        start = time.perf_counter()
        candidates = context.match_sets(query)
        tree_edges, _ = tm.spanning_tree(query)
        clock = budget.start_clock()
        candidates = tm._refine_tree_candidates(query, tree_edges, candidates, clock)
        adjacency = tm._tree_adjacency(tree_edges, candidates, clock)
        construction = time.perf_counter() - start
        aux_nodes = sum(len(values) for values in candidates.values())
        aux_edges = sum(len(heads) for per_tail in adjacency.values() for heads in per_tail.values())
        tm_report = tm.match(query, budget=budget)
        report.rows.append(
            (
                query.name,
                "TM",
                round(100.0 * (aux_nodes + aux_edges) / graph_size, 3),
                construction,
                tm_report.total_seconds,
                tm_report.status.value,
            )
        )
    return report


# ---------------------------------------------------------------------- #
# Fig. 15 — pattern transitive reduction
# ---------------------------------------------------------------------- #


def _queries_with_redundant_edges(graph, templates: Sequence[str], seed: int = 53) -> Dict[str, PatternQuery]:
    """D-queries augmented with redundant (transitive) reachability edges."""
    queries: Dict[str, PatternQuery] = {}
    for index, name in enumerate(templates):
        base = to_descendant_only(instantiate_template(name, graph, seed=seed + index))
        closure = transitive_closure(base)
        # Keep the original edges plus a handful of implied (redundant) ones.
        extra = [edge for edge in closure.edges() if edge not in base.edges()][:3]
        augmented = base.with_edges(list(base.edges()) + extra, name=base.name.replace("DQ", "DQr"))
        queries[augmented.name] = augmented
    return queries


def fig15_transitive_reduction(
    datasets: Sequence[str] = ("em", "ep"),
    templates: Sequence[str] = ("HQ3", "HQ9", "HQ5"),
    scale: float = BENCH_SCALE,
    budget: Optional[Budget] = None,
) -> ExperimentReport:
    """D-query evaluation with and without transitive reduction (Fig. 15)."""
    budget = _budget(budget)
    report = ExperimentReport(
        experiment_id="Fig15",
        title="D-query time with (GM) and without (GM-NR) transitive reduction, plus TM",
        headers=("dataset", "query", "matcher", "time_s", "matches", "status"),
    )
    for key in datasets:
        graph = bench_graph(key, scale=scale)
        queries = _queries_with_redundant_edges(graph, templates)
        result = run_workload(graph, queries, ("GM", "GM-NR", "TM"), budget=budget)
        for run in result.runs:
            report.rows.append((key, run.query, run.matcher, run.seconds, run.matches, run.status))
    return report


# ---------------------------------------------------------------------- #
# Table 4 — search-order strategies
# ---------------------------------------------------------------------- #


def table4_search_order(
    datasets: Sequence[str] = ("em", "ep"),
    templates: Sequence[str] = ("HQ2", "HQ3", "HQ4", "HQ15", "HQ18"),
    scale: float = BENCH_SCALE,
    budget: Optional[Budget] = None,
) -> ExperimentReport:
    """Effectiveness of the JO, RI and BJ orderings (paper Table 4)."""
    budget = _budget(budget)
    report = ExperimentReport(
        experiment_id="Table4",
        title="H-query time under the RI, JO and BJ search orderings",
        headers=("dataset", "query", "GM-RI_s", "GM-JO_s", "GM-BJ_s"),
    )
    for key in datasets:
        graph = bench_graph(key, scale=scale)
        queries = {}
        for index, name in enumerate(templates):
            query = instantiate_template(name, graph, seed=61 + index)
            queries[query.name] = query
        result = run_workload(graph, queries, ("GM-RI", "GM-JO", "GM-BJ"), budget=budget)
        for query_name in queries:
            row = [key, query_name]
            for matcher in ("GM-RI", "GM-JO", "GM-BJ"):
                run = result.run_for(matcher, query_name)
                row.append(run.seconds if run else None)
            report.rows.append(tuple(row))
    return report


# ---------------------------------------------------------------------- #
# Fig. 16 — comparison with the WCOJ engine (GF)
# ---------------------------------------------------------------------- #


def fig16_wcoj_engine(
    catalog_datasets: Sequence[str] = ("em", "ep", "hp", "yt", "hu", "bs", "go", "am"),
    query_datasets: Sequence[str] = ("am", "bs", "go", "hu", "yt"),
    scale: float = BENCH_SCALE,
    budget: Optional[Budget] = None,
    catalog_cap: int = 4000,
    templates: Sequence[str] = ("CQ17", "CQ19", "CQ16"),
) -> ExperimentReport:
    """GF catalog build time per dataset and GM-vs-GF C-query times (Fig. 16)."""
    budget = _budget(budget)
    report = ExperimentReport(
        experiment_id="Fig16",
        title="(a) GF catalog build time; (b) C-query time of GM vs GF",
        headers=("part", "dataset", "query", "matcher", "time_s", "status"),
        notes="catalog entries capped to model GF's out-of-memory on label-rich graphs",
    )
    # Part (a): catalog construction cost (out-of-memory when over the cap).
    for key in catalog_datasets:
        graph = bench_graph(key, scale=scale)
        # Label-rich graphs exceed the entry cap, mirroring GF's OOM failures.
        catalog = build_catalog(graph, max_entries=catalog_cap)
        status = "out_of_memory" if catalog.truncated else "ok"
        report.rows.append(("a", key, "-", "GF-catalog", catalog.build_seconds, status))

    # Part (b): C-query evaluation where the catalog could be built.
    template_names = [name.replace("CQ", "HQ") for name in templates]
    for key in query_datasets:
        graph = bench_graph(key, scale=scale)
        catalog = build_catalog(graph, max_entries=catalog_cap)
        queries = query_set(graph, kind="C", templates=template_names)
        matchers = ("GM",) if catalog.truncated else ("GM", "GF")
        result = run_workload(graph, queries, matchers, budget=budget)
        for run in result.runs:
            report.rows.append(("b", key, run.query, run.matcher, run.seconds, run.status))
        if catalog.truncated:
            for query_name in queries:
                report.rows.append(("b", key, query_name, "GF", 0.0, "out_of_memory"))
    return report


# ---------------------------------------------------------------------- #
# Table 5 — EH, Neo4j and GM on C-queries
# ---------------------------------------------------------------------- #


def table5_engines(
    datasets: Sequence[str] = ("em", "ep"),
    scale: float = BENCH_SCALE,
    budget: Optional[Budget] = None,
    per_class: int = 2,
) -> ExperimentReport:
    """Runtime of EH, Neo4j and GM for C-queries on em and ep (Table 5)."""
    budget = _budget(budget)
    report = ExperimentReport(
        experiment_id="Table5",
        title="C-query time of EH (with and without precomputation), Neo4j and GM",
        headers=("dataset", "query", "matcher", "time_s", "precompute_s", "status"),
    )
    templates = representative_templates(per_class=per_class)
    for key in datasets:
        graph = bench_graph(key, scale=scale)
        queries = query_set(graph, kind="C", templates=templates)
        result = run_workload(graph, queries, ("EH", "Neo4j", "GM"), budget=budget)
        for run in result.runs:
            precompute = run.extra.get("precompute_seconds", 0.0)
            report.rows.append((key, run.query, run.matcher, run.seconds, precompute, run.status))
    return report


# ---------------------------------------------------------------------- #
# Fig. 17 — comparison with RM on the Human graph
# ---------------------------------------------------------------------- #


def fig17_rm_human(
    node_counts: Sequence[int] = (8, 12, 16),
    per_size: int = 2,
    scale: float = BENCH_SCALE,
    budget: Optional[Budget] = None,
) -> ExperimentReport:
    """Mean query time of GM-JO, GM-RI and RM on dense / sparse query sets."""
    budget = _budget(budget)
    graph = undirected_double(bench_graph("hu", scale=scale))
    report = ExperimentReport(
        experiment_id="Fig17",
        title="Mean C-query time on the (undirected) Human-shaped graph",
        headers=("query_set", "nodes", "matcher", "mean_time_s", "solved"),
    )
    for dense, set_name in ((True, "dense"), (False, "sparse")):
        for num_nodes in node_counts:
            queries = random_query_set(
                graph, (num_nodes,), kind="C", dense=dense, per_size=per_size, seed=71
            )
            result = run_workload(graph, queries, ("GM-JO", "GM-RI", "RM"), budget=budget)
            for matcher in ("GM-JO", "GM-RI", "RM"):
                report.rows.append(
                    (
                        set_name,
                        num_nodes,
                        matcher,
                        result.average_time(matcher, solved_only=False),
                        result.solved_count(matcher),
                    )
                )
    return report


# ---------------------------------------------------------------------- #
# Fig. 18 — reachability D-queries: GM vs GF vs Neo4j, index build times
# ---------------------------------------------------------------------- #


def fig18_reachability_engines(
    label_counts: Sequence[int] = (5, 10, 15, 20),
    node_counts: Sequence[int] = (300, 600, 900),
    scale: float = BENCH_SCALE,
    budget: Optional[Budget] = None,
    templates: Sequence[str] = ("HQ4", "HQ15", "HQ16"),
) -> ExperimentReport:
    """BFL / transitive-closure / catalog build times and D-query times (Fig. 18)."""
    budget = _budget(budget)
    report = ExperimentReport(
        experiment_id="Fig18",
        title="(a) index/catalog build time; (b) D-query time of GM, GF and Neo4j",
        headers=("part", "labels", "nodes", "query", "matcher", "time_s", "status"),
    )
    base = bench_graph("em", scale=scale)

    # Part (a): build-time growth for BFL vs transitive closure vs catalog.
    for num_nodes in node_counts:
        graph = node_prefix_subgraph(with_label_count(base, 20, seed=5), num_nodes)
        bfl = BloomFilterLabeling(graph)
        closure = TransitiveClosureIndex(graph)
        catalog = build_catalog(graph)
        report.rows.append(("a", 20, graph.num_nodes, "-", "BFL", bfl.build_seconds, "ok"))
        report.rows.append(("a", 20, graph.num_nodes, "-", "TC", closure.build_seconds, "ok"))
        report.rows.append(("a", 20, graph.num_nodes, "-", "CAT", catalog.build_seconds, "ok"))

    # Part (b): D-query evaluation with varying label counts.
    small = node_prefix_subgraph(base, min(node_counts))
    for num_labels in label_counts:
        graph = with_label_count(small, num_labels, seed=5)
        queries = {}
        for index, name in enumerate(templates):
            query = to_descendant_only(instantiate_template(name, graph, seed=83 + index))
            queries[query.name] = query
        result = run_workload(graph, queries, ("Neo4j", "GF", "GM"), budget=budget)
        for run in result.runs:
            report.rows.append(("b", num_labels, graph.num_nodes, run.query, run.matcher, run.seconds, run.status))
    return report


# ---------------------------------------------------------------------- #
# Table 6 — Neo4j vs GM on H-queries
# ---------------------------------------------------------------------- #


def table6_hybrid_engines(
    dataset: str = "em",
    scale: float = BENCH_SCALE,
    budget: Optional[Budget] = None,
    per_class: int = 2,
) -> ExperimentReport:
    """Runtime of Neo4j and GM for H-queries on an em fragment (Table 6)."""
    budget = _budget(budget)
    graph = bench_graph(dataset, scale=scale)
    report = ExperimentReport(
        experiment_id="Table6",
        title="H-query time of the binary-join engine (Neo4j) and GM",
        headers=("dataset", "query", "matcher", "time_s", "matches", "status"),
    )
    templates = representative_templates(per_class=per_class)
    queries = query_set(graph, kind="H", templates=templates)
    result = run_workload(graph, queries, ("Neo4j", "GM"), budget=budget)
    for run in result.runs:
        report.rows.append((dataset, run.query, run.matcher, run.seconds, run.matches, run.status))
    return report


#: Registry used by ``run_all`` and the pytest benchmark wrappers.
ALL_EXPERIMENTS: Dict[str, Callable[..., ExperimentReport]] = {
    "fig08": fig08_hybrid_queries,
    "fig09": fig09_child_queries,
    "table3": table3_descendant_queries,
    "fig10": fig10_label_scaling,
    "fig11": fig11_size_scaling,
    "fig12": fig12_constraint_checking,
    "fig13": fig13_rig_size,
    "fig15": fig15_transitive_reduction,
    "table4": table4_search_order,
    "fig16": fig16_wcoj_engine,
    "table5": table5_engines,
    "fig17": fig17_rm_human,
    "fig18": fig18_reachability_engines,
    "table6": table6_hybrid_engines,
}
