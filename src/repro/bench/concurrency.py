"""Mixed reader/writer workload driver: serialised session vs MVCC service.

The driver runs the *same* logical workload — ``num_batches`` reader
batches over a fixed query set, racing a stream of graph deltas — through
two execution models:

* **serialised** (:func:`run_serialised_workload`): the pre-store world.
  One :class:`~repro.session.QuerySession` owns the graph; readers and the
  writer share it under a single lock, so every batch waits for any apply
  (and any post-invalidation rebuild) ahead of it.
* **concurrent** (:func:`run_concurrent_workload`): a
  :class:`~repro.store.VersionedGraphStore` plus
  :class:`~repro.service.QueryService`.  Reader threads pin epochs and
  proceed during folds; the store's background writer folds the delta
  stream and (with ``warm_on_publish``) rebuilds invalidated artifacts off
  the readers' critical path.

Both return a :class:`MixedWorkloadResult` whose per-batch records carry
the graph version *and the graph object* each batch was answered against,
so :func:`verify_batch_consistency` can later check every result set
bit-for-bit against a cold rebuild of its pinned version — the MVCC
correctness claim, not just the throughput one.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.dynamic.delta import GraphDelta
from repro.matching.result import Budget
from repro.query.pattern import PatternQuery
from repro.service.service import QueryService, ServiceConfig
from repro.session.session import QuerySession
from repro.store.versioned import VersionedGraphStore


@dataclass
class BatchRecord:
    """One reader batch's outcome: when, against what, and what it saw."""

    index: int
    version: int
    seconds: float
    answers: Dict[str, frozenset]
    #: The immutable graph the batch was answered against (retained so the
    #: batch can be re-verified against a cold rebuild of that version).
    graph: object = field(repr=False, default=None)


@dataclass
class MixedWorkloadResult:
    """Aggregate outcome of one mixed reader/writer run."""

    mode: str
    num_queries_per_batch: int
    batches: List[BatchRecord]
    apply_seconds: List[float]
    #: Wall time until the *last reader batch* finished — the serving
    #: metric the store exists to improve.
    reader_wall_seconds: float
    #: Wall time until readers *and* the writer were done.
    total_wall_seconds: float
    service_stats: Optional[Dict[str, object]] = None

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def batch_throughput(self) -> float:
        """Reader batches completed per second of reader wall time."""
        if self.reader_wall_seconds <= 0:
            return 0.0
        return self.num_batches / self.reader_wall_seconds

    @property
    def query_throughput_qps(self) -> float:
        """Reader queries completed per second of reader wall time."""
        return self.batch_throughput * self.num_queries_per_batch

    @property
    def versions_served(self) -> Dict[int, int]:
        """Mapping version -> number of batches answered at it."""
        counts: Dict[int, int] = {}
        for record in self.batches:
            counts[record.version] = counts.get(record.version, 0) + 1
        return counts


def _warm(session: QuerySession, queries: Mapping[str, PatternQuery], budget) -> None:
    """Bring a session to full serving state: indexes built, RIGs cached.

    Matches the dynamic-updates benchmark's warm state (reachability,
    closure, bitmaps, partitions): the artifacts a serving deployment keeps
    hot, and therefore the artifacts a removal-bearing delta forces the
    serialised owner to rebuild inline.
    """
    session.context
    session.transitive_closure
    session.label_bitmaps
    session.bitmap_universe
    session.partitions
    session.run_batch(queries, budget=budget)


def run_serialised_workload(
    graph,
    queries: Mapping[str, PatternQuery],
    num_batches: int,
    deltas: Sequence[GraphDelta],
    budget: Optional[Budget] = None,
    **session_kwargs,
) -> MixedWorkloadResult:
    """The single-owner baseline: one session, one lock, submission order.

    Deltas are interleaved ahead of the batches (delta ``i`` folds before
    batch ``i``), which is how a serialised owner must sequence a feed: a
    batch admitted after an update has to see it, so it also has to wait
    for it.  After each fold the owner restores full serving state
    (rebuilding whatever the delta invalidated) — the same policy the
    store applies with ``warm_on_publish`` — so both execution models
    maintain identical artifacts and differ only in *whose* wall clock the
    maintenance lands on.
    """
    warm_builders = VersionedGraphStore._WARM_BUILDERS
    session = QuerySession(graph, budget=budget, **session_kwargs)
    _warm(session, queries, budget)
    lock = threading.Lock()
    batches: List[BatchRecord] = []
    apply_seconds: List[float] = []

    start = time.perf_counter()
    for index in range(num_batches):
        with lock:
            if index < len(deltas):
                apply_start = time.perf_counter()
                report = session.apply(deltas[index])
                for key in report.invalidated:
                    builder = warm_builders.get(key)
                    if builder is not None:
                        builder(session)
                apply_seconds.append(time.perf_counter() - apply_start)
            batch_start = time.perf_counter()
            report = session.run_batch(queries, budget=budget)
            batches.append(
                BatchRecord(
                    index=index,
                    version=session.version,
                    seconds=time.perf_counter() - batch_start,
                    answers=report.answers(),
                    graph=session.graph,
                )
            )
    reader_wall = time.perf_counter() - start
    with lock:
        for delta in deltas[num_batches:]:
            apply_start = time.perf_counter()
            session.apply(delta)
            apply_seconds.append(time.perf_counter() - apply_start)
    total_wall = time.perf_counter() - start
    return MixedWorkloadResult(
        mode="serialised",
        num_queries_per_batch=len(queries),
        batches=batches,
        apply_seconds=apply_seconds,
        reader_wall_seconds=reader_wall,
        total_wall_seconds=total_wall,
    )


def run_concurrent_workload(
    graph,
    queries: Mapping[str, PatternQuery],
    num_batches: int,
    deltas: Sequence[GraphDelta],
    reader_threads: int = 4,
    budget: Optional[Budget] = None,
    warm_on_publish: bool = True,
    **session_kwargs,
) -> MixedWorkloadResult:
    """The MVCC path: pinned reader batches racing the background writer.

    All deltas are enqueued on the store's writer at t0 and all batches are
    drained by ``reader_threads`` workers, each batch pinning the head it
    starts on.  Readers therefore never wait on a fold: a batch admitted
    while delta ``k`` folds answers from the last published epoch.
    """
    session = QuerySession(graph, budget=budget, **session_kwargs)
    _warm(session, queries, budget)
    store = VersionedGraphStore(session, warm_on_publish=warm_on_publish)
    service = QueryService(
        store, config=ServiceConfig(workers=reader_threads, default_budget=budget)
    )
    batches: List[BatchRecord] = []
    batches_lock = threading.Lock()
    next_batch = iter(range(num_batches))

    def reader_loop() -> None:
        while True:
            with batches_lock:
                index = next(next_batch, None)
            if index is None:
                return
            # Batches go through the service (so its stats describe the
            # measured workload), pinned to an explicitly held snapshot;
            # each reader thread is the unit of parallelism, so the batch
            # itself runs single-worker.
            with store.pin() as snapshot:
                batch_start = time.perf_counter()
                report = service.run_batch(
                    queries, budget=budget, workers=1, snapshot=snapshot
                )
                record = BatchRecord(
                    index=index,
                    version=snapshot.version,
                    seconds=time.perf_counter() - batch_start,
                    answers=report.answers(),
                    graph=snapshot.graph,
                )
            with batches_lock:
                batches.append(record)

    readers = [
        threading.Thread(target=reader_loop, name=f"bench-reader-{i}")
        for i in range(reader_threads)
    ]
    start = time.perf_counter()
    futures = [store.apply_async(delta) for delta in deltas]
    for thread in readers:
        thread.start()
    for thread in readers:
        thread.join()
    reader_wall = time.perf_counter() - start
    store.drain()
    total_wall = time.perf_counter() - start
    apply_seconds = [future.result().seconds for future in futures]
    stats = service.stats_snapshot()
    service.close()
    store.close()
    batches.sort(key=lambda record: record.index)
    return MixedWorkloadResult(
        mode="concurrent",
        num_queries_per_batch=len(queries),
        batches=batches,
        apply_seconds=apply_seconds,
        reader_wall_seconds=reader_wall,
        total_wall_seconds=total_wall,
        service_stats=stats,
    )


def verify_batch_consistency(
    result: MixedWorkloadResult,
    queries: Mapping[str, PatternQuery],
    budget: Optional[Budget] = None,
) -> None:
    """Check every batch against a cold rebuild of its pinned version.

    For each distinct version a batch was answered at, a fresh
    :class:`QuerySession` is built on that version's retained graph and
    the query set re-run from scratch; every batch pinned to that version
    must have produced exactly those answers.  Raises ``AssertionError``
    naming the first diverging (batch, query) otherwise.
    """
    graphs: Dict[int, object] = {}
    for record in result.batches:
        graphs.setdefault(record.version, record.graph)
    expected: Dict[int, Dict[str, frozenset]] = {}
    for version, graph in graphs.items():
        cold = QuerySession(graph, budget=budget)
        expected[version] = cold.run_batch(queries, budget=budget).answers()
    for record in result.batches:
        for name, answer in expected[record.version].items():
            got = record.answers.get(name)
            if got != answer:
                raise AssertionError(
                    f"{result.mode} batch {record.index} diverged from a cold "
                    f"rebuild of version {record.version} on query {name!r}: "
                    f"{len(got or ())} vs {len(answer)} occurrences"
                )
