"""WalDurability: journal + checkpoint + recovery for one graph tenant.

One durable tenant owns one directory::

    <tenant>/
        checkpoint.json   # atomic save_graph_json of some published version
        wal.log           # delta frames journaled since that checkpoint

The lifecycle is the classic write-ahead discipline, composed entirely
from primitives the library already had:

* **journal** — before a fold is published (and before its caller is
  acknowledged), the delta is appended to ``wal.log`` as one fsync'd
  frame carrying ``base_version``/``new_version``
  (:meth:`~repro.dynamic.GraphDelta.to_dict` is the body);
* **checkpoint** — the head graph is written to ``checkpoint.json``
  atomically (:func:`~repro.graph.io.save_graph_json`: temp file +
  ``os.replace``), after which the log truncates — every journaled delta
  is already inside the checkpoint;
* **recover** — load the latest checkpoint, replay the log tail through
  :class:`~repro.dynamic.MutableDataGraph` overlays, *skipping any entry
  whose version is ≤ the checkpoint's*.  The skip makes every crash
  window idempotent: a crash between checkpoint-write and log-truncate
  replays nothing twice, and a crash between journal-append and publish
  simply folds the acknowledged-but-unpublished delta forward.

The hook is driven by :class:`~repro.store.VersionedGraphStore` (which
journals under its writer lock, so appends are naturally serialised) but
is usable standalone.
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from typing import Dict, Optional, Tuple

from repro.dynamic.delta import GraphDelta
from repro.dynamic.overlay import MutableDataGraph
from repro.exceptions import GraphError, WalError
from repro.graph.digraph import DataGraph
from repro.graph.io import load_graph_json, save_graph_json
from repro.wal.log import DeltaLog, scan_log

#: File names inside a tenant's durability directory.
LOG_FILE = "wal.log"
CHECKPOINT_FILE = "checkpoint.json"

#: Frame kind tag of a journaled delta.
KIND_DELTA = "delta"


def is_tenant_directory(directory: str) -> bool:
    """True if ``directory`` holds durable tenant state (checkpoint or log)."""
    return os.path.exists(os.path.join(directory, CHECKPOINT_FILE)) or os.path.exists(
        os.path.join(directory, LOG_FILE)
    )


def remove_tenant_directory(directory: str) -> None:
    """Delete a tenant's durable state (checkpoint, log, the directory)."""
    shutil.rmtree(directory, ignore_errors=True)


class RecoveryReport:
    """What one :meth:`WalDurability.recover` pass did."""

    __slots__ = (
        "checkpoint_version",
        "head_version",
        "entries_applied",
        "entries_skipped",
        "torn_bytes_dropped",
        "seconds",
    )

    def __init__(
        self,
        checkpoint_version: int,
        head_version: int,
        entries_applied: int,
        entries_skipped: int,
        torn_bytes_dropped: int,
        seconds: float,
    ) -> None:
        self.checkpoint_version = checkpoint_version
        self.head_version = head_version
        self.entries_applied = entries_applied
        self.entries_skipped = entries_skipped
        self.torn_bytes_dropped = torn_bytes_dropped
        self.seconds = seconds

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (stats / wire reporting)."""
        return {
            "checkpoint_version": self.checkpoint_version,
            "head_version": self.head_version,
            "entries_applied": self.entries_applied,
            "entries_skipped": self.entries_skipped,
            "torn_bytes_dropped": self.torn_bytes_dropped,
            "seconds": round(self.seconds, 6),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RecoveryReport({self.as_dict()})"


class WalDurability:
    """The durability hook a :class:`~repro.store.VersionedGraphStore` calls.

    Parameters
    ----------
    directory:
        The tenant's storage directory (created if missing).
    checkpoint_every:
        When set, :meth:`should_checkpoint` turns true once that many
        deltas sit in the log — the store then checkpoints automatically
        right after publishing, bounding both log growth and recovery
        replay length.  ``None`` leaves checkpointing fully manual.
    fsync:
        Passed to the :class:`~repro.wal.log.DeltaLog`; ``False`` drops
        the per-append fsync (benchmarking only — it voids the guarantee).

    Construct via :meth:`create` (fresh tenant: writes the initial
    checkpoint so recovery always has a base) or :meth:`recover`
    (existing storage: returns the replayed head graph alongside the
    ready-to-append hook).
    """

    def __init__(
        self,
        directory: str,
        checkpoint_every: Optional[int] = None,
        fsync: bool = True,
    ) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        if checkpoint_every is not None and checkpoint_every < 1:
            raise WalError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.checkpoint_every = checkpoint_every
        self.log = DeltaLog(os.path.join(self.directory, LOG_FILE), fsync=fsync)
        self.checkpoint_path = os.path.join(self.directory, CHECKPOINT_FILE)
        self._lock = threading.Lock()
        self._entries_since_checkpoint = 0
        self._journal_entries = 0
        self._journal_bytes = 0
        self._journal_seconds = 0.0
        self._checkpoints = 0
        self._checkpoint_failures = 0
        self._checkpoint_seconds = 0.0
        self._last_checkpoint_version: Optional[int] = None
        self._last_journaled_version: Optional[int] = None
        self._recovery: Optional[RecoveryReport] = None
        self._closed = False
        self._m_journal_entries = None
        self._m_journal_bytes = None
        self._m_fsync_seconds = None
        self._m_checkpoints = None
        self._m_checkpoint_failures = None
        self._m_checkpoint_seconds = None

    def bind_registry(self, registry) -> None:
        """Mirror every future journal/checkpoint into ``wal_*`` families.

        The fsync-latency histogram observes the full durable-append time
        (serialise + write + fsync) of each journaled delta — the per-fold
        price of the write-ahead guarantee.
        """
        self._m_journal_entries = registry.counter(
            "wal_journal_entries_total", "Deltas journaled ahead of publish"
        )
        self._m_journal_bytes = registry.counter(
            "wal_journal_bytes_total", "Bytes appended to the delta log"
        )
        self._m_fsync_seconds = registry.histogram(
            "wal_fsync_seconds", "Durable journal-append latency (incl. fsync)"
        )
        self._m_checkpoints = registry.counter(
            "wal_checkpoints_total", "Checkpoints written"
        )
        self._m_checkpoint_failures = registry.counter(
            "wal_checkpoint_failures_total", "Checkpoint attempts that raised"
        )
        self._m_checkpoint_seconds = registry.histogram(
            "wal_checkpoint_seconds", "Checkpoint write + log truncate latency"
        )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, directory: str, graph, **kwargs) -> "WalDurability":
        """Initialise fresh durable storage seeded with ``graph``.

        Writes the initial checkpoint (so a tenant that crashes before its
        first delta still recovers) and returns the ready hook.  Refuses a
        directory that already holds tenant state — recover that instead.
        """
        directory = os.fspath(directory)
        if is_tenant_directory(directory):
            raise WalError(
                f"{directory}: already holds durable tenant state; "
                "use WalDurability.recover(...)"
            )
        durability = cls(directory, **kwargs)
        durability.checkpoint(graph)
        return durability

    @classmethod
    def recover(
        cls, directory: str, name: Optional[str] = None, **kwargs
    ) -> Tuple[DataGraph, "WalDurability", RecoveryReport]:
        """Rebuild the head graph from checkpoint + log tail.

        Returns ``(graph, durability, report)``: the graph at the exact
        version the journal acknowledged last, a hook ready to append
        (torn tails repaired), and what the replay did.  Entries whose
        ``new_version`` is ≤ the checkpoint's version are skipped, so a
        crash anywhere in the checkpoint/truncate window replays cleanly.
        """
        started = time.perf_counter()
        directory = os.fspath(directory)
        checkpoint_path = os.path.join(directory, CHECKPOINT_FILE)
        if os.path.exists(checkpoint_path):
            graph = load_graph_json(checkpoint_path, name=name)
        else:
            graph = DataGraph([], [], name=name or os.path.basename(directory))
        checkpoint_version = graph.version
        entries, valid_bytes, torn_bytes = scan_log(os.path.join(directory, LOG_FILE))
        applied = skipped = 0
        # One overlay over the checkpoint, one materialize at the end:
        # each entry folds in O(its ops), not O(graph) — this is why
        # recovery beats re-ingesting the same deltas through the store.
        overlay: Optional[MutableDataGraph] = None
        for index, payload in enumerate(entries):
            if payload.get("kind") != KIND_DELTA:
                raise WalError(
                    f"{directory}: journal entry {index} has unknown kind "
                    f"{payload.get('kind')!r}"
                )
            raw_version = payload.get("new_version")
            new_version = None if raw_version is None else int(raw_version)
            current = graph.version if overlay is None else overlay.version
            if new_version is not None and new_version <= current:
                skipped += 1
                continue
            try:
                delta = GraphDelta.from_dict(payload.get("delta") or {})
                if overlay is None:
                    overlay = MutableDataGraph(graph)
                overlay.apply(delta)
            except GraphError as exc:
                raise WalError(
                    f"{directory}: journal entry {index} does not replay "
                    f"against version {current}: {exc}"
                ) from exc
            if new_version is not None and overlay.version != new_version:
                raise WalError(
                    f"{directory}: journal entry {index} announced version "
                    f"{new_version} but replay produced {overlay.version}"
                )
            applied += 1
        if overlay is not None:
            graph = overlay.materialize(name=graph.name)
        durability = cls(directory, **kwargs)
        dropped = durability.log.repair(valid_bytes)
        durability._entries_since_checkpoint = len(entries)
        durability._last_checkpoint_version = checkpoint_version
        durability._last_journaled_version = graph.version if entries else None
        report = RecoveryReport(
            checkpoint_version=checkpoint_version,
            head_version=graph.version,
            entries_applied=applied,
            entries_skipped=skipped,
            torn_bytes_dropped=dropped,
            seconds=time.perf_counter() - started,
        )
        durability._recovery = report
        return graph, durability, report

    # ------------------------------------------------------------------ #
    # the hook surface the store drives
    # ------------------------------------------------------------------ #

    def journal(self, delta: GraphDelta, old_version: int, new_version: int) -> None:
        """Append one fold's delta to the log, durably, *before* publish.

        Raising here (disk full, closed hook) aborts the fold — the store
        never publishes a version whose delta is not on stable storage.
        """
        if self._closed:
            raise WalError(f"{self.directory}: durability hook is closed")
        started = time.perf_counter()
        written = self.log.append(
            {
                "kind": KIND_DELTA,
                "base_version": int(old_version),
                "new_version": int(new_version),
                "num_ops": len(delta),
                "delta": delta.to_dict(),
            }
        )
        elapsed = time.perf_counter() - started
        with self._lock:
            self._journal_entries += 1
            self._journal_bytes += written
            self._journal_seconds += elapsed
            self._entries_since_checkpoint += 1
            self._last_journaled_version = int(new_version)
        if self._m_journal_entries is not None:
            self._m_journal_entries.inc()
            self._m_journal_bytes.inc(written)
            self._m_fsync_seconds.observe(elapsed)

    def should_checkpoint(self) -> bool:
        """True when the auto-checkpoint threshold is reached."""
        if self.checkpoint_every is None:
            return False
        with self._lock:
            return self._entries_since_checkpoint >= self.checkpoint_every

    def checkpoint(self, graph) -> Dict[str, object]:
        """Snapshot ``graph`` atomically, then truncate the log.

        The write order is the safety argument: the checkpoint replaces
        the old one atomically *first*, so a crash before the truncate
        leaves checkpoint + full log (replay skips the duplicate prefix by
        version), and a crash during the checkpoint write leaves the old
        checkpoint + full log (replay reaches head anyway).
        """
        if self._closed:
            raise WalError(f"{self.directory}: durability hook is closed")
        started = time.perf_counter()
        try:
            save_graph_json(graph, self.checkpoint_path)
        except BaseException:
            with self._lock:
                self._checkpoint_failures += 1
            if self._m_checkpoint_failures is not None:
                self._m_checkpoint_failures.inc()
            raise
        self.log.truncate()
        version = getattr(graph, "version", 0)
        elapsed = time.perf_counter() - started
        with self._lock:
            self._checkpoints += 1
            self._checkpoint_seconds += elapsed
            dropped = self._entries_since_checkpoint
            self._entries_since_checkpoint = 0
            self._last_checkpoint_version = version
        if self._m_checkpoints is not None:
            self._m_checkpoints.inc()
            self._m_checkpoint_seconds.observe(elapsed)
        return {
            "path": self.checkpoint_path,
            "version": version,
            "log_entries_dropped": dropped,
        }

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #

    def counters(self) -> Dict[str, object]:
        """A copy of every durability counter (for ``stats()`` surfaces)."""
        with self._lock:
            counters: Dict[str, object] = {
                "directory": self.directory,
                "journal_entries": self._journal_entries,
                "journal_bytes": self._journal_bytes,
                "journal_seconds": round(self._journal_seconds, 6),
                "checkpoints": self._checkpoints,
                "checkpoint_failures": self._checkpoint_failures,
                "checkpoint_seconds": round(self._checkpoint_seconds, 6),
                "entries_since_checkpoint": self._entries_since_checkpoint,
                "last_checkpoint_version": self._last_checkpoint_version,
                "last_journaled_version": self._last_journaled_version,
                "log_bytes": self.log.size_bytes,
                "fsync": self.log.fsync,
            }
            if self._recovery is not None:
                counters["recovery"] = self._recovery.as_dict()
            return counters

    @property
    def last_recovery(self) -> Optional[RecoveryReport]:
        """The report of the recovery pass that opened this hook, if any."""
        return self._recovery

    def close(self) -> None:
        """Close the log handle; further journal/checkpoint calls raise."""
        self._closed = True
        self.log.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WalDurability(directory={self.directory!r}, "
            f"pending={self._entries_since_checkpoint}, "
            f"checkpoints={self._checkpoints})"
        )
