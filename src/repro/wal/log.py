"""DeltaLog: an append-only, fsync'd log of length-prefixed JSON frames.

The log reuses the wire protocol's frame codec
(:func:`~repro.framing.encode_frame` / :func:`~repro.framing.decode_body`,
the same codec :mod:`repro.server.protocol` speaks on sockets): one frame
per journaled delta, so the on-disk format and the on-wire format are the
same thing — a replica tailing the log over the network reads identical
bytes.

Crash anatomy
-------------
Appends are sequential and the process dies at most once, so the only
damage a crash can inflict is a *torn tail*: the final frame's header or
body is short.  :func:`scan_log` stops at the first short read and
reports the torn byte count; :meth:`DeltaLog.repair` truncates the file
back to the last complete frame so appends resume at a frame boundary.
A frame that is complete but *garbage* — an absurd length prefix, a
non-JSON body — cannot be produced by a crash and raises
:class:`~repro.exceptions.WalError` instead of being dropped silently.
"""

from __future__ import annotations

import os
import tempfile
import threading
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ProtocolError, WalError
from repro.framing import HEADER_BYTES, decode_body, decode_length, encode_frame


def scan_log(path: str) -> Tuple[List[Dict[str, object]], int, int]:
    """Read every complete frame of the log at ``path``.

    Returns ``(entries, valid_bytes, torn_bytes)``: the decoded frame
    payloads, the byte offset of the last complete frame boundary, and how
    many trailing bytes belong to a torn (crash-interrupted) final frame.
    A missing file is an empty log.  Complete-but-corrupt frames raise
    :class:`~repro.exceptions.WalError`.
    """
    entries: List[Dict[str, object]] = []
    if not os.path.exists(path):
        return entries, 0, 0
    size = os.path.getsize(path)
    valid = 0
    with open(path, "rb") as handle:
        while True:
            header = handle.read(HEADER_BYTES)
            if len(header) < HEADER_BYTES:
                break  # clean EOF (empty read) or torn header
            try:
                length = decode_length(header)
            except ProtocolError as exc:
                raise WalError(f"{path}: corrupt frame length at byte {valid}: {exc}") from exc
            body = handle.read(length)
            if len(body) < length:
                break  # torn body
            try:
                entries.append(decode_body(body))
            except ProtocolError as exc:
                raise WalError(f"{path}: corrupt frame body at byte {valid}: {exc}") from exc
            valid = handle.tell()
    return entries, valid, size - valid


def log_identity(path: str) -> Optional[Tuple[int, int]]:
    """Identity ``(st_dev, st_ino)`` of the file currently at ``path``.

    :meth:`DeltaLog.truncate` rotates a new inode into place rather than
    shrinking the old one, so a tailer that remembers the identity it
    opened can tell "the log I am reading was checkpointed away" (identity
    changed — finish the old file, reopen) from "no new frames yet"
    (identity unchanged).  Returns ``None`` while no log file exists.
    """
    try:
        info = os.stat(path)
    except OSError:
        return None
    return (info.st_dev, info.st_ino)


class DeltaLog:
    """One tenant's append-only delta journal.

    Parameters
    ----------
    path:
        The log file.  Created on first append.
    fsync:
        When True (the default, and what durability means), every append
        is flushed *and* fsync'd before it returns — the write-ahead
        contract is that a delta is on stable storage before its fold is
        acknowledged.  ``fsync=False`` trades that guarantee for speed
        (useful for benchmarking the fsync cost itself).
    """

    def __init__(self, path: str, fsync: bool = True) -> None:
        self.path = path
        self.fsync = fsync
        self._handle = None
        self._lock = threading.Lock()
        self.entries_appended = 0
        self.bytes_appended = 0
        self.truncations = 0

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #

    def _ensure_open(self):
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, payload: Dict[str, object]) -> int:
        """Append one frame; durable (fsync'd) before returning.

        Returns the number of bytes written.
        """
        frame = encode_frame(payload)
        with self._lock:
            handle = self._ensure_open()
            handle.write(frame)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
            self.entries_appended += 1
            self.bytes_appended += len(frame)
        return len(frame)

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #

    def truncate(self) -> None:
        """Drop every entry (after a checkpoint made them redundant).

        Rotation, not in-place truncation: a fresh empty file replaces the
        log atomically (``os.replace``), so a concurrent tailer holding the
        old inode open keeps reading *stable* bytes to a clean EOF instead
        of watching the file shrink mid-frame and then refill with frames
        from a later generation — the torn/garbage reads an in-place
        ``truncate(0)`` hands a reader positioned past the new EOF.  The
        tailer detects the rotation by comparing its handle's inode with
        the path's (see :func:`log_identity`) and reopens.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            if not os.path.exists(self.path):
                return
            directory = os.path.dirname(os.path.abspath(self.path)) or "."
            fd, tmp_path = tempfile.mkstemp(
                dir=directory, prefix=os.path.basename(self.path) + ".", suffix=".tmp"
            )
            try:
                if self.fsync:
                    os.fsync(fd)
                os.close(fd)
                os.replace(tmp_path, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
            self.truncations += 1

    def repair(self, valid_bytes: int) -> int:
        """Truncate a torn tail back to the last complete frame boundary.

        ``valid_bytes`` is the boundary :func:`scan_log` reported; returns
        the number of bytes dropped.  Must be called before the first
        append after a crash, so new frames don't land mid-garbage.
        """
        with self._lock:
            if self._handle is not None:
                raise WalError(f"{self.path}: repair must precede appends")
            if not os.path.exists(self.path):
                return 0
            size = os.path.getsize(self.path)
            if size <= valid_bytes:
                return 0
            with open(self.path, "rb+") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
            return size - valid_bytes

    @property
    def size_bytes(self) -> int:
        """Current on-disk size of the log."""
        return os.path.getsize(self.path) if os.path.exists(self.path) else 0

    def close(self) -> None:
        """Close the append handle (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "DeltaLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaLog(path={self.path!r}, appended={self.entries_appended}, "
            f"bytes={self.size_bytes})"
        )
