"""DeltaLog: an append-only, fsync'd log of length-prefixed JSON frames.

The log reuses the wire protocol's frame codec
(:func:`~repro.framing.encode_frame` / :func:`~repro.framing.decode_body`,
the same codec :mod:`repro.server.protocol` speaks on sockets): one frame
per journaled delta, so the on-disk format and the on-wire format are the
same thing — a replica tailing the log over the network reads identical
bytes.

Crash anatomy
-------------
Appends are sequential and the process dies at most once, so the only
damage a crash can inflict is a *torn tail*: the final frame's header or
body is short.  :func:`scan_log` stops at the first short read and
reports the torn byte count; :meth:`DeltaLog.repair` truncates the file
back to the last complete frame so appends resume at a frame boundary.
A frame that is complete but *garbage* — an absurd length prefix, a
non-JSON body — cannot be produced by a crash and raises
:class:`~repro.exceptions.WalError` instead of being dropped silently.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ProtocolError, WalError
from repro.framing import HEADER_BYTES, decode_body, decode_length, encode_frame


def scan_log(path: str) -> Tuple[List[Dict[str, object]], int, int]:
    """Read every complete frame of the log at ``path``.

    Returns ``(entries, valid_bytes, torn_bytes)``: the decoded frame
    payloads, the byte offset of the last complete frame boundary, and how
    many trailing bytes belong to a torn (crash-interrupted) final frame.
    A missing file is an empty log.  Complete-but-corrupt frames raise
    :class:`~repro.exceptions.WalError`.
    """
    entries: List[Dict[str, object]] = []
    if not os.path.exists(path):
        return entries, 0, 0
    size = os.path.getsize(path)
    valid = 0
    with open(path, "rb") as handle:
        while True:
            header = handle.read(HEADER_BYTES)
            if len(header) < HEADER_BYTES:
                break  # clean EOF (empty read) or torn header
            try:
                length = decode_length(header)
            except ProtocolError as exc:
                raise WalError(f"{path}: corrupt frame length at byte {valid}: {exc}") from exc
            body = handle.read(length)
            if len(body) < length:
                break  # torn body
            try:
                entries.append(decode_body(body))
            except ProtocolError as exc:
                raise WalError(f"{path}: corrupt frame body at byte {valid}: {exc}") from exc
            valid = handle.tell()
    return entries, valid, size - valid


class DeltaLog:
    """One tenant's append-only delta journal.

    Parameters
    ----------
    path:
        The log file.  Created on first append.
    fsync:
        When True (the default, and what durability means), every append
        is flushed *and* fsync'd before it returns — the write-ahead
        contract is that a delta is on stable storage before its fold is
        acknowledged.  ``fsync=False`` trades that guarantee for speed
        (useful for benchmarking the fsync cost itself).
    """

    def __init__(self, path: str, fsync: bool = True) -> None:
        self.path = path
        self.fsync = fsync
        self._handle = None
        self._lock = threading.Lock()
        self.entries_appended = 0
        self.bytes_appended = 0

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #

    def _ensure_open(self):
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, payload: Dict[str, object]) -> int:
        """Append one frame; durable (fsync'd) before returning.

        Returns the number of bytes written.
        """
        frame = encode_frame(payload)
        with self._lock:
            handle = self._ensure_open()
            handle.write(frame)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
            self.entries_appended += 1
            self.bytes_appended += len(frame)
        return len(frame)

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #

    def truncate(self) -> None:
        """Drop every entry (after a checkpoint made them redundant)."""
        with self._lock:
            if self._handle is not None:
                self._handle.truncate(0)
                self._handle.flush()
                if self.fsync:
                    os.fsync(self._handle.fileno())
            elif os.path.exists(self.path):
                with open(self.path, "wb") as handle:
                    if self.fsync:
                        os.fsync(handle.fileno())

    def repair(self, valid_bytes: int) -> int:
        """Truncate a torn tail back to the last complete frame boundary.

        ``valid_bytes`` is the boundary :func:`scan_log` reported; returns
        the number of bytes dropped.  Must be called before the first
        append after a crash, so new frames don't land mid-garbage.
        """
        with self._lock:
            if self._handle is not None:
                raise WalError(f"{self.path}: repair must precede appends")
            if not os.path.exists(self.path):
                return 0
            size = os.path.getsize(self.path)
            if size <= valid_bytes:
                return 0
            with open(self.path, "rb+") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
            return size - valid_bytes

    @property
    def size_bytes(self) -> int:
        """Current on-disk size of the log."""
        return os.path.getsize(self.path) if os.path.exists(self.path) else 0

    def close(self) -> None:
        """Close the append handle (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "DeltaLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaLog(path={self.path!r}, appended={self.entries_appended}, "
            f"bytes={self.size_bytes})"
        )
