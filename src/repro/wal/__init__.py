"""Durability: per-tenant delta write-ahead log, checkpoints, recovery.

The dynamic layer already had every primitive a log needs — serialisable
:class:`~repro.dynamic.GraphDelta` batches, the monotone
:attr:`DataGraph.version`, atomic :func:`~repro.graph.io.save_graph_json`
— so durability is a composition:

* :class:`DeltaLog` — append-only journal of wire-format frames, fsync'd
  per append, torn-tail aware (:func:`scan_log` / :meth:`DeltaLog.repair`);
* :class:`WalDurability` — the hook a
  :class:`~repro.store.VersionedGraphStore` journals each delta through
  *before* publishing, plus snapshot checkpoints that truncate the log
  and idempotent version-checked :meth:`~WalDurability.recover`;
* :class:`RecoveryReport` — what one recovery pass applied/skipped.

Entry points one layer up: ``GraphDB.open_durable(directory)`` recovers a
single database; ``GraphCatalog.open(data_dir)`` recovers every tenant a
restarted :class:`~repro.server.GraphServer` should come back with.
"""

from repro.wal.durability import (
    CHECKPOINT_FILE,
    LOG_FILE,
    RecoveryReport,
    WalDurability,
    is_tenant_directory,
    remove_tenant_directory,
)
from repro.wal.log import DeltaLog, log_identity, scan_log

__all__ = [
    "CHECKPOINT_FILE",
    "LOG_FILE",
    "DeltaLog",
    "RecoveryReport",
    "WalDurability",
    "is_tenant_directory",
    "remove_tenant_directory",
    "log_identity",
    "scan_log",
]
