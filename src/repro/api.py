"""GraphDB: the unified facade over the whole execution stack.

Every capability the library grew — cached-index sessions (PR 1), dynamic
updates (PR 2), the MVCC store and the concurrent query service (PR 3),
pipelined streaming (this layer) — historically had its own entry point:
build a :class:`~repro.graph.digraph.DataGraph`, wrap a
:class:`~repro.session.QuerySession`, wrap *that* in a
:class:`~repro.store.VersionedGraphStore`, put a
:class:`~repro.service.QueryService` in front, and parse query text with
:func:`~repro.query.parse_query` on the side.  :class:`GraphDB` unifies
them behind one object with a database-shaped surface::

    from repro import GraphDB

    with GraphDB.open() as db:                    # empty database
        people = db.ingest(labels=["Person", "Person", "Project"],
                           edges=[(0, 2), (1, 2)])
        report = db.query("node p Person\\nnode j Project\\nedge p -> j")
        for page in db.stream("node p Person\\nnode j Project\\nedge p => j").pages():
            ...
        db.apply(delta)                           # publishes a new version
        db.stats()                                # service + store gauges

``open`` also accepts an existing :class:`DataGraph`, a
:class:`QuerySession` (its warm artifacts seed the first epoch), a
:class:`VersionedGraphStore`, or a path to a graph saved with
:func:`~repro.graph.io.save_graph_json`.  The old entry points all keep
working — the facade only composes them.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.dynamic.delta import GraphDelta
from repro.dynamic.maintenance import ApplyReport
from repro.explain.plan import QueryPlan
from repro.graph.digraph import DataGraph
from repro.graph.io import load_graph_json, save_graph_json
from repro.matching.result import Budget, MatchReport, jsonable
from repro.obs.telemetry import Telemetry
from repro.query.parser import parse_query
from repro.query.pattern import PatternQuery
from repro.service.service import QueryService, ServiceBatchReport, ServiceConfig, StreamingResult
from repro.session.batch import QueryOutcome
from repro.session.session import QuerySession
from repro.store.versioned import StoreSnapshot, VersionedGraphStore

#: Anything :meth:`GraphDB.open` can bootstrap from.
GraphSource = Union[DataGraph, QuerySession, VersionedGraphStore, str, os.PathLike, None]

#: A query, as a parsed pattern or DSL text (``node a L\nedge a -> b`` ...).
QueryLike = Union[PatternQuery, str]

#: Sentinel for "create a default Telemetry" (so explicit ``None`` can
#: mean "telemetry disabled" — the zero-overhead arm of bench_obs).
_DEFAULT_TELEMETRY = object()


class GraphDB:
    """One graph database: storage, versioning, serving, streaming.

    Composed of the existing layers — a :class:`VersionedGraphStore` for
    MVCC versioning and a :class:`QueryService` for admission-controlled
    concurrent execution — so everything those layers guarantee (pinned
    snapshots, copy-on-write folds, bounded queues, budget enforcement,
    pipelined streaming) holds here too.

    Construct via :meth:`open` / :meth:`from_edges`; the instance is a
    context manager and must be :meth:`close`\\ d to stop the worker pool.
    """

    #: True on databases that only fold deltas shipped by a replication
    #: primary (see :meth:`open_replica`).  Both the in-process write
    #: methods (:meth:`ingest` / :meth:`apply` / :meth:`apply_async` /
    #: :meth:`checkpoint`) and the server's wire surface reject writes
    #: against a read-only database with
    #: :class:`~repro.exceptions.ReadOnlyReplicaError` — a local fold
    #: would fork the replica's version chain off the primary's.
    read_only = False

    def __init__(
        self,
        store: VersionedGraphStore,
        config: Optional[ServiceConfig] = None,
        owns_store: bool = True,
        telemetry=_DEFAULT_TELEMETRY,
    ) -> None:
        if telemetry is _DEFAULT_TELEMETRY:
            telemetry = Telemetry()
        #: The database's :class:`~repro.obs.Telemetry` context — metrics
        #: registry, tracer and slow-query log — shared by every layer
        #: (store, sessions, WAL, service).  ``None`` when the database
        #: was opened with ``telemetry=None`` (instrumentation disabled).
        self.telemetry = telemetry
        self.store = store
        store.bind_telemetry(telemetry)
        self.service = QueryService(store, config=config, telemetry=telemetry)
        self._owns_store = owns_store
        #: Callables run (in registration order) at the top of
        #: :meth:`close` — how optional attachments (the replication hub,
        #: a replica tail) tear down with the database.
        self._close_hooks = []

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def open(
        cls,
        source: GraphSource = None,
        config: Optional[ServiceConfig] = None,
        warm_on_publish: bool = False,
        durability=None,
        telemetry=_DEFAULT_TELEMETRY,
        **session_kwargs,
    ) -> "GraphDB":
        """Open a database over ``source``.

        ``source`` may be:

        * ``None`` — an empty database (grow it with :meth:`ingest`);
        * a :class:`DataGraph` — served as version 0;
        * a :class:`QuerySession` — its already-built artifacts seed the
          first epoch (the store freezes and takes ownership of it);
        * a :class:`VersionedGraphStore` — served as-is (not closed with
          the database);
        * a path to a JSON graph file written by
          :func:`~repro.graph.io.save_graph_json` / :meth:`save`.

        ``durability`` attaches a write-ahead hook (see
        :class:`~repro.wal.WalDurability` and :meth:`open_durable`) to the
        store created here: every fold journals before it publishes.

        ``telemetry`` is the database's observability context: by default
        every database gets its own :class:`~repro.obs.Telemetry` (metrics
        registry always on; tracing and slow-query logging governed by
        its knobs).  Pass an explicit ``Telemetry(...)`` to share a
        registry or enable tracing, or ``None`` to disable instrumentation
        entirely (the baseline arm of ``benchmarks/bench_obs.py``).

        ``session_kwargs`` (``reachability_kind``, ``budget``, ...) are
        forwarded to the underlying :class:`QuerySession` when one is
        created here; ``config`` tunes the serving layer.
        """
        owns_store = True
        if isinstance(source, VersionedGraphStore):
            if durability is not None:
                raise TypeError(
                    "durability cannot be attached to an existing "
                    "VersionedGraphStore — pass it when the store is created"
                )
            store = source
            owns_store = False
        else:
            if source is None:
                graph: Union[DataGraph, QuerySession] = DataGraph([], [], name="graphdb")
            elif isinstance(source, (DataGraph, QuerySession)):
                graph = source
            elif isinstance(source, (str, os.PathLike)):
                graph = load_graph_json(os.fspath(source))
            else:
                raise TypeError(
                    "GraphDB.open expects a DataGraph, QuerySession, "
                    f"VersionedGraphStore, path or None — got {type(source).__name__}"
                )
            store = VersionedGraphStore(
                graph,
                warm_on_publish=warm_on_publish,
                durability=durability,
                **session_kwargs,
            )
        return cls(store, config=config, owns_store=owns_store, telemetry=telemetry)

    @classmethod
    def open_durable(
        cls,
        directory: Union[str, os.PathLike],
        config: Optional[ServiceConfig] = None,
        checkpoint_every: Optional[int] = None,
        name: Optional[str] = None,
        labels: Sequence[str] = (),
        edges: Iterable[Tuple[int, int]] = (),
        **open_kwargs,
    ) -> "GraphDB":
        """Open a database whose tenants survive process restarts.

        ``directory`` is the tenant's durable storage (checkpoint + delta
        write-ahead log).  A directory that already holds tenant state is
        **recovered**: the latest checkpoint is loaded and the journal
        tail replayed to the exact head version the log last acknowledged
        (the pass is recorded in :attr:`last_recovery` and in
        ``stats()["durability"]["recovery"]``).  A fresh directory is
        **initialised** with ``labels``/``edges`` (both empty gives an
        empty database) and an initial checkpoint.  Either way, every
        subsequent fold journals before it publishes; ``checkpoint_every``
        bounds log growth by checkpointing automatically after that many
        folds (manual :meth:`checkpoint` is always available).
        """
        from repro.wal.durability import WalDurability, is_tenant_directory

        directory = os.fspath(directory)
        if is_tenant_directory(directory):
            graph, durability, _report = WalDurability.recover(
                directory, name=name, checkpoint_every=checkpoint_every
            )
        else:
            graph = DataGraph(
                list(labels),
                sorted(set(edges)),
                name=name or os.path.basename(directory) or "graphdb",
            )
            durability = WalDurability.create(
                directory, graph, checkpoint_every=checkpoint_every
            )
        return cls.open(graph, config=config, durability=durability, **open_kwargs)

    @classmethod
    def open_replica(
        cls,
        host: str,
        port: int,
        graph: str,
        data_dir: Optional[Union[str, os.PathLike]] = None,
        config: Optional[ServiceConfig] = None,
        checkpoint_every: Optional[int] = None,
        **open_kwargs,
    ) -> "GraphDB":
        """Open a read-only replica of a tenant served by a primary.

        Connects to the :class:`~repro.server.GraphServer` at
        ``host:port``, bootstraps ``graph`` from a shipped snapshot (or,
        with ``data_dir``, recovers the replica's own write-ahead log and
        tails from its exact pre-crash version), then folds every delta
        the primary publishes through the ordinary store publish path on
        a background thread.  The returned database serves the full read
        surface at the replicated version and refuses local writes
        (:attr:`read_only`); its replication state — mode, lag in
        versions and seconds, frames applied — is available as
        ``db.replication_status()`` and through the
        ``replication_*`` metric families in :meth:`metrics`.  Closing
        the database stops the tail.
        """
        from repro.replication.replica import ReplicaTail

        tail = ReplicaTail(
            host,
            int(port),
            graph,
            data_dir=os.fspath(data_dir) if data_dir is not None else None,
            config=config,
            checkpoint_every=checkpoint_every,
            **open_kwargs,
        )
        return tail.start()

    @classmethod
    def from_edges(
        cls,
        labels: Sequence[str],
        edges: Iterable[Tuple[int, int]],
        name: str = "graphdb",
        config: Optional[ServiceConfig] = None,
        **session_kwargs,
    ) -> "GraphDB":
        """Open a database directly over node labels and an edge list."""
        return cls.open(
            DataGraph(list(labels), sorted(set(edges)), name=name),
            config=config,
            **session_kwargs,
        )

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def _require_writable(self) -> None:
        if self.read_only:
            from repro.exceptions import ReadOnlyReplicaError

            raise ReadOnlyReplicaError(
                "this database is a read-only replica; send writes to the"
                " primary (e.g. through a RoutedClient)"
            )

    def ingest(
        self,
        labels: Sequence[str] = (),
        edges: Iterable[Tuple[int, int]] = (),
        remove_edges: Iterable[Tuple[int, int]] = (),
    ) -> ApplyReport:
        """Fold new nodes and edges into a new published version.

        ``labels`` appends one node per label; the new nodes receive the
        next dense ids (``db.num_nodes`` before the call, onward), so
        ``edges`` may reference both existing and just-added ids.  Under
        the hood this is one :class:`~repro.dynamic.GraphDelta` folded
        through the store's copy-on-write writer — pinned readers are
        never disturbed.  Returns the fold's
        :class:`~repro.dynamic.ApplyReport`.
        """
        self._require_writable()
        delta = GraphDelta.for_graph(self.store.graph)
        for label in labels:
            delta.add_node(label)
        for source, target in edges:
            delta.add_edge(source, target)
        for source, target in remove_edges:
            delta.remove_edge(source, target)
        return self.store.apply(delta)

    def apply(self, delta: GraphDelta, materialize: bool = True) -> ApplyReport:
        """Fold a prepared delta synchronously (see :meth:`VersionedGraphStore.apply`)."""
        self._require_writable()
        return self.store.apply(delta, materialize=materialize)

    def apply_async(self, delta: GraphDelta, materialize: bool = True):
        """Queue a delta on the store's background writer; returns a future."""
        self._require_writable()
        return self.store.apply_async(delta, materialize=materialize)

    def delta(self) -> GraphDelta:
        """A fresh :class:`GraphDelta` written against the current head."""
        return GraphDelta.for_graph(self.store.graph)

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    @staticmethod
    def _as_query(query: QueryLike, name: Optional[str] = None) -> PatternQuery:
        if isinstance(query, PatternQuery):
            return query
        return parse_query(query, name=name or "query")

    def query(
        self,
        query: QueryLike,
        engine: Optional[str] = None,
        budget: Optional[Budget] = None,
        deadline_seconds: Optional[float] = None,
        timeout: Optional[float] = None,
        name: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> MatchReport:
        """Evaluate one query (DSL text or :class:`PatternQuery`) to completion.

        Admission-controlled and version-pinned: the query runs on a
        worker against a pinned snapshot of the head.  ``trace_id`` forces
        end-to-end tracing regardless of the telemetry sample rate; the
        span tree lands in ``report.extra["trace"]``.
        """
        return self.service.submit(
            self._as_query(query, name),
            engine=engine,
            budget=budget,
            deadline_seconds=deadline_seconds,
            trace_id=trace_id,
        ).result(timeout)

    def stream(
        self,
        query: QueryLike,
        engine: Optional[str] = None,
        budget: Optional[Budget] = None,
        page_size: int = 256,
        deadline_seconds: Optional[float] = None,
        keep_occurrences: bool = True,
        name: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> StreamingResult:
        """Evaluate incrementally: pages flow before the query finishes."""
        return self.service.stream(
            self._as_query(query, name),
            engine=engine,
            budget=budget,
            page_size=page_size,
            deadline_seconds=deadline_seconds,
            keep_occurrences=keep_occurrences,
            trace_id=trace_id,
        )

    def count(
        self,
        query: QueryLike,
        engine: str = "GM",
        budget: Optional[Budget] = None,
        name: Optional[str] = None,
    ) -> int:
        """Number of occurrences at the current head (counting drain).

        Runs in the calling thread against a pinned snapshot, through the
        streaming iterator — no occurrence list is ever materialised.
        """
        with self.store.pin() as snapshot:
            return snapshot.count(self._as_query(query, name), engine=engine, budget=budget)

    def histogram(
        self,
        query: QueryLike,
        node: Optional[int] = None,
        engine: str = "GM",
        budget: Optional[Budget] = None,
        name: Optional[str] = None,
    ) -> Dict[str, int]:
        """Per-label histogram of the distinct data nodes in the result set.

        A streamed aggregation drain over a pinned snapshot of the head:
        counts how many distinct data nodes of each label participate in at
        least one occurrence (bindings of query node ``node`` only, when
        given), without ever materialising the occurrence list.
        """
        with self.store.pin() as snapshot:
            return snapshot.histogram(
                self._as_query(query, name), node=node, engine=engine, budget=budget
            )

    def explain(
        self,
        query: QueryLike,
        engine: str = "GM",
        analyze: bool = False,
        budget: Optional[Budget] = None,
        name: Optional[str] = None,
    ) -> QueryPlan:
        """EXPLAIN (or, with ``analyze=True``, EXPLAIN ANALYZE) a query.

        ``analyze=False`` plans without executing: the returned
        :class:`~repro.explain.QueryPlan` carries the ordering strategy,
        the chosen vertex order, per-step candidate estimates and which
        cached artifacts the plan consults.  ``analyze=True`` executes the
        query (under ``budget``) with per-operator counters; the plan's
        root actual row count equals the occurrence count a plain
        :meth:`query` would report.  ``plan.render()`` produces the
        deterministic text tree; ``plan.to_dict()`` the JSON form.
        """
        with self.store.pin() as snapshot:
            return snapshot.explain(
                self._as_query(query, name), engine=engine, analyze=analyze, budget=budget
            )

    def run_batch(self, queries, **kwargs) -> ServiceBatchReport:
        """Execute a whole batch against one pinned version (see
        :meth:`QueryService.run_batch`)."""
        return self.service.run_batch(queries, **kwargs)

    def pin(self, version: Optional[int] = None) -> StoreSnapshot:
        """Pin a version (head by default) for repeated consistent reads."""
        return self.store.pin(version)

    # ------------------------------------------------------------------ #
    # introspection / persistence
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> DataGraph:
        """The head version's immutable data graph."""
        return self.store.graph

    @property
    def num_nodes(self) -> int:
        """Node count of the head version."""
        return self.store.graph.num_nodes

    @property
    def head_version(self) -> int:
        """The latest published graph version."""
        return self.store.head_version

    @property
    def durability(self):
        """The store's write-ahead hook (``None`` for in-memory databases)."""
        return self.store.durability

    @property
    def last_recovery(self):
        """The :class:`~repro.wal.RecoveryReport` that opened this database, if any."""
        durability = self.store.durability
        return getattr(durability, "last_recovery", None)

    def checkpoint(self) -> Dict[str, object]:
        """Snapshot the head version durably and truncate the delta log.

        Requires a durable database (see :meth:`open_durable`); returns
        the checkpoint summary (path, version, log entries dropped).
        """
        self._require_writable()
        return self.store.checkpoint()

    def stats(self) -> Dict[str, object]:
        """Service counters merged with the store's version-chain gauges.

        Durable databases additionally carry a ``durability`` section:
        journal appends/bytes/seconds, checkpoints, the log backlog since
        the last checkpoint, and the recovery report when this instance
        was opened from existing storage.
        """
        stats = self.service.stats_snapshot()
        durability = self.store.durability
        if durability is not None:
            stats["durability"] = durability.counters()
        return stats

    def metrics(self, format: str = "json"):
        """The telemetry registry's metric families, snapshotted.

        ``format="json"`` returns the structured snapshot
        (:meth:`~repro.obs.MetricsRegistry.snapshot`); ``"prometheus"``
        returns the text exposition format ready for a scrape endpoint.
        Raises :class:`ValueError` on other formats and
        :class:`~repro.exceptions.StoreError` when the database was opened
        with ``telemetry=None``.
        """
        if self.telemetry is None:
            from repro.exceptions import StoreError

            raise StoreError("database was opened with telemetry disabled")
        if format == "json":
            return self.telemetry.registry.snapshot()
        if format == "prometheus":
            return self.telemetry.registry.to_prometheus()
        raise ValueError(f"unknown metrics format {format!r} (json | prometheus)")

    def slow_queries(self, limit: Optional[int] = None):
        """Recent slow-query log entries, oldest first (empty if disabled)."""
        if self.telemetry is None:
            return []
        return self.telemetry.slow_log.recent(limit)

    def trace_spans(
        self, trace_id: Optional[str] = None, limit: Optional[int] = None
    ):
        """Finished distributed-trace spans from this tenant's span ring.

        With ``trace_id``: every retained span of that trace (this node's
        contribution to the cross-node tree —
        :func:`repro.obs.assemble_trace` stitches contributions from
        several nodes).  Without: the most recent spans, oldest first.
        Empty when telemetry is disabled.
        """
        if self.telemetry is None:
            return []
        if trace_id is not None:
            return self.telemetry.spans.for_trace(trace_id)
        return self.telemetry.spans.recent(limit)

    def save(self, path: str) -> str:
        """Persist the head version as one JSON document (see :meth:`open`)."""
        return save_graph_json(self.store.graph, path)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Stop the service workers (and an owned store's writer)."""
        hooks, self._close_hooks = list(self._close_hooks), []
        for hook in hooks:
            try:
                hook()
            except Exception:  # a hook must not block database shutdown
                pass
        self.service.close()
        if not self._owns_store:
            return
        # The service closes a store it created itself; here the store was
        # created by (and belongs to) the facade.
        self.store.close()

    def __enter__(self) -> "GraphDB":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphDB(head=v{self.store.head_version}, "
            f"nodes={self.store.graph.num_nodes}, "
            f"workers={self.service.config.workers})"
        )


# ---------------------------------------------------------------------- #
# wire forms
#
# The request/response payloads the wire protocol (repro.server /
# repro.client) exchanges are the serialisable forms of the facade's
# domain objects.  Deltas (`GraphDelta.to_dict`), patterns
# (`PatternQuery.to_dict`), match reports (`MatchReport.to_wire`) and
# budgets (`Budget.to_wire`) carry their own codecs; the aggregates
# below — apply reports and batch reports — are encoded here so both
# endpoints share one definition.
# ---------------------------------------------------------------------- #


def encode_apply_report(report: ApplyReport) -> Dict[str, object]:
    """JSON-serialisable form of an :class:`ApplyReport`."""
    return {
        "old_version": report.old_version,
        "new_version": report.new_version,
        "num_ops": report.num_ops,
        "seconds": report.seconds,
        "patched": list(report.patched),
        "invalidated": list(report.invalidated),
    }


def decode_apply_report(payload: Dict[str, object]) -> ApplyReport:
    """Rebuild an :class:`ApplyReport` from :func:`encode_apply_report` output."""
    return ApplyReport(
        old_version=int(payload.get("old_version", 0)),
        new_version=int(payload.get("new_version", 0)),
        num_ops=int(payload.get("num_ops", 0)),
        seconds=float(payload.get("seconds", 0.0)),
        patched=list(payload.get("patched", ())),
        invalidated=list(payload.get("invalidated", ())),
    )


def encode_batch_report(report: ServiceBatchReport) -> Dict[str, object]:
    """JSON-serialisable form of a :class:`ServiceBatchReport`."""
    return {
        "engine": report.engine,
        "wall_seconds": report.wall_seconds,
        "workers": report.workers,
        "cache_hits": dict(report.cache_hits),
        "cache_misses": dict(report.cache_misses),
        "version": report.version,
        "outcomes": [
            {
                "name": outcome.name,
                "seconds": outcome.seconds,
                "num_matches": outcome.num_matches,
                "status": outcome.status,
                "occurrences": [list(occurrence) for occurrence in outcome.occurrences],
                "extra": {key: jsonable(value) for key, value in outcome.extra.items()},
            }
            for outcome in report.outcomes
        ],
    }


def decode_batch_report(payload: Dict[str, object]) -> ServiceBatchReport:
    """Rebuild a :class:`ServiceBatchReport` from :func:`encode_batch_report` output."""
    outcomes = [
        QueryOutcome(
            name=str(raw.get("name", "query")),
            seconds=float(raw.get("seconds", 0.0)),
            num_matches=int(raw.get("num_matches", 0)),
            status=str(raw.get("status", "ok")),
            occurrences=tuple(
                tuple(occurrence) for occurrence in raw.get("occurrences", ())
            ),
            extra=dict(raw.get("extra", ())),
        )
        for raw in payload.get("outcomes", ())
    ]
    return ServiceBatchReport(
        engine=str(payload.get("engine", "GM")),
        outcomes=outcomes,
        wall_seconds=float(payload.get("wall_seconds", 0.0)),
        workers=int(payload.get("workers", 1)),
        cache_hits=dict(payload.get("cache_hits", ())),
        cache_misses=dict(payload.get("cache_misses", ())),
        version=int(payload.get("version", -1)),
    )
