"""Hybrid graph pattern queries.

A pattern query (Definition 2.3/2.4 of the paper) is a connected directed
graph whose nodes carry labels and whose edges are either *direct* (child)
edges — mapped to single data-graph edges — or *reachability* (descendant)
edges — mapped to paths.  This package provides the query model, a small
textual DSL, query transitive closure / reduction (§3), structural
classification (acyclic / cyclic / clique / combo), the template library
used by the paper's evaluation (HQ0–HQ19) and random query generators.
"""

from repro.query.pattern import EdgeType, PatternEdge, PatternQuery
from repro.query.parser import parse_query, format_query
from repro.query.transitive import (
    transitive_closure,
    transitive_reduction,
    is_transitive_edge,
)
from repro.query.classify import QueryClass, classify_query, is_dag, topological_order
from repro.query.generators import (
    QUERY_TEMPLATES,
    template_query,
    instantiate_template,
    all_template_queries,
    random_pattern_query,
    to_child_only,
    to_descendant_only,
    to_hybrid,
)

__all__ = [
    "EdgeType",
    "PatternEdge",
    "PatternQuery",
    "parse_query",
    "format_query",
    "transitive_closure",
    "transitive_reduction",
    "is_transitive_edge",
    "QueryClass",
    "classify_query",
    "is_dag",
    "topological_order",
    "QUERY_TEMPLATES",
    "template_query",
    "instantiate_template",
    "all_template_queries",
    "random_pattern_query",
    "to_child_only",
    "to_descendant_only",
    "to_hybrid",
]
