"""Query templates and random query generators.

The paper's evaluation (§7.1) uses, for each dataset, query sets of three
types — child-only (C), hybrid (H) and descendant-only (D) — drawn from 20
designed templates ``HQ0 .. HQ19`` grouped into acyclic, cyclic, clique and
combo classes (Fig. 7), plus randomly generated queries of 4–32 nodes for
the biological datasets.  Fig. 7 specifies the templates only pictorially,
so this module defines structurally equivalent templates with the same class
membership used throughout the figures (HQ0/3/5 acyclic, HQ6/8/17 cyclic,
HQ11/12/19 clique with HQ19 a 7-clique, HQ10/13/14/16 combo, HQ2 a tree).

Template edges carry the hybrid (H) edge-type mix; :func:`to_child_only` and
:func:`to_descendant_only` derive the C and D variants, exactly as the paper
derives its C-/D-query sets from the H templates.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import QueryError
from repro.graph.digraph import DataGraph
from repro.query.classify import QueryClass, classify_query
from repro.query.pattern import EdgeType, PatternEdge, PatternQuery

C = EdgeType.CHILD
D = EdgeType.DESCENDANT

# Each template: (number of nodes, ((source, target, edge_type), ...)).
# The hybrid mix keeps roughly half of the edges as descendant edges, as the
# paper does when deriving H-queries from C-queries ("with 50% probability").
_TEMPLATE_DEFINITIONS: Dict[str, Tuple[int, Tuple[Tuple[int, int, EdgeType], ...]]] = {
    # --- acyclic -------------------------------------------------------- #
    "HQ0": (4, ((0, 1, C), (1, 2, D), (2, 3, C))),
    "HQ1": (5, ((0, 1, C), (0, 2, D), (0, 3, C), (0, 4, D))),
    "HQ2": (6, ((0, 1, C), (0, 2, D), (1, 3, C), (1, 4, D), (2, 5, C))),
    "HQ3": (8, ((0, 1, C), (0, 2, D), (1, 3, C), (2, 4, D), (2, 5, C), (4, 6, D), (5, 7, C))),
    "HQ5": (7, ((0, 1, D), (1, 2, C), (1, 3, D), (0, 4, C), (4, 5, D), (4, 6, C))),
    "HQ9": (6, ((0, 1, C), (1, 2, D), (2, 3, C), (3, 4, D), (4, 5, C))),
    # --- cyclic (one or two undirected cycles) --------------------------- #
    "HQ4": (4, ((0, 1, C), (0, 2, D), (1, 3, C), (2, 3, D))),
    "HQ6": (4, ((0, 1, C), (1, 2, D), (0, 2, C), (2, 3, D))),
    "HQ7": (5, ((0, 1, D), (0, 2, C), (1, 3, C), (2, 3, D), (3, 4, C))),
    "HQ8": (5, ((0, 1, C), (1, 2, D), (2, 3, C), (0, 3, D), (3, 4, C))),
    "HQ15": (5, ((0, 1, C), (1, 2, D), (0, 2, C), (2, 3, C), (3, 4, D), (2, 4, C))),
    "HQ17": (6, ((0, 1, C), (1, 2, D), (0, 2, C), (2, 3, D), (3, 4, C), (2, 4, D), (4, 5, C))),
    "HQ18": (6, ((0, 1, D), (1, 2, C), (2, 3, D), (0, 3, C), (3, 4, D), (4, 5, C), (1, 5, D))),
    # --- clique ----------------------------------------------------------- #
    "HQ11": (4, ((0, 1, C), (0, 2, D), (0, 3, C), (1, 2, C), (1, 3, D), (2, 3, C))),
    "HQ12": (
        5,
        (
            (0, 1, C), (0, 2, D), (0, 3, C), (0, 4, D),
            (1, 2, C), (1, 3, D), (1, 4, C),
            (2, 3, C), (2, 4, D),
            (3, 4, C),
        ),
    ),
    "HQ19": (
        7,
        (
            (0, 1, C), (0, 2, D), (0, 3, C), (0, 4, D), (0, 5, C), (0, 6, D),
            (1, 2, C), (1, 3, D), (1, 4, C), (1, 5, D), (1, 6, C),
            (2, 3, C), (2, 4, D), (2, 5, C), (2, 6, D),
            (3, 4, C), (3, 5, D), (3, 6, C),
            (4, 5, C), (4, 6, D),
            (5, 6, C),
        ),
    ),
    # --- combo (more than two undirected cycles) -------------------------- #
    "HQ10": (
        6,
        (
            (0, 1, C), (0, 2, D), (1, 2, C), (1, 3, D),
            (2, 3, C), (2, 4, D), (3, 4, C), (3, 5, D), (4, 5, C),
        ),
    ),
    "HQ13": (
        7,
        (
            (0, 1, C), (0, 2, D), (1, 2, C),
            (1, 3, D), (2, 3, C), (3, 4, D),
            (3, 5, C), (4, 5, D), (4, 6, C), (5, 6, D),
        ),
    ),
    "HQ14": (
        8,
        (
            (0, 1, C), (0, 2, D), (1, 2, C), (1, 3, D), (2, 4, C),
            (3, 4, D), (3, 5, C), (4, 5, D), (4, 6, C), (5, 6, D),
            (5, 7, C), (6, 7, D),
        ),
    ),
    "HQ16": (
        8,
        (
            (0, 1, C), (0, 2, D), (0, 3, C), (1, 2, C), (1, 4, D),
            (2, 4, C), (2, 5, D), (3, 5, C), (4, 6, D), (5, 6, C),
            (5, 7, D), (6, 7, C), (3, 7, D),
        ),
    ),
}

#: Public registry of template names in numeric order.
QUERY_TEMPLATES: Tuple[str, ...] = tuple(
    sorted(_TEMPLATE_DEFINITIONS, key=lambda key: int(key[2:]))
)

#: Templates grouped by their structural class (used to pick the three
#: representatives per class that the paper's figures show).
TEMPLATES_BY_CLASS: Dict[QueryClass, Tuple[str, ...]] = {}


def template_query(name: str) -> PatternQuery:
    """Return the structural template ``name`` with placeholder labels.

    Placeholder labels are ``X0, X1, ...``; use :func:`instantiate_template`
    to draw labels from a data graph.
    """
    try:
        num_nodes, edges = _TEMPLATE_DEFINITIONS[name]
    except KeyError as exc:
        raise QueryError(f"unknown query template {name!r}") from exc
    labels = [f"X{i}" for i in range(num_nodes)]
    return PatternQuery(labels, edges, name=name)


def _fill_templates_by_class() -> None:
    grouping: Dict[QueryClass, List[str]] = {cls: [] for cls in QueryClass}
    for name in QUERY_TEMPLATES:
        grouping[classify_query(template_query(name))].append(name)
    for cls, names in grouping.items():
        TEMPLATES_BY_CLASS[cls] = tuple(names)


_fill_templates_by_class()


# ---------------------------------------------------------------------- #
# edge-type conversions (C / H / D query sets)
# ---------------------------------------------------------------------- #


def to_child_only(query: PatternQuery, name: Optional[str] = None) -> PatternQuery:
    """Replace every edge with a direct (child) edge — the C-query variant."""
    edges = [PatternEdge(edge.source, edge.target, EdgeType.CHILD) for edge in query.edges()]
    return query.with_edges(edges, name=name or query.name.replace("HQ", "CQ"))


def to_descendant_only(query: PatternQuery, name: Optional[str] = None) -> PatternQuery:
    """Replace every edge with a reachability edge — the D-query variant."""
    edges = [PatternEdge(edge.source, edge.target, EdgeType.DESCENDANT) for edge in query.edges()]
    return query.with_edges(edges, name=name or query.name.replace("HQ", "DQ"))


def to_hybrid(query: PatternQuery, probability: float = 0.5, seed: int = 0,
              name: Optional[str] = None) -> PatternQuery:
    """Turn each edge into a reachability edge with the given probability.

    This is how the paper derives H-queries from C-queries for the random
    biological-dataset workloads ("with 50% probability").
    """
    rng = random.Random(seed)
    edges = [
        PatternEdge(
            edge.source,
            edge.target,
            EdgeType.DESCENDANT if rng.random() < probability else EdgeType.CHILD,
        )
        for edge in query.edges()
    ]
    return query.with_edges(edges, name=name or query.name)


# ---------------------------------------------------------------------- #
# instantiation against a data graph
# ---------------------------------------------------------------------- #


def instantiate_template(
    name: str,
    graph: DataGraph,
    seed: int = 0,
    bias_frequent_labels: bool = True,
) -> PatternQuery:
    """Instantiate template ``name`` with labels drawn from ``graph``.

    Labels are sampled from the graph's alphabet; by default the sampling is
    weighted by inverted-list size, which makes instances likely to have
    non-empty (and interesting) answers, matching how the paper instantiates
    its templates on each dataset.
    """
    template = template_query(name)
    rng = random.Random(seed)
    alphabet = list(graph.label_alphabet())
    if not alphabet:
        raise QueryError("cannot instantiate a template on an unlabelled graph")
    if bias_frequent_labels:
        weights = [len(graph.inverted_list(label)) for label in alphabet]
        labels = rng.choices(alphabet, weights=weights, k=template.num_nodes)
    else:
        labels = [rng.choice(alphabet) for _ in range(template.num_nodes)]
    return template.relabeled(labels, name=f"{name}")


def all_template_queries(
    graph: DataGraph, seed: int = 0, kinds: Sequence[str] = ("H",)
) -> Dict[str, PatternQuery]:
    """Instantiate every template on ``graph`` in the requested variants.

    ``kinds`` selects among ``"H"`` (hybrid, as defined), ``"C"``
    (child-only) and ``"D"`` (descendant-only).  The returned mapping is
    keyed by query name (``HQ3``, ``CQ3``, ``DQ3``, ...).
    """
    result: Dict[str, PatternQuery] = {}
    for index, name in enumerate(QUERY_TEMPLATES):
        base = instantiate_template(name, graph, seed=seed + index)
        for kind in kinds:
            if kind == "H":
                result[base.name] = base
            elif kind == "C":
                converted = to_child_only(base)
                result[converted.name] = converted
            elif kind == "D":
                converted = to_descendant_only(base)
                result[converted.name] = converted
            else:
                raise QueryError(f"unknown query kind {kind!r} (use 'C', 'H' or 'D')")
    return result


# ---------------------------------------------------------------------- #
# random queries
# ---------------------------------------------------------------------- #


def random_pattern_query(
    graph: DataGraph,
    num_nodes: int,
    seed: int = 0,
    dense: bool = False,
    descendant_probability: float = 0.5,
    name: Optional[str] = None,
) -> PatternQuery:
    """Generate a random connected pattern query over ``graph``'s labels.

    ``dense=True`` targets an average degree of at least 3 per query node
    (the paper's "dense query sets"); otherwise the degree stays below 3
    ("sparse query sets").  Edge directions are random, edge types follow
    ``descendant_probability``.
    """
    if num_nodes < 2:
        raise QueryError("random queries need at least two nodes")
    rng = random.Random(seed)
    alphabet = list(graph.label_alphabet())
    weights = [len(graph.inverted_list(label)) for label in alphabet]
    labels = rng.choices(alphabet, weights=weights, k=num_nodes)

    # Spanning tree first to guarantee connectivity.
    edges: List[Tuple[int, int, EdgeType]] = []
    existing: set = set()

    def add_edge(u: int, v: int) -> bool:
        if u == v or (u, v) in existing or (v, u) in existing:
            return False
        edge_type = D if rng.random() < descendant_probability else C
        if rng.random() < 0.5:
            u, v = v, u
        edges.append((u, v, edge_type))
        existing.add((u, v))
        return True

    for node in range(1, num_nodes):
        add_edge(rng.randrange(node), node)

    if dense:
        target_edges = max(num_nodes * 3 // 2, num_nodes)
    else:
        target_edges = num_nodes - 1 + max(0, num_nodes // 4)
    attempts = 0
    while len(edges) < target_edges and attempts < 20 * target_edges:
        attempts += 1
        add_edge(rng.randrange(num_nodes), rng.randrange(num_nodes))

    return PatternQuery(labels, edges, name=name or f"rand{num_nodes}N-{seed}")
