"""Pattern-query data model.

A :class:`PatternQuery` is a small directed graph: nodes are dense integers
``0 .. n-1`` with labels, edges carry an :class:`EdgeType` distinguishing
*direct* (child) edges from *reachability* (descendant) edges.  Patterns with
both kinds are *hybrid* patterns — the queries this library is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import QueryError


class EdgeType(Enum):
    """The two edge kinds of a hybrid pattern."""

    #: Direct (child) edge: mapped to a single edge of the data graph.
    CHILD = "child"
    #: Reachability (descendant) edge: mapped to a path in the data graph.
    DESCENDANT = "descendant"

    def symbol(self) -> str:
        """DSL arrow for this edge type ('->' child, '=>' descendant)."""
        return "->" if self is EdgeType.CHILD else "=>"


@dataclass(frozen=True)
class PatternEdge:
    """A typed edge of a pattern query."""

    source: int
    target: int
    edge_type: EdgeType

    @property
    def is_child(self) -> bool:
        """True if this is a direct (child) edge."""
        return self.edge_type is EdgeType.CHILD

    @property
    def is_descendant(self) -> bool:
        """True if this is a reachability (descendant) edge."""
        return self.edge_type is EdgeType.DESCENDANT

    def endpoints(self) -> Tuple[int, int]:
        """The (source, target) pair."""
        return (self.source, self.target)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.source}{self.edge_type.symbol()}{self.target}"


class PatternQuery:
    """A connected, directed, node-labelled hybrid pattern query.

    Parameters
    ----------
    labels:
        Sequence of node labels; query node ``i`` has label ``labels[i]``.
    edges:
        Iterable of either :class:`PatternEdge` or ``(source, target,
        edge_type)`` triples, where ``edge_type`` may be an
        :class:`EdgeType` or one of the strings ``"child"`` /
        ``"descendant"`` / ``"->"`` / ``"=>"``.
    name:
        Optional human-readable name (templates use ``"HQ3"`` etc.).
    """

    __slots__ = ("_labels", "_edges", "_out", "_in", "_edge_index", "name")

    def __init__(
        self,
        labels: Sequence[str],
        edges: Iterable,
        name: str = "query",
    ) -> None:
        self._labels: Tuple[str, ...] = tuple(str(label) for label in labels)
        self.name = name
        n = len(self._labels)
        if n == 0:
            raise QueryError("a pattern query needs at least one node")

        normalised: List[PatternEdge] = []
        seen = set()
        for raw in edges:
            edge = self._normalise_edge(raw)
            if not (0 <= edge.source < n) or not (0 <= edge.target < n):
                raise QueryError(f"edge {edge} references a node outside 0..{n - 1}")
            if edge.source == edge.target:
                raise QueryError(f"self-loop on query node {edge.source} is not allowed")
            key = (edge.source, edge.target)
            if key in seen:
                raise QueryError(f"duplicate query edge ({edge.source}, {edge.target})")
            seen.add(key)
            normalised.append(edge)

        self._edges: Tuple[PatternEdge, ...] = tuple(normalised)
        out: List[List[int]] = [[] for _ in range(n)]
        incoming: List[List[int]] = [[] for _ in range(n)]
        edge_index: Dict[Tuple[int, int], PatternEdge] = {}
        for edge in self._edges:
            out[edge.source].append(edge.target)
            incoming[edge.target].append(edge.source)
            edge_index[(edge.source, edge.target)] = edge
        self._out: Tuple[Tuple[int, ...], ...] = tuple(tuple(sorted(targets)) for targets in out)
        self._in: Tuple[Tuple[int, ...], ...] = tuple(tuple(sorted(sources)) for sources in incoming)
        self._edge_index = edge_index

    @staticmethod
    def _normalise_edge(raw) -> PatternEdge:
        if isinstance(raw, PatternEdge):
            return raw
        try:
            source, target, edge_type = raw
        except (TypeError, ValueError) as exc:
            raise QueryError(f"cannot interpret {raw!r} as a pattern edge") from exc
        if isinstance(edge_type, EdgeType):
            kind = edge_type
        elif edge_type in ("child", "->", "c", "direct"):
            kind = EdgeType.CHILD
        elif edge_type in ("descendant", "=>", "d", "reachability"):
            kind = EdgeType.DESCENDANT
        else:
            raise QueryError(f"unknown edge type {edge_type!r}")
        return PatternEdge(int(source), int(target), kind)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of query nodes."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of query edges."""
        return len(self._edges)

    @property
    def labels(self) -> Tuple[str, ...]:
        """Node labels indexed by query node id."""
        return self._labels

    def nodes(self) -> range:
        """Iterate over query node ids."""
        return range(self.num_nodes)

    def edges(self) -> Tuple[PatternEdge, ...]:
        """All query edges."""
        return self._edges

    def label(self, node: int) -> str:
        """Label of query node ``node``."""
        return self._labels[node]

    def edge(self, source: int, target: int) -> PatternEdge:
        """The edge from ``source`` to ``target``; raises if absent."""
        try:
            return self._edge_index[(source, target)]
        except KeyError as exc:
            raise QueryError(f"no query edge ({source}, {target})") from exc

    def has_edge(self, source: int, target: int) -> bool:
        """True if the query has an edge from ``source`` to ``target``."""
        return (source, target) in self._edge_index

    def children(self, node: int) -> Tuple[int, ...]:
        """Query nodes with an edge from ``node``."""
        return self._out[node]

    def parents(self, node: int) -> Tuple[int, ...]:
        """Query nodes with an edge to ``node``."""
        return self._in[node]

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """All adjacent query nodes (parents and children), deduplicated."""
        return tuple(sorted(set(self._out[node]) | set(self._in[node])))

    def degree(self, node: int) -> int:
        """Total degree (in + out) of a query node."""
        return len(self._out[node]) + len(self._in[node])

    def child_edges(self) -> Tuple[PatternEdge, ...]:
        """Only the direct (child) edges."""
        return tuple(edge for edge in self._edges if edge.is_child)

    def descendant_edges(self) -> Tuple[PatternEdge, ...]:
        """Only the reachability (descendant) edges."""
        return tuple(edge for edge in self._edges if edge.is_descendant)

    def is_hybrid(self) -> bool:
        """True if the query mixes direct and reachability edges."""
        return bool(self.child_edges()) and bool(self.descendant_edges())

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    def is_connected(self) -> bool:
        """True if the underlying undirected graph is connected."""
        if self.num_nodes <= 1:
            return True
        visited = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for neighbor in self.neighbors(node):
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append(neighbor)
        return len(visited) == self.num_nodes

    def undirected_edge_pairs(self) -> FrozenSet[Tuple[int, int]]:
        """Set of undirected edge pairs ``(min, max)``."""
        return frozenset(
            (min(edge.source, edge.target), max(edge.source, edge.target)) for edge in self._edges
        )

    def with_edges(self, edges: Iterable, name: Optional[str] = None) -> "PatternQuery":
        """Return a copy of this query with a different edge set."""
        return PatternQuery(self._labels, edges, name=name or self.name)

    def relabeled(self, labels: Sequence[str], name: Optional[str] = None) -> "PatternQuery":
        """Return a copy with new node labels (same structure)."""
        if len(labels) != self.num_nodes:
            raise QueryError("label count must match the number of query nodes")
        return PatternQuery(labels, self._edges, name=name or self.name)

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (the wire protocol's query payload)."""
        return {
            "name": self.name,
            "labels": list(self._labels),
            "edges": [
                [edge.source, edge.target, edge.edge_type.value]
                for edge in self._edges
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PatternQuery":
        """Rebuild a query from :meth:`to_dict` output.

        Malformed payloads raise :class:`~repro.exceptions.QueryError` (the
        constructor's usual validation plus shape checks here), so a wire
        endpoint can reject a corrupt query without crashing.
        """
        if not isinstance(payload, dict):
            raise QueryError(f"query payload must be an object, got {type(payload).__name__}")
        labels = payload.get("labels")
        if not isinstance(labels, (list, tuple)):
            raise QueryError("query payload needs a 'labels' list")
        edges = payload.get("edges", ())
        if not isinstance(edges, (list, tuple)):
            raise QueryError("query payload 'edges' must be a list")
        return cls(
            labels,
            [tuple(edge) for edge in edges],
            name=str(payload.get("name", "query")),
        )

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternQuery):
            return NotImplemented
        return self._labels == other._labels and set(self._edges) == set(other._edges)

    def __hash__(self) -> int:
        return hash((self._labels, frozenset(self._edges)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PatternQuery(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, hybrid={self.is_hybrid()})"
        )
