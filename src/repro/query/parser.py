"""A small textual DSL for pattern queries.

Grammar (line-oriented; ``#`` starts a comment)::

    node <id> <label>
    edge <source> -> <target>      # direct (child) edge
    edge <source> => <target>      # reachability (descendant) edge

Node ids may be arbitrary identifiers; they are mapped to dense integers in
order of first appearance.  :func:`format_query` emits the same format, so
``parse_query(format_query(q))`` round-trips.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exceptions import QueryParseError
from repro.query.pattern import EdgeType, PatternQuery


def parse_query(text: str, name: str = "query") -> PatternQuery:
    """Parse the DSL in ``text`` into a :class:`PatternQuery`."""
    node_ids: Dict[str, int] = {}
    labels: List[str] = []
    edges: List[Tuple[int, int, EdgeType]] = []

    def node_index(token: str, line_number: int) -> int:
        if token not in node_ids:
            raise QueryParseError(f"line {line_number}: unknown node {token!r} (declare it with 'node')")
        return node_ids[token]

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        keyword = parts[0].lower()
        if keyword == "node":
            if len(parts) != 3:
                raise QueryParseError(f"line {line_number}: expected 'node <id> <label>'")
            _, node_token, label = parts
            if node_token in node_ids:
                raise QueryParseError(f"line {line_number}: node {node_token!r} declared twice")
            node_ids[node_token] = len(labels)
            labels.append(label)
        elif keyword == "edge":
            if len(parts) != 4:
                raise QueryParseError(
                    f"line {line_number}: expected 'edge <source> -> <target>' or 'edge <source> => <target>'"
                )
            _, source_token, arrow, target_token = parts
            if arrow == "->":
                edge_type = EdgeType.CHILD
            elif arrow == "=>":
                edge_type = EdgeType.DESCENDANT
            else:
                raise QueryParseError(f"line {line_number}: unknown arrow {arrow!r} (use -> or =>)")
            edges.append((node_index(source_token, line_number), node_index(target_token, line_number), edge_type))
        else:
            raise QueryParseError(f"line {line_number}: unknown directive {keyword!r}")

    if not labels:
        raise QueryParseError("query text declares no nodes")
    return PatternQuery(labels, edges, name=name)


def format_query(query: PatternQuery) -> str:
    """Serialise ``query`` back into the DSL accepted by :func:`parse_query`."""
    lines = [f"# {query.name}: {query.num_nodes} nodes, {query.num_edges} edges"]
    for node in query.nodes():
        lines.append(f"node n{node} {query.label(node)}")
    for edge in query.edges():
        lines.append(f"edge n{edge.source} {edge.edge_type.symbol()} n{edge.target}")
    return "\n".join(lines) + "\n"
