"""Query transitive closure and transitive reduction (paper §3).

A reachability edge ``(x, y)`` of a pattern query is *transitive* when the
query contains another simple directed path from ``x`` to ``y`` (built from
direct and/or reachability edges).  Transitive edges are redundant — the
path already implies the reachability constraint — and removing them before
evaluation avoids expensive edge-to-path match computations.

* :func:`transitive_closure` adds a reachability edge ``(x, y)`` for every
  pair with ``x`` reaching ``y`` in the query (inference rules IR1/IR2).
* :func:`transitive_reduction` removes redundant reachability edges,
  producing the minimal equivalent query that GM evaluates by default
  (the GM-NR ablation of Fig. 15 skips this step).
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.query.pattern import EdgeType, PatternEdge, PatternQuery


def _reachable(query_edges: List[PatternEdge], num_nodes: int, source: int, target: int) -> bool:
    """Is there a directed path from ``source`` to ``target`` over ``query_edges``?"""
    adjacency: List[List[int]] = [[] for _ in range(num_nodes)]
    for edge in query_edges:
        adjacency[edge.source].append(edge.target)
    if source == target:
        return True
    seen = {source}
    frontier = [source]
    while frontier:
        node = frontier.pop()
        for child in adjacency[node]:
            if child == target:
                return True
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    return False


def is_transitive_edge(query: PatternQuery, edge: PatternEdge) -> bool:
    """True if ``edge`` is a reachability edge implied by another path in ``query``."""
    if not edge.is_descendant:
        return False
    remaining = [other for other in query.edges() if other.endpoints() != edge.endpoints()]
    return _reachable(remaining, query.num_nodes, edge.source, edge.target)


def transitive_closure(query: PatternQuery) -> PatternQuery:
    """Return the query transitive closure (IR1 + IR2, applied to a fixpoint).

    The closure keeps every original edge and adds a reachability edge
    ``(x, y)`` for every ordered pair of distinct query nodes with ``x``
    reaching ``y`` through the query's edges.
    """
    edges: List[PatternEdge] = list(query.edges())
    existing: Set[Tuple[int, int]] = {edge.endpoints() for edge in edges}
    all_edges = list(edges)
    for source in query.nodes():
        for target in query.nodes():
            if source == target or (source, target) in existing:
                continue
            if _reachable(all_edges, query.num_nodes, source, target):
                edges.append(PatternEdge(source, target, EdgeType.DESCENDANT))
                existing.add((source, target))
    return query.with_edges(edges, name=f"{query.name}-closure")


def transitive_reduction(query: PatternQuery) -> PatternQuery:
    """Remove redundant reachability edges from ``query``.

    Direct (child) edges are never removed — they constrain the match more
    tightly than any path.  Reachability edges are dropped greedily: an edge
    is removed when, given the edges still present, another directed path
    connects its endpoints.  For acyclic queries this yields the unique
    transitive reduction; for cyclic queries it yields one of the minimal
    equivalent forms (Definition 3.1 notes uniqueness may fail with cycles).
    """
    kept: List[PatternEdge] = list(query.edges())
    # Examine reachability edges in a deterministic order; repeatedly try to
    # drop edges until no more can be dropped.
    changed = True
    while changed:
        changed = False
        for edge in list(kept):
            if not edge.is_descendant:
                continue
            remaining = [other for other in kept if other.endpoints() != edge.endpoints()]
            if _reachable(remaining, query.num_nodes, edge.source, edge.target):
                kept = remaining
                changed = True
    if len(kept) == query.num_edges:
        return query
    return query.with_edges(kept, name=query.name)
