"""Structural classification of pattern queries.

The paper groups its designed query templates into four classes (§7.1):
*acyclic* (the undirected version is a forest/tree), *cyclic* (contains an
undirected cycle), *clique* (the undirected version is complete) and *combo*
(more than two undirected cycles).  This module implements that
classification plus dag tests / topological orders over the *directed*
query, which the simulation algorithms need.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional, Tuple

from repro.exceptions import QueryError
from repro.query.pattern import PatternQuery


class QueryClass(Enum):
    """Undirected structural class of a pattern query (paper §7.1)."""

    ACYCLIC = "acyclic"
    CYCLIC = "cyclic"
    CLIQUE = "clique"
    COMBO = "combo"


def _undirected_cycle_count(query: PatternQuery) -> int:
    """Number of independent undirected cycles (circuit rank)."""
    undirected = query.undirected_edge_pairs()
    # circuit rank = |E| - |V| + number of connected components
    components = 1 if query.is_connected() else _component_count(query)
    return len(undirected) - query.num_nodes + components


def _component_count(query: PatternQuery) -> int:
    seen = set()
    count = 0
    for start in query.nodes():
        if start in seen:
            continue
        count += 1
        frontier = [start]
        seen.add(start)
        while frontier:
            node = frontier.pop()
            for neighbor in query.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
    return count


def is_undirected_clique(query: PatternQuery) -> bool:
    """True if every pair of query nodes is connected by some edge."""
    n = query.num_nodes
    if n < 2:
        return True
    expected = n * (n - 1) // 2
    return len(query.undirected_edge_pairs()) == expected


def classify_query(query: PatternQuery) -> QueryClass:
    """Classify ``query`` as acyclic / cyclic / clique / combo.

    Clique takes precedence over combo (a 4-clique has 3 independent cycles
    but the paper lists clique templates separately); combo means more than
    two independent undirected cycles; a single or double cycle is cyclic.
    """
    cycles = _undirected_cycle_count(query)
    if cycles <= 0:
        return QueryClass.ACYCLIC
    if is_undirected_clique(query):
        return QueryClass.CLIQUE
    if cycles > 2:
        return QueryClass.COMBO
    return QueryClass.CYCLIC


# ---------------------------------------------------------------------- #
# directed structure: dag test, topological order, dag + back-edge split
# ---------------------------------------------------------------------- #


def topological_order(query: PatternQuery) -> Optional[List[int]]:
    """Topological order of the directed query, or None if it has a cycle."""
    in_degree = [len(query.parents(node)) for node in query.nodes()]
    order = [node for node in query.nodes() if in_degree[node] == 0]
    head = 0
    while head < len(order):
        node = order[head]
        head += 1
        for child in query.children(node):
            in_degree[child] -= 1
            if in_degree[child] == 0:
                order.append(child)
    if len(order) != query.num_nodes:
        return None
    return order


def is_dag(query: PatternQuery) -> bool:
    """True if the directed query has no directed cycle."""
    return topological_order(query) is not None


def dag_decomposition(query: PatternQuery) -> Tuple[List, List]:
    """Split the query's edges into a dag edge set and a back-edge set.

    This is the ``Qdag`` / ``Ebac`` decomposition used by FBSim (Algorithm
    3): a DFS over the directed query marks edges closing a directed cycle
    as back edges; removing them leaves a dag.  Returns
    ``(dag_edges, back_edges)`` as lists of :class:`PatternEdge`.
    """
    color = {node: 0 for node in query.nodes()}  # 0=white, 1=gray, 2=black
    back_edges = []
    dag_edges = []

    for root in query.nodes():
        if color[root] != 0:
            continue
        stack = [(root, iter(query.children(root)))]
        color[root] = 1
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                edge = query.edge(node, child)
                if color[child] == 1:
                    back_edges.append(edge)
                else:
                    dag_edges.append(edge)
                    if color[child] == 0:
                        color[child] = 1
                        stack.append((child, iter(query.children(child))))
                        advanced = True
                        break
            if not advanced:
                color[node] = 2
                stack.pop()
    return dag_edges, back_edges
