"""Neo4j-like binary-join engine.

Evaluates a pattern query as a chain of expand-and-filter steps over partial
bindings, the way Cypher's default runtime plans graph patterns: pick an
anchor node scan, then repeatedly expand along one pattern edge at a time,
materialising every intermediate binding table.  There is no worst-case
optimal join and no candidate pre-filtering, which is why the paper finds
Neo4j "not optimized for complex graph pattern queries" — intermediate
binding tables explode on cyclic and clique patterns.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.explain.plan import PlanOperator, QueryPlan
from repro.graph.digraph import DataGraph
from repro.matching.result import Budget
from repro.query.pattern import PatternEdge, PatternQuery
from repro.engines.base import Engine


class BinaryJoinEngine(Engine):
    """Edge-at-a-time expansion engine (Neo4j stand-in)."""

    name = "Neo4j"

    def _precompute(self, graph: DataGraph) -> None:
        # Plans only depend on the query structure and which of the two
        # graphs (base / closure-expanded) is in play, so repeated queries on
        # a long-lived engine skip re-planning.
        self._plan_cache: Dict[Tuple[bool, PatternQuery], Tuple[int, List[PatternEdge]]] = {}

    def _plan(self, graph: DataGraph, query: PatternQuery) -> Tuple[int, List[PatternEdge]]:
        """Pick an anchor query node and a connected edge expansion order."""
        cache_key = (graph is self.graph, query)
        cached = self._plan_cache.get(cache_key)
        if cached is not None:
            return cached
        anchor = min(
            query.nodes(), key=lambda node: len(graph.inverted_list(query.label(node)))
        )
        remaining = list(query.edges())
        bound = {anchor}
        plan: List[PatternEdge] = []
        while remaining:
            connected = [edge for edge in remaining if bound & set(edge.endpoints())]
            pool = connected or remaining
            # Prefer edges that close a cycle (both endpoints bound) — they
            # are filters, not expansions.
            closing = [edge for edge in pool if set(edge.endpoints()) <= bound]
            chosen = closing[0] if closing else pool[0]
            plan.append(chosen)
            bound.update(chosen.endpoints())
            remaining.remove(chosen)
        self._plan_cache[cache_key] = (anchor, plan)
        return anchor, plan

    def _describe_plan(self, graph: DataGraph, query: PatternQuery) -> QueryPlan:
        anchor, plan = self._plan(graph, query)
        children = [
            PlanOperator(
                op="scan",
                label=f"scan u{anchor} [{query.label(anchor)}]",
                estimate=len(graph.inverted_list(query.label(anchor))),
                details={"node": anchor},
            )
        ]
        bound = {anchor}
        vertex_order = [anchor]
        for edge in plan:
            source, target = edge.endpoints()
            if source in bound and target in bound:
                children.append(
                    PlanOperator(
                        op="filter",
                        label=f"filter {edge!r}",
                        details={"edge": repr(edge)},
                    )
                )
            elif source in bound:
                children.append(
                    PlanOperator(
                        op="expand",
                        label=f"expand {edge!r} (forward)",
                        estimate=len(graph.inverted_list(query.label(target))),
                        details={"edge": repr(edge), "direction": "forward"},
                    )
                )
                vertex_order.append(target)
            else:
                children.append(
                    PlanOperator(
                        op="expand",
                        label=f"expand {edge!r} (backward)",
                        estimate=len(graph.inverted_list(query.label(source))),
                        details={"edge": repr(edge), "direction": "backward"},
                    )
                )
                vertex_order.append(source)
            bound.update(edge.endpoints())
        root = PlanOperator(
            op="project_dedup",
            label=f"Project+Dedup [{self.name}]",
            children=children,
        )
        return QueryPlan(
            query=query.name or "query",
            engine=self.name,
            analyze=False,
            root=root,
            vertex_order=vertex_order,
        )

    def _iter_evaluate(
        self, graph: DataGraph, query: PatternQuery, budget: Budget, profile=None
    ) -> Iterator[Tuple[int, ...]]:
        """Expand-and-filter pipeline with a streaming projection tail.

        The algorithm is inherently blocking — every expansion step
        materialises its whole intermediate binding table (which is exactly
        the weakness the paper measures) — so true per-match laziness is
        not available.  The final projection/dedup pass *is* streamed, and
        because it runs inside a generator, nothing at all is computed
        until the first occurrence is requested.
        """
        clock = budget.start_clock()
        anchor, plan = self._plan(graph, query)
        # EXPLAIN ANALYZE: one actual-counter dict per pipeline operator
        # (scan + one per plan edge), aligned with _describe_plan's children.
        operators: Optional[List[Dict[str, int]]] = [] if profile is not None else None

        bound: List[int] = [anchor]
        bindings: List[Tuple[int, ...]] = [
            (node,) for node in graph.inverted_list(query.label(anchor))
        ]
        clock.check_intermediate(len(bindings))
        if operators is not None:
            operators.append({"rows": len(bindings)})

        for edge in plan:
            clock.check_time()
            source, target = edge.endpoints()
            source_bound = source in bound
            target_bound = target in bound
            next_bindings: List[Tuple[int, ...]] = []
            if source_bound and target_bound:
                source_position = bound.index(source)
                target_position = bound.index(target)
                for row in bindings:
                    clock.check_time()
                    if graph.has_edge(row[source_position], row[target_position]):
                        next_bindings.append(row)
                        clock.check_intermediate(len(next_bindings))
            elif source_bound:
                source_position = bound.index(source)
                target_label = query.label(target)
                bound.append(target)
                for row in bindings:
                    clock.check_time()
                    for child in graph.successors(row[source_position]):
                        if graph.label(child) == target_label:
                            next_bindings.append(row + (child,))
                            clock.check_intermediate(len(next_bindings))
            else:
                target_position = bound.index(target)
                source_label = query.label(source)
                bound.append(source)
                for row in bindings:
                    clock.check_time()
                    for parent in graph.predecessors(row[target_position]):
                        if graph.label(parent) == source_label:
                            next_bindings.append(row + (parent,))
                            clock.check_intermediate(len(next_bindings))
            if operators is not None:
                operators.append(
                    {"rows": len(next_bindings), "input_rows": len(bindings)}
                )
            bindings = next_bindings
            if not bindings:
                break

        try:
            seen = set()
            position_of: Dict[int, int] = {node: index for index, node in enumerate(bound)}
            for row in bindings:
                occurrence = tuple(row[position_of[node]] for node in query.nodes())
                if occurrence in seen:
                    continue
                seen.add(occurrence)
                yield occurrence
        finally:
            if operators is not None:
                # Edges skipped by an empty intermediate table produced 0 rows.
                while len(operators) < 1 + len(plan):
                    operators.append({"rows": 0})
                profile["operators"] = operators
