"""GraphflowDB-like worst-case-optimal join engine with a catalog.

GraphflowDB precomputes a *catalog* of small-subgraph cardinalities per label
combination and uses it to cost join orders that mix binary and worst-case
optimal (node-at-a-time) joins.  The stand-in reproduces the two behaviours
the paper measures:

* **catalog construction cost** grows quickly with the number of distinct
  labels and the graph size (GF runs out of memory building catalogs on em,
  ep and hp; Fig. 16a / Fig. 18a) — the catalog here enumerates 2-path
  cardinalities for every ordered label triple present in the graph and can
  be capped to emulate the failure;
* **query evaluation** is a node-at-a-time WCO join over the data graph's
  adjacency lists, ordered by catalog-estimated cardinalities — fast on
  graphs with few labels, slower when label selectivity is what matters
  (where GM's RIG filtering wins).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import MemoryBudgetExceeded
from repro.explain.plan import PlanOperator, QueryPlan
from repro.graph.digraph import DataGraph
from repro.matching.result import Budget
from repro.query.pattern import PatternQuery
from repro.engines.base import Engine


@dataclass
class Catalog:
    """Subgraph-cardinality statistics used for join ordering."""

    #: Cardinality of each (source label, target label) edge pattern.
    edge_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: Cardinality of each 2-path pattern (a -> b -> c) by label triple.
    path_counts: Dict[Tuple[str, str, str], int] = field(default_factory=dict)
    #: Wall-clock seconds spent building the catalog.
    build_seconds: float = 0.0
    #: True if construction hit the entry cap (models GF's out-of-memory).
    truncated: bool = False

    def edge_cardinality(self, source_label: str, target_label: str) -> int:
        """Estimated number of edges matching the label pair."""
        return self.edge_counts.get((source_label, target_label), 0)

    def copy(self) -> "Catalog":
        """An independent copy safe to patch without aliasing the original."""
        return Catalog(
            edge_counts=dict(self.edge_counts),
            path_counts=dict(self.path_counts),
            build_seconds=self.build_seconds,
            truncated=self.truncated,
        )


def build_catalog(graph: DataGraph, max_entries: Optional[int] = None) -> Catalog:
    """Build the cardinality catalog for ``graph``.

    ``max_entries`` caps the number of 2-path pattern entries; exceeding the
    cap marks the catalog as truncated (the stand-in for GF's catalog
    construction running out of memory on label-rich graphs).
    """
    start = time.perf_counter()
    catalog = Catalog()
    for source, target in graph.edges():
        key = (graph.label(source), graph.label(target))
        catalog.edge_counts[key] = catalog.edge_counts.get(key, 0) + 1
    entries = 0
    for middle in graph.nodes():
        middle_label = graph.label(middle)
        for parent in graph.predecessors(middle):
            parent_label = graph.label(parent)
            for child in graph.successors(middle):
                key = (parent_label, middle_label, graph.label(child))
                if key not in catalog.path_counts:
                    entries += 1
                    if max_entries is not None and entries > max_entries:
                        catalog.truncated = True
                        catalog.build_seconds = time.perf_counter() - start
                        return catalog
                catalog.path_counts[key] = catalog.path_counts.get(key, 0) + 1
    catalog.build_seconds = time.perf_counter() - start
    return catalog


def patch_catalog(catalog: Catalog, old_graph: DataGraph, delta) -> bool:
    """Patch the cardinality catalog in place for an insert-only delta.

    ``old_graph`` is the *pre-delta* graph; ``delta`` must be an *effective*
    :class:`~repro.dynamic.GraphDelta` (no duplicate insertions, no edges
    already present — what :meth:`MutableDataGraph.delta_since_base`
    returns).  Edges are replayed in order against the
    base-plus-inserted-so-far adjacency, counting each new 2-path instance
    exactly once, so the patched counts equal a from-scratch
    :func:`build_catalog` of the post-delta graph.

    Returns False — catalog untouched — for deltas with removals or
    relabels (edges migrate between label keys; rebuild instead) and for
    truncated catalogs (their counts are not exact to begin with).
    """
    if catalog.truncated or not delta.is_insert_only:
        return False

    added_labels = dict(delta.added_nodes)
    base_nodes = old_graph.num_nodes

    def label_of(node: int) -> str:
        if node < base_nodes:
            return old_graph.label(node)
        return added_labels[node]

    inserted_succ: Dict[int, List[int]] = {}
    inserted_pred: Dict[int, List[int]] = {}
    edge_counts = catalog.edge_counts
    path_counts = catalog.path_counts

    def bump_path(parent: int, middle: int, child: int) -> None:
        key = (label_of(parent), label_of(middle), label_of(child))
        path_counts[key] = path_counts.get(key, 0) + 1

    for source, target in delta.added_edges:
        key = (label_of(source), label_of(target))
        edge_counts[key] = edge_counts.get(key, 0) + 1

        # Predecessors of ``source`` after this insertion: the base graph's,
        # the edges inserted so far, and ``source`` itself for a self-loop.
        preds: List[int] = []
        if source < base_nodes:
            preds.extend(old_graph.predecessors(source))
        preds.extend(inserted_pred.get(source, ()))
        if source == target:
            preds.append(source)
        # New 2-paths with (source, target) as the second edge.
        for parent in preds:
            bump_path(parent, source, target)

        # New 2-paths with (source, target) as the first edge.  The
        # second edge must differ from the new edge itself (a path using
        # the new edge twice — only possible for a self-loop — was already
        # counted above through the ``source == target`` predecessor
        # entry), which is exactly the successor set *before* this
        # insertion is recorded.
        succs: List[int] = []
        if target < base_nodes:
            succs.extend(old_graph.successors(target))
        succs.extend(inserted_succ.get(target, ()))
        for child in succs:
            bump_path(source, target, child)

        inserted_succ.setdefault(source, []).append(target)
        inserted_pred.setdefault(target, []).append(source)
    return True


class WCOJEngine(Engine):
    """Catalog-driven worst-case-optimal join engine (GraphflowDB stand-in)."""

    name = "GF"

    def __init__(
        self,
        graph: DataGraph,
        budget: Optional[Budget] = None,
        descendant_mode: str = "closure",
        catalog_max_entries: Optional[int] = None,
        catalog: Optional[Catalog] = None,
        **kwargs,
    ) -> None:
        self._catalog_max_entries = catalog_max_entries
        self._prebuilt_catalog = catalog
        super().__init__(graph, budget=budget, descendant_mode=descendant_mode, **kwargs)

    def _precompute(self, graph: DataGraph) -> None:
        if self._prebuilt_catalog is not None:
            # Injected by a caller that built (and cached) the catalog once —
            # construction cost was paid there, not by this engine instance.
            self.catalog = self._prebuilt_catalog
        else:
            self.catalog = build_catalog(graph, max_entries=self._catalog_max_entries)
        if self.catalog.truncated:
            raise MemoryBudgetExceeded(self._catalog_max_entries or 0)

    # ------------------------------------------------------------------ #
    # ordering
    # ------------------------------------------------------------------ #

    def _order(self, graph: DataGraph, query: PatternQuery) -> List[int]:
        """Connected node order by catalog-estimated candidate cardinality."""
        cardinality = {
            node: len(graph.inverted_list(query.label(node))) for node in query.nodes()
        }

        def edge_estimate(node: int) -> float:
            estimates = []
            for child in query.children(node):
                estimates.append(
                    self.catalog.edge_cardinality(query.label(node), query.label(child))
                )
            for parent in query.parents(node):
                estimates.append(
                    self.catalog.edge_cardinality(query.label(parent), query.label(node))
                )
            return min(estimates) if estimates else cardinality[node]

        remaining = set(query.nodes())
        start = min(remaining, key=lambda node: (edge_estimate(node), cardinality[node]))
        order = [start]
        remaining.discard(start)
        while remaining:
            frontier = [
                node for node in remaining if any(n in order for n in query.neighbors(node))
            ] or list(remaining)
            chosen = min(frontier, key=lambda node: (edge_estimate(node), cardinality[node]))
            order.append(chosen)
            remaining.discard(chosen)
        return order

    # ------------------------------------------------------------------ #
    # EXPLAIN
    # ------------------------------------------------------------------ #

    def _step_estimate(self, graph: DataGraph, query: PatternQuery, node: int) -> int:
        """Catalog-based candidate estimate for one extension step."""
        cardinality = len(graph.inverted_list(query.label(node)))
        estimates = [
            self.catalog.edge_cardinality(query.label(node), query.label(child))
            for child in query.children(node)
        ] + [
            self.catalog.edge_cardinality(query.label(parent), query.label(node))
            for parent in query.parents(node)
        ]
        return min(estimates) if estimates else cardinality

    def _describe_plan(self, graph: DataGraph, query: PatternQuery) -> QueryPlan:
        order = self._order(graph, query)
        children = [
            PlanOperator(
                op="wco_extend",
                label=f"wco extend u{node} [{query.label(node)}]",
                estimate=self._step_estimate(graph, query, node),
                details={"position": position, "node": node},
            )
            for position, node in enumerate(order)
        ]
        root = PlanOperator(
            op="wcoj",
            label=f"WCOJoin [{self.name}]",
            children=children,
            details={"catalog_entries": len(self.catalog.path_counts)},
        )
        return QueryPlan(
            query=query.name or "query",
            engine=self.name,
            analyze=False,
            root=root,
            vertex_order=order,
            artifacts={
                "catalog": True,
                "catalog_build_seconds": self.catalog.build_seconds,
                "catalog_truncated": self.catalog.truncated,
            },
        )

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def _iter_evaluate(
        self, graph: DataGraph, query: PatternQuery, budget: Budget, profile=None
    ) -> Iterator[Tuple[int, ...]]:
        """Node-at-a-time WCO join as a lazy generator.

        Each full assignment is yielded the moment the innermost extension
        completes, so the first occurrence costs one root-to-leaf descent —
        not the whole search.  Closing the generator abandons the
        backtracking stack wherever it stands.
        """
        clock = budget.start_clock()
        order = self._order(graph, query)
        n = query.num_nodes
        assignment: List[Optional[int]] = [None] * n
        label_sets = {node: graph.inverted_set(query.label(node)) for node in query.nodes()}
        # EXPLAIN ANALYZE: per-position [candidates, intersections, rows].
        slots = [[0, 0, 0] for _ in range(n)] if profile is not None else None

        def candidates(position: int) -> List[int]:
            node = order[position]
            operands: List[set] = []
            for earlier in order[:position]:
                value = assignment[earlier]
                if query.has_edge(earlier, node):
                    operands.append(graph.successor_set(value) & label_sets[node])
                if query.has_edge(node, earlier):
                    operands.append(graph.predecessor_set(value) & label_sets[node])
            if not operands:
                local = list(label_sets[node])
                if slots is not None:
                    slots[position][0] += len(local)
                return local
            operands.sort(key=len)
            result = operands[0]
            for operand in operands[1:]:
                result = result & operand
                if not result:
                    break
            if slots is not None:
                slots[position][0] += len(result)
                slots[position][1] += len(operands)
            return list(result)

        def extend(position: int) -> Iterator[Tuple[int, ...]]:
            clock.check_time()
            if position == n:
                yield tuple(assignment)
                return
            node = order[position]
            for value in candidates(position):
                assignment[node] = value
                if slots is not None:
                    slots[position][2] += 1
                yield from extend(position + 1)
                assignment[node] = None

        try:
            yield from extend(0)
        finally:
            if profile is not None:
                profile["operators"] = [
                    {"rows": rows, "candidates": produced, "intersections": intersections}
                    for produced, intersections, rows in slots
                ]
