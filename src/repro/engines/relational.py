"""EmptyHeaded-like relational engine.

EmptyHeaded compiles graph patterns to relational query plans over edge
relations, with an expensive precomputation step (loading and indexing the
relations in its trie layout).  The stand-in mirrors that cost profile:

* precomputation materialises the full edge relation partitioned by the
  (source label, target label) pair — the analogue of EH's per-relation trie
  build, charged to :attr:`precompute_seconds`;
* query evaluation hash-joins the per-edge relations along a connected
  order, materialising every intermediate relation (binary joins, not WCO —
  the configuration the paper measured reports per-query optimisation and
  compilation overhead dominating small queries).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.explain.plan import PlanOperator, QueryPlan
from repro.graph.digraph import DataGraph
from repro.matching.result import Budget
from repro.query.pattern import PatternEdge, PatternQuery
from repro.engines.base import Engine


#: Edge relations partitioned by (source label, target label).
EdgePartitions = Dict[Tuple[str, str], List[Tuple[int, int]]]


def build_edge_partitions(graph: DataGraph) -> EdgePartitions:
    """Partition the edge set by (source label, target label).

    This is the loading / trie-building step of EmptyHeaded; exposed as a
    function so a shared cache can build it once and hand it to many engine
    instances.
    """
    partitions: EdgePartitions = {}
    for source, target in graph.edges():
        key = (graph.label(source), graph.label(target))
        partitions.setdefault(key, []).append((source, target))
    return partitions


class RelationalEngine(Engine):
    """Materialised-edge-relation hash-join engine (EmptyHeaded stand-in)."""

    name = "EH"

    def __init__(
        self,
        graph: DataGraph,
        budget: Optional[Budget] = None,
        descendant_mode: str = "closure",
        partitions: Optional[EdgePartitions] = None,
        **kwargs,
    ) -> None:
        self._prebuilt_partitions = partitions
        super().__init__(graph, budget=budget, descendant_mode=descendant_mode, **kwargs)

    def _precompute(self, graph: DataGraph) -> None:
        if self._prebuilt_partitions is not None:
            self._partitions = self._prebuilt_partitions
        else:
            self._partitions = build_edge_partitions(graph)

    def _edge_relation(self, graph: DataGraph, query: PatternQuery, source: int, target: int):
        key = (query.label(source), query.label(target))
        if graph is self.graph:
            return self._partitions.get(key, [])
        # Operating on the transitive-closure-expanded graph: partition lazily.
        return [
            (u, v)
            for u, v in graph.edges()
            if graph.label(u) == key[0] and graph.label(v) == key[1]
        ]

    def _join_plan(
        self, graph: DataGraph, query: PatternQuery
    ) -> Tuple[List[PatternEdge], Dict[Tuple[int, int], int]]:
        """Connected join order, smallest relation first, with relation sizes.

        Shared by the evaluator and EXPLAIN so the introspected plan is by
        construction the executed one.
        """
        edges = list(query.edges())
        sizes = {
            edge.endpoints(): len(self._edge_relation(graph, query, *edge.endpoints()))
            for edge in edges
        }
        remaining = sorted(edges, key=lambda edge: sizes[edge.endpoints()])
        plan = [remaining.pop(0)]
        covered = set(plan[0].endpoints())
        while remaining:
            connected = [edge for edge in remaining if covered & set(edge.endpoints())]
            pool = connected or remaining
            chosen = min(pool, key=lambda edge: sizes[edge.endpoints()])
            plan.append(chosen)
            covered.update(chosen.endpoints())
            remaining.remove(chosen)
        return plan, sizes

    def _describe_plan(self, graph: DataGraph, query: PatternQuery) -> QueryPlan:
        if not query.edges():
            root = PlanOperator(
                op="project_dedup",
                label=f"Project+Dedup [{self.name}]",
                children=[
                    PlanOperator(
                        op="scan",
                        label=f"scan u0 [{query.label(0)}]",
                        estimate=len(graph.inverted_list(query.label(0))),
                        details={"node": 0},
                    )
                ],
            )
            return QueryPlan(
                query=query.name or "query",
                engine=self.name,
                analyze=False,
                root=root,
                vertex_order=list(query.nodes()),
                artifacts={"partitions": graph is self.graph},
            )
        plan, sizes = self._join_plan(graph, query)
        first = plan[0]
        children = [
            PlanOperator(
                op="relation_scan",
                label=f"relation scan {first!r}",
                estimate=sizes[first.endpoints()],
                details={"edge": repr(first)},
            )
        ]
        bound = list(first.endpoints())
        for edge in plan[1:]:
            source, target = edge.endpoints()
            if source not in bound:
                bound.append(source)
            if target not in bound:
                bound.append(target)
            children.append(
                PlanOperator(
                    op="hash_join",
                    label=f"hash join {edge!r}",
                    estimate=sizes[edge.endpoints()],
                    details={"edge": repr(edge)},
                )
            )
        root = PlanOperator(
            op="project_dedup",
            label=f"Project+Dedup [{self.name}]",
            children=children,
        )
        return QueryPlan(
            query=query.name or "query",
            engine=self.name,
            analyze=False,
            root=root,
            vertex_order=bound,
            artifacts={"partitions": graph is self.graph},
        )

    def _iter_evaluate(
        self, graph: DataGraph, query: PatternQuery, budget: Budget, profile=None
    ) -> Iterator[Tuple[int, ...]]:
        """Hash-join pipeline with a streaming projection tail.

        Like the binary-join engine, the hash joins materialise every
        intermediate relation (EH's measured cost profile), so only the
        final projection/dedup pass streams — but the whole pipeline is
        deferred until the first occurrence is requested, and abandoning
        the iterator skips the un-projected remainder.
        """
        clock = budget.start_clock()
        edges = list(query.edges())
        if not edges:
            nodes = graph.inverted_list(query.label(0))
            if profile is not None:
                profile["operators"] = [{"rows": len(nodes)}]
            yield from ((node,) for node in nodes)
            return

        plan, _ = self._join_plan(graph, query)
        operators: Optional[List[Dict[str, int]]] = [] if profile is not None else None

        first = plan[0]
        bound: List[int] = list(first.endpoints())
        rows: List[Tuple[int, ...]] = [
            tuple(pair) for pair in self._edge_relation(graph, query, *first.endpoints())
        ]
        clock.check_intermediate(len(rows))
        if operators is not None:
            operators.append({"rows": len(rows)})

        for edge in plan[1:]:
            clock.check_time()
            relation = self._edge_relation(graph, query, *edge.endpoints())
            source, target = edge.endpoints()
            source_bound = source in bound
            target_bound = target in bound
            next_rows: List[Tuple[int, ...]] = []
            if source_bound and target_bound:
                pairs = set(relation)
                source_position = bound.index(source)
                target_position = bound.index(target)
                for row in rows:
                    clock.check_time()
                    if (row[source_position], row[target_position]) in pairs:
                        next_rows.append(row)
                        clock.check_intermediate(len(next_rows))
            elif source_bound:
                source_position = bound.index(source)
                by_tail: Dict[int, List[int]] = {}
                for tail, head in relation:
                    by_tail.setdefault(tail, []).append(head)
                bound = bound + [target]
                for row in rows:
                    clock.check_time()
                    for head in by_tail.get(row[source_position], ()):
                        next_rows.append(row + (head,))
                        clock.check_intermediate(len(next_rows))
            elif target_bound:
                target_position = bound.index(target)
                by_head: Dict[int, List[int]] = {}
                for tail, head in relation:
                    by_head.setdefault(head, []).append(tail)
                bound = bound + [source]
                for row in rows:
                    clock.check_time()
                    for tail in by_head.get(row[target_position], ()):
                        next_rows.append(row + (tail,))
                        clock.check_intermediate(len(next_rows))
            else:
                bound = bound + [source, target]
                for row in rows:
                    clock.check_time()
                    for tail, head in relation:
                        next_rows.append(row + (tail, head))
                        clock.check_intermediate(len(next_rows))
            if operators is not None:
                operators.append(
                    {
                        "rows": len(next_rows),
                        "input_rows": len(rows),
                        "relation_rows": len(relation),
                    }
                )
            rows = next_rows
            if not rows:
                break

        try:
            seen = set()
            position_of = {node: index for index, node in enumerate(bound)}
            for row in rows:
                occurrence = tuple(row[position_of[node]] for node in query.nodes())
                if occurrence in seen:
                    continue
                seen.add(occurrence)
                yield occurrence
        finally:
            if operators is not None:
                # Joins skipped by an empty intermediate relation made 0 rows.
                while len(operators) < len(plan):
                    operators.append({"rows": 0})
                profile["operators"] = operators
