"""RapidMatch-like tree-decomposition engine.

RapidMatch filters candidates along a spanning tree of the query, builds a
relation per query edge restricted to the filtered candidates, and
enumerates with worst-case-optimal joins whose order is derived from the
query's dense substructure (nucleus decomposition).  The stand-in follows
the same three steps with a degeneracy-style density order:

1. candidate filtering: label filtering plus a bottom-up/top-down refinement
   along a spanning tree of the query;
2. edge-relation construction restricted to surviving candidates;
3. WCO-style backtracking enumeration, visiting the densest query nodes
   first (ties broken by candidate-set size).

It supports child-only queries natively; descendant edges go through the
transitive-closure expansion of the base class.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.graph.digraph import DataGraph
from repro.matching.result import Budget
from repro.query.pattern import PatternEdge, PatternQuery
from repro.engines.base import Engine


class TreeDecompEngine(Engine):
    """Tree-filtered WCO enumeration engine (RapidMatch stand-in)."""

    name = "RM"

    # ------------------------------------------------------------------ #
    # candidate filtering along a spanning tree
    # ------------------------------------------------------------------ #

    def _precompute(self, graph: DataGraph) -> None:
        # Spanning trees depend only on the query structure; cache them so a
        # long-lived engine skips recomputation on repeated queries.
        self._tree_cache: Dict[PatternQuery, List[PatternEdge]] = {}

    def _spanning_tree(self, query: PatternQuery) -> List[PatternEdge]:
        cached = self._tree_cache.get(query)
        if cached is not None:
            return cached
        in_tree = {0}
        tree: List[PatternEdge] = []
        remaining = list(query.edges())
        progress = True
        while progress and len(in_tree) < query.num_nodes:
            progress = False
            for edge in list(remaining):
                if (edge.source in in_tree) ^ (edge.target in in_tree):
                    tree.append(edge)
                    in_tree.update(edge.endpoints())
                    remaining.remove(edge)
                    progress = True
        self._tree_cache[query] = tree
        return tree

    def _filter_candidates(
        self, graph: DataGraph, query: PatternQuery, clock
    ) -> Dict[int, Set[int]]:
        candidates = {
            node: set(graph.inverted_set(query.label(node))) for node in query.nodes()
        }
        tree = self._spanning_tree(query)
        changed = True
        while changed:
            changed = False
            clock.check_time()
            for edge in tree:
                tails = candidates[edge.source]
                heads = candidates[edge.target]
                allowed_tails = set()
                for head in heads:
                    allowed_tails.update(graph.predecessors(head))
                new_tails = tails & allowed_tails
                if len(new_tails) != len(tails):
                    candidates[edge.source] = new_tails
                    changed = True
                allowed_heads = set()
                for tail in candidates[edge.source]:
                    allowed_heads.update(graph.successors(tail))
                new_heads = heads & allowed_heads
                if len(new_heads) != len(heads):
                    candidates[edge.target] = new_heads
                    changed = True
        return candidates

    # ------------------------------------------------------------------ #
    # density-driven ordering (nucleus-decomposition surrogate)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _order(query: PatternQuery, candidates: Dict[int, Set[int]]) -> List[int]:
        remaining = set(query.nodes())
        start = max(
            remaining, key=lambda node: (query.degree(node), -len(candidates[node]), -node)
        )
        order = [start]
        remaining.discard(start)
        while remaining:
            frontier = [
                node for node in remaining if any(n in order for n in query.neighbors(node))
            ] or list(remaining)
            chosen = max(
                frontier,
                key=lambda node: (
                    sum(1 for n in query.neighbors(node) if n in order),
                    query.degree(node),
                    -len(candidates[node]),
                    -node,
                ),
            )
            order.append(chosen)
            remaining.discard(chosen)
        return order

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def _iter_evaluate(
        self, graph: DataGraph, query: PatternQuery, budget: Budget
    ) -> Iterator[Tuple[int, ...]]:
        """Tree-filter, then enumerate lazily.

        The spanning-tree candidate refinement is a genuine barrier (it
        must converge before enumeration starts), but every occurrence
        after it streams out of the WCO backtracking generator as soon as
        its innermost extension completes.
        """
        clock = budget.start_clock()
        candidates = self._filter_candidates(graph, query, clock)
        if any(not candidate_set for candidate_set in candidates.values()):
            return
        order = self._order(query, candidates)
        n = query.num_nodes
        assignment: List[Optional[int]] = [None] * n

        def local_candidates(position: int) -> List[int]:
            node = order[position]
            operands: List[Set[int]] = []
            for earlier in order[:position]:
                value = assignment[earlier]
                if query.has_edge(earlier, node):
                    operands.append(graph.successor_set(value) & candidates[node])
                if query.has_edge(node, earlier):
                    operands.append(graph.predecessor_set(value) & candidates[node])
            if not operands:
                return list(candidates[node])
            operands.sort(key=len)
            result = operands[0]
            for operand in operands[1:]:
                result = result & operand
                if not result:
                    break
            return list(result)

        def extend(position: int) -> Iterator[Tuple[int, ...]]:
            clock.check_time()
            if position == n:
                yield tuple(assignment)
                return
            node = order[position]
            for value in local_candidates(position):
                assignment[node] = value
                yield from extend(position + 1)
                assignment[node] = None

        yield from extend(0)
