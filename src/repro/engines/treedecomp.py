"""RapidMatch-like tree-decomposition engine.

RapidMatch filters candidates along a spanning tree of the query, builds a
relation per query edge restricted to the filtered candidates, and
enumerates with worst-case-optimal joins whose order is derived from the
query's dense substructure (nucleus decomposition).  The stand-in follows
the same three steps with a degeneracy-style density order:

1. candidate filtering: label filtering plus a bottom-up/top-down refinement
   along a spanning tree of the query;
2. edge-relation construction restricted to surviving candidates;
3. WCO-style backtracking enumeration, visiting the densest query nodes
   first (ties broken by candidate-set size).

It supports child-only queries natively; descendant edges go through the
transitive-closure expansion of the base class.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.explain.plan import PlanOperator, QueryPlan
from repro.graph.digraph import DataGraph
from repro.matching.result import Budget
from repro.query.pattern import PatternEdge, PatternQuery
from repro.engines.base import Engine


class TreeDecompEngine(Engine):
    """Tree-filtered WCO enumeration engine (RapidMatch stand-in)."""

    name = "RM"

    # ------------------------------------------------------------------ #
    # candidate filtering along a spanning tree
    # ------------------------------------------------------------------ #

    def _precompute(self, graph: DataGraph) -> None:
        # Spanning trees depend only on the query structure; cache them so a
        # long-lived engine skips recomputation on repeated queries.
        self._tree_cache: Dict[PatternQuery, List[PatternEdge]] = {}

    def _spanning_tree(self, query: PatternQuery) -> List[PatternEdge]:
        cached = self._tree_cache.get(query)
        if cached is not None:
            return cached
        in_tree = {0}
        tree: List[PatternEdge] = []
        remaining = list(query.edges())
        progress = True
        while progress and len(in_tree) < query.num_nodes:
            progress = False
            for edge in list(remaining):
                if (edge.source in in_tree) ^ (edge.target in in_tree):
                    tree.append(edge)
                    in_tree.update(edge.endpoints())
                    remaining.remove(edge)
                    progress = True
        self._tree_cache[query] = tree
        return tree

    def _filter_candidates(
        self, graph: DataGraph, query: PatternQuery, clock
    ) -> Dict[int, Set[int]]:
        candidates = {
            node: set(graph.inverted_set(query.label(node))) for node in query.nodes()
        }
        tree = self._spanning_tree(query)
        changed = True
        while changed:
            changed = False
            clock.check_time()
            for edge in tree:
                tails = candidates[edge.source]
                heads = candidates[edge.target]
                allowed_tails = set()
                for head in heads:
                    allowed_tails.update(graph.predecessors(head))
                new_tails = tails & allowed_tails
                if len(new_tails) != len(tails):
                    candidates[edge.source] = new_tails
                    changed = True
                allowed_heads = set()
                for tail in candidates[edge.source]:
                    allowed_heads.update(graph.successors(tail))
                new_heads = heads & allowed_heads
                if len(new_heads) != len(heads):
                    candidates[edge.target] = new_heads
                    changed = True
        return candidates

    # ------------------------------------------------------------------ #
    # density-driven ordering (nucleus-decomposition surrogate)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _order(query: PatternQuery, candidates: Dict[int, Set[int]]) -> List[int]:
        remaining = set(query.nodes())
        start = max(
            remaining, key=lambda node: (query.degree(node), -len(candidates[node]), -node)
        )
        order = [start]
        remaining.discard(start)
        while remaining:
            frontier = [
                node for node in remaining if any(n in order for n in query.neighbors(node))
            ] or list(remaining)
            chosen = max(
                frontier,
                key=lambda node: (
                    sum(1 for n in query.neighbors(node) if n in order),
                    query.degree(node),
                    -len(candidates[node]),
                    -node,
                ),
            )
            order.append(chosen)
            remaining.discard(chosen)
        return order

    # ------------------------------------------------------------------ #
    # EXPLAIN
    # ------------------------------------------------------------------ #

    def _describe_plan(self, graph: DataGraph, query: PatternQuery) -> QueryPlan:
        # The plan phase runs the tree filter (RM's matching phase) so the
        # per-step estimates are the filtered candidate-set sizes the real
        # execution would enumerate over — enumeration itself never runs.
        clock = self.budget.start_clock()
        candidates = self._filter_candidates(graph, query, clock)
        order = self._order(query, candidates)
        tree = self._spanning_tree(query)
        children = [
            PlanOperator(
                op="tree_filter",
                label=f"tree filter ({len(tree)} tree edges)",
                estimate=sum(
                    len(graph.inverted_list(query.label(node))) for node in query.nodes()
                ),
                details={"tree": [repr(edge) for edge in tree]},
            )
        ]
        children.extend(
            PlanOperator(
                op="wco_extend",
                label=f"wco extend u{node} [{query.label(node)}]",
                estimate=len(candidates[node]),
                details={"position": position, "node": node},
            )
            for position, node in enumerate(order)
        )
        root = PlanOperator(
            op="tree_wcoj",
            label=f"TreeFilter+WCOJoin [{self.name}]",
            children=children,
        )
        return QueryPlan(
            query=query.name or "query",
            engine=self.name,
            analyze=False,
            root=root,
            vertex_order=order,
        )

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def _iter_evaluate(
        self, graph: DataGraph, query: PatternQuery, budget: Budget, profile=None
    ) -> Iterator[Tuple[int, ...]]:
        """Tree-filter, then enumerate lazily.

        The spanning-tree candidate refinement is a genuine barrier (it
        must converge before enumeration starts), but every occurrence
        after it streams out of the WCO backtracking generator as soon as
        its innermost extension completes.
        """
        clock = budget.start_clock()
        candidates = self._filter_candidates(graph, query, clock)
        n = query.num_nodes
        filtered_total = sum(len(values) for values in candidates.values())
        # EXPLAIN ANALYZE: per-position [candidates, intersections, rows].
        slots = [[0, 0, 0] for _ in range(n)] if profile is not None else None

        def flush() -> None:
            if profile is not None:
                profile["operators"] = [{"rows": filtered_total}] + [
                    {"rows": rows, "candidates": produced, "intersections": intersections}
                    for produced, intersections, rows in slots
                ]

        if any(not candidate_set for candidate_set in candidates.values()):
            flush()
            return
        order = self._order(query, candidates)
        assignment: List[Optional[int]] = [None] * n

        def local_candidates(position: int) -> List[int]:
            node = order[position]
            operands: List[Set[int]] = []
            for earlier in order[:position]:
                value = assignment[earlier]
                if query.has_edge(earlier, node):
                    operands.append(graph.successor_set(value) & candidates[node])
                if query.has_edge(node, earlier):
                    operands.append(graph.predecessor_set(value) & candidates[node])
            if not operands:
                local = list(candidates[node])
                if slots is not None:
                    slots[position][0] += len(local)
                return local
            operands.sort(key=len)
            result = operands[0]
            for operand in operands[1:]:
                result = result & operand
                if not result:
                    break
            if slots is not None:
                slots[position][0] += len(result)
                slots[position][1] += len(operands)
            return list(result)

        def extend(position: int) -> Iterator[Tuple[int, ...]]:
            clock.check_time()
            if position == n:
                yield tuple(assignment)
                return
            node = order[position]
            for value in local_candidates(position):
                assignment[node] = value
                if slots is not None:
                    slots[position][2] += 1
                yield from extend(position + 1)
                assignment[node] = None

        try:
            yield from extend(0)
        finally:
            flush()
