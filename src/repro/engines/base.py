"""Common scaffolding for the comparator query engines."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.exceptions import (
    EngineError,
    MemoryBudgetExceeded,
    QueryCancelled,
    StaleIndexError,
    TimeoutExceeded,
)
from repro.graph.digraph import DataGraph
from repro.matching.result import Budget, MatchReport, MatchStatus
from repro.query.pattern import EdgeType, PatternEdge, PatternQuery
from repro.reachability.transitive_closure import TransitiveClosureIndex


@dataclass
class EngineResult:
    """Engine-level outcome: a :class:`MatchReport` plus precomputation cost."""

    report: MatchReport
    precompute_seconds: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Query time excluding precomputation (the paper reports both)."""
        return self.report.total_seconds


def expand_descendant_edges(
    graph: DataGraph, closure: Optional[TransitiveClosureIndex] = None
) -> Tuple[DataGraph, float]:
    """Materialise the transitive closure as extra edges of the data graph.

    Engines that only support edge-to-edge semantics evaluate descendant
    edges by first replacing the data graph with its transitive closure —
    the indirect strategy the paper applies to GraphflowDB for D-queries
    (§7.5).  Returns the expanded graph and the expansion time in seconds.
    """
    start = time.perf_counter()
    closure = closure or TransitiveClosureIndex(graph)
    edges = set(graph.edges())
    edges.update(closure.closure_edges())
    expanded = DataGraph(
        graph.labels,
        sorted(edges),
        name=f"{graph.name}-tc",
        version=getattr(graph, "version", 0),
    )
    return expanded, time.perf_counter() - start


#: A transitive-closure index, or a zero-argument callable producing one.
#: Callables let a shared cache (e.g. :class:`repro.session.QuerySession`)
#: supply the closure lazily: it is only built if a descendant query arrives.
ClosureSource = Union[TransitiveClosureIndex, Callable[[], TransitiveClosureIndex]]

#: An expanded data graph, or a zero-argument callable producing one.
ExpandedGraphSource = Union[DataGraph, Callable[[], DataGraph]]


class Engine(ABC):
    """Base class for the comparator engines.

    Engines natively support child-only queries.  If a query contains
    descendant edges the engine either raises :class:`EngineError`
    (``descendant_mode="reject"``), or rewrites the query against the
    transitive-closure-expanded graph (``descendant_mode="closure"``),
    charging the expansion to precomputation time.

    ``closure`` and ``expanded_graph`` allow a caller that already owns those
    artifacts (a :class:`~repro.session.QuerySession`) to inject them so the
    engine does not recompute them; a pre-built ``expanded_graph`` charges
    zero expansion time to precomputation.
    """

    name = "engine"

    def __init__(
        self,
        graph: DataGraph,
        budget: Optional[Budget] = None,
        descendant_mode: str = "closure",
        closure: Optional[ClosureSource] = None,
        expanded_graph: Optional[ExpandedGraphSource] = None,
    ) -> None:
        self.graph = graph
        self.budget = budget or Budget()
        self.descendant_mode = descendant_mode
        self._closure_source = closure
        self._expanded_source = expanded_graph if callable(expanded_graph) else None
        self._expanded_graph: Optional[DataGraph] = (
            None if callable(expanded_graph) else expanded_graph
        )
        if self._expanded_graph is not None:
            self._check_expanded(self._expanded_graph)
        self._expansion_seconds = 0.0
        self._precompute_seconds = 0.0
        start = time.perf_counter()
        self._precompute(graph)
        self._precompute_seconds += time.perf_counter() - start

    # ------------------------------------------------------------------ #
    # hooks
    # ------------------------------------------------------------------ #

    def _precompute(self, graph: DataGraph) -> None:
        """Per-engine precomputation (catalogs, indexes).  Default: none."""

    @abstractmethod
    def _evaluate(
        self, graph: DataGraph, query: PatternQuery, budget: Budget
    ) -> List[Tuple[int, ...]]:
        """Enumerate occurrences of a child-only query on ``graph``."""

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    @property
    def precompute_seconds(self) -> float:
        """Time spent on engine precomputation (catalog / index building)."""
        return self._precompute_seconds

    def _check_expanded(self, expanded: DataGraph) -> DataGraph:
        """Reject an injected expanded graph built for a different graph state.

        A shared cache may outlive a graph update; comparing node count and
        the monotone data version catches a stale injection before it
        silently produces answers for the wrong graph.  Raises
        :class:`~repro.exceptions.StaleIndexError` naming both versions.
        """
        if expanded.num_nodes != self.graph.num_nodes or getattr(
            expanded, "version", 0
        ) != getattr(self.graph, "version", 0):
            raise StaleIndexError(
                engine=self.name,
                artifact="expanded graph",
                expected_version=getattr(self.graph, "version", 0),
                found_version=getattr(expanded, "version", 0),
                detail=(
                    f"expanded graph has {expanded.num_nodes} nodes, "
                    f"data graph has {self.graph.num_nodes}"
                ),
            )
        return expanded

    def _graph_for(self, query: PatternQuery) -> Tuple[DataGraph, PatternQuery]:
        if not query.descendant_edges():
            return self.graph, query
        if self.descendant_mode == "reject":
            raise EngineError(
                f"{self.name} only supports child-only (edge-to-edge) queries"
            )
        if self._expanded_graph is None:
            if self._expanded_source is not None:
                self._expanded_graph = self._check_expanded(self._expanded_source())
            else:
                source = self._closure_source
                closure = source() if callable(source) else source
                self._expanded_graph, self._expansion_seconds = expand_descendant_edges(
                    self.graph, closure=closure
                )
                self._precompute_seconds += self._expansion_seconds
        rewritten_edges = [
            PatternEdge(edge.source, edge.target, EdgeType.CHILD) for edge in query.edges()
        ]
        return self._expanded_graph, query.with_edges(rewritten_edges, name=query.name)

    def match(self, query: PatternQuery, budget: Optional[Budget] = None) -> EngineResult:
        """Evaluate ``query`` and wrap the outcome in an :class:`EngineResult`."""
        budget = budget or self.budget
        start = time.perf_counter()
        try:
            graph, rewritten = self._graph_for(query)
            occurrences = self._evaluate(graph, rewritten, budget)
            hit_limit = (
                budget.max_matches is not None and len(occurrences) >= budget.max_matches
            )
            report = MatchReport(
                query_name=query.name,
                algorithm=self.name,
                status=MatchStatus.MATCH_LIMIT if hit_limit else MatchStatus.OK,
                occurrences=occurrences,
                num_matches=len(occurrences),
                matching_seconds=0.0,
                enumeration_seconds=time.perf_counter() - start,
            )
        except TimeoutExceeded:
            report = MatchReport(
                query_name=query.name,
                algorithm=self.name,
                status=MatchStatus.TIMEOUT,
                matching_seconds=time.perf_counter() - start,
            )
        except QueryCancelled:
            report = MatchReport(
                query_name=query.name,
                algorithm=self.name,
                status=MatchStatus.CANCELLED,
                matching_seconds=time.perf_counter() - start,
            )
        except MemoryBudgetExceeded:
            report = MatchReport(
                query_name=query.name,
                algorithm=self.name,
                status=MatchStatus.OUT_OF_MEMORY,
                matching_seconds=time.perf_counter() - start,
            )
        return EngineResult(report=report, precompute_seconds=self._precompute_seconds)
