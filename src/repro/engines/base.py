"""Common scaffolding for the comparator query engines.

The execution primitive is :meth:`Engine.iter_matches`: a lazy generator
that yields occurrences as the engine's search finds them.  ``match()`` is
a thin driver that drains the iterator into a
:class:`~repro.matching.result.MatchReport` (via
:class:`~repro.matching.stream.MatchStream`), so eager and incremental
consumption always agree on the occurrence set, the status and the budget
semantics.  Early termination — the match cap, a deadline, cooperative
cancellation, or the consumer simply abandoning the generator
(``generator.close()``) — stops the enumeration mid-search.
"""

from __future__ import annotations

import time
import warnings
from abc import ABC
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.exceptions import EngineError, StaleIndexError
from repro.explain.plan import PlanOperator, QueryPlan
from repro.graph.digraph import DataGraph
from repro.matching.result import Budget, MatchReport
from repro.matching.stream import MatchStream
from repro.query.pattern import EdgeType, PatternEdge, PatternQuery
from repro.reachability.transitive_closure import TransitiveClosureIndex


@dataclass
class EngineResult:
    """Engine-level outcome: a :class:`MatchReport` plus precomputation cost."""

    report: MatchReport
    precompute_seconds: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """Query time excluding precomputation (the paper reports both)."""
        return self.report.total_seconds


def expand_descendant_edges(
    graph: DataGraph, closure: Optional[TransitiveClosureIndex] = None
) -> Tuple[DataGraph, float]:
    """Materialise the transitive closure as extra edges of the data graph.

    Engines that only support edge-to-edge semantics evaluate descendant
    edges by first replacing the data graph with its transitive closure —
    the indirect strategy the paper applies to GraphflowDB for D-queries
    (§7.5).  Returns the expanded graph and the expansion time in seconds.
    """
    start = time.perf_counter()
    closure = closure or TransitiveClosureIndex(graph)
    edges = set(graph.edges())
    edges.update(closure.closure_edges())
    expanded = DataGraph(
        graph.labels,
        sorted(edges),
        name=f"{graph.name}-tc",
        version=getattr(graph, "version", 0),
    )
    return expanded, time.perf_counter() - start


#: A transitive-closure index, or a zero-argument callable producing one.
#: Callables let a shared cache (e.g. :class:`repro.session.QuerySession`)
#: supply the closure lazily: it is only built if a descendant query arrives.
ClosureSource = Union[TransitiveClosureIndex, Callable[[], TransitiveClosureIndex]]

#: An expanded data graph, or a zero-argument callable producing one.
ExpandedGraphSource = Union[DataGraph, Callable[[], DataGraph]]


class Engine(ABC):
    """Base class for the comparator engines.

    Engines natively support child-only queries.  If a query contains
    descendant edges the engine either raises :class:`EngineError`
    (``descendant_mode="reject"``), or rewrites the query against the
    transitive-closure-expanded graph (``descendant_mode="closure"``),
    charging the expansion to precomputation time.

    ``closure`` and ``expanded_graph`` allow a caller that already owns those
    artifacts (a :class:`~repro.session.QuerySession`) to inject them so the
    engine does not recompute them; a pre-built ``expanded_graph`` charges
    zero expansion time to precomputation.
    """

    name = "engine"

    def __init__(
        self,
        graph: DataGraph,
        budget: Optional[Budget] = None,
        descendant_mode: str = "closure",
        closure: Optional[ClosureSource] = None,
        expanded_graph: Optional[ExpandedGraphSource] = None,
    ) -> None:
        self.graph = graph
        self.budget = budget or Budget()
        self.descendant_mode = descendant_mode
        self._closure_source = closure
        self._expanded_source = expanded_graph if callable(expanded_graph) else None
        self._expanded_graph: Optional[DataGraph] = (
            None if callable(expanded_graph) else expanded_graph
        )
        if self._expanded_graph is not None:
            self._check_expanded(self._expanded_graph)
        self._expansion_seconds = 0.0
        self._precompute_seconds = 0.0
        start = time.perf_counter()
        self._precompute(graph)
        self._precompute_seconds += time.perf_counter() - start

    # ------------------------------------------------------------------ #
    # hooks
    # ------------------------------------------------------------------ #

    def _precompute(self, graph: DataGraph) -> None:
        """Per-engine precomputation (catalogs, indexes).  Default: none."""

    def _iter_evaluate(
        self, graph: DataGraph, query: PatternQuery, budget: Budget, profile=None
    ) -> Iterator[Tuple[int, ...]]:
        """Lazily enumerate occurrences of a child-only query on ``graph``.

        The streaming primitive every engine implements.  Implementations
        yield occurrences as the search finds them, call the budget
        clock's checkpoints from their inner loops, and must *not* enforce
        ``budget.max_matches`` themselves — the :meth:`iter_matches`
        driver stops the generator at the cap, which also makes
        first-``k`` prefixes identical to a capped eager run.

        ``profile`` (EXPLAIN ANALYZE only) is a mutable dict the engine
        fills with per-operator counters: ``profile["operators"]`` must be
        a list of actual-counter dicts aligned with the children of the
        plan :meth:`_describe_plan` produces, flushed in a ``finally``
        block so an abandoned (first-``k``) run still records its work.
        Overrides that predate profiling are still called without the
        keyword (see :meth:`_call_iter_evaluate`).

        The default implementation adapts a legacy blocking
        :meth:`_evaluate` override (materialise, then replay); that path
        bypasses the streaming budget plumbing and is deprecated.
        """
        if type(self)._evaluate is Engine._evaluate:
            raise NotImplementedError(
                f"{type(self).__name__} must implement _iter_evaluate "
                "(preferred) or the legacy _evaluate"
            )
        warnings.warn(
            f"{type(self).__name__} only implements the blocking _evaluate; "
            "occurrences are fully materialised before the first one is "
            "yielded, bypassing the streaming budget plumbing. "
            "Implement _iter_evaluate instead.",
            DeprecationWarning,
            stacklevel=3,
        )
        yield from self._evaluate(graph, query, budget)

    def _evaluate(
        self, graph: DataGraph, query: PatternQuery, budget: Budget
    ) -> List[Tuple[int, ...]]:
        """Eagerly enumerate occurrences (legacy hook).

        Kept for backwards compatibility with pre-streaming subclasses;
        the default drains :meth:`_iter_evaluate` under the match cap.
        """
        clock = budget.start_clock()
        occurrences: List[Tuple[int, ...]] = []
        for occurrence in self._iter_evaluate(graph, query, budget):
            occurrences.append(occurrence)
            if clock.check_matches(len(occurrences)):
                break
        return occurrences

    def _call_iter_evaluate(
        self, graph: DataGraph, query: PatternQuery, budget: Budget, profile=None
    ) -> Iterator[Tuple[int, ...]]:
        """Invoke :meth:`_iter_evaluate`, tolerating pre-profiling overrides.

        Third-party subclasses registered before the ``profile`` keyword
        existed are called with the original three-argument shape (a
        generator function raises ``TypeError`` at call time, before any
        iteration, so the fallback is safe).
        """
        if profile is None:
            return self._iter_evaluate(graph, query, budget)
        try:
            return self._iter_evaluate(graph, query, budget, profile=profile)
        except TypeError:
            return self._iter_evaluate(graph, query, budget)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    @property
    def precompute_seconds(self) -> float:
        """Time spent on engine precomputation (catalog / index building)."""
        return self._precompute_seconds

    def _check_expanded(self, expanded: DataGraph) -> DataGraph:
        """Reject an injected expanded graph built for a different graph state.

        A shared cache may outlive a graph update; comparing node count and
        the monotone data version catches a stale injection before it
        silently produces answers for the wrong graph.  Raises
        :class:`~repro.exceptions.StaleIndexError` naming both versions.
        """
        if expanded.num_nodes != self.graph.num_nodes or getattr(
            expanded, "version", 0
        ) != getattr(self.graph, "version", 0):
            raise StaleIndexError(
                engine=self.name,
                artifact="expanded graph",
                expected_version=getattr(self.graph, "version", 0),
                found_version=getattr(expanded, "version", 0),
                detail=(
                    f"expanded graph has {expanded.num_nodes} nodes, "
                    f"data graph has {self.graph.num_nodes}"
                ),
            )
        return expanded

    def _graph_for(self, query: PatternQuery) -> Tuple[DataGraph, PatternQuery]:
        if not query.descendant_edges():
            return self.graph, query
        if self.descendant_mode == "reject":
            raise EngineError(
                f"{self.name} only supports child-only (edge-to-edge) queries"
            )
        if self._expanded_graph is None:
            if self._expanded_source is not None:
                self._expanded_graph = self._check_expanded(self._expanded_source())
            else:
                source = self._closure_source
                closure = source() if callable(source) else source
                self._expanded_graph, self._expansion_seconds = expand_descendant_edges(
                    self.graph, closure=closure
                )
                self._precompute_seconds += self._expansion_seconds
        rewritten_edges = [
            PatternEdge(edge.source, edge.target, EdgeType.CHILD) for edge in query.edges()
        ]
        return self._expanded_graph, query.with_edges(rewritten_edges, name=query.name)

    def iter_matches(
        self, query: PatternQuery, budget: Optional[Budget] = None, profile=None
    ) -> Iterator[Tuple[int, ...]]:
        """Lazily enumerate occurrences of ``query`` (the streaming primitive).

        A generator: nothing is evaluated until the first ``next()``.
        Yields occurrence tuples (indexed by query-node id) as the engine's
        search finds them, stops at ``budget.max_matches``, and raises
        :class:`~repro.exceptions.TimeoutExceeded` /
        :class:`~repro.exceptions.QueryCancelled` /
        :class:`~repro.exceptions.MemoryBudgetExceeded` when the budget is
        exhausted mid-enumeration.  Closing the generator (or breaking out
        of a ``for`` loop that owns it) stops the search immediately.

        ``profile`` (EXPLAIN ANALYZE) threads the per-operator counter dict
        through to :meth:`_iter_evaluate`; the driver itself records the
        rows it yielded as ``profile["root_rows"]`` in a ``finally`` block,
        so the root operator's actual count reconciles exactly with the
        report's ``num_matches`` even when the match cap or the consumer
        truncates the stream.

        Wrap with :meth:`match_stream` for exception-free consumption with
        running counters and report finalisation.
        """
        budget = budget or self.budget
        graph, rewritten = self._graph_for(query)
        clock = budget.start_clock()
        count = 0
        try:
            for occurrence in self._call_iter_evaluate(graph, rewritten, budget, profile):
                clock.check_time()
                yield occurrence
                count += 1
                if clock.check_matches(count):
                    return
        finally:
            if profile is not None:
                profile["root_rows"] = count

    def match_stream(
        self,
        query: PatternQuery,
        budget: Optional[Budget] = None,
        keep_occurrences: bool = True,
    ) -> MatchStream:
        """An incremental evaluation of ``query`` as a :class:`MatchStream`.

        Budget exhaustion terminates the stream with the corresponding
        :class:`~repro.matching.result.MatchStatus` instead of raising;
        ``stream.report()`` finalises into the same :class:`MatchReport`
        the eager :meth:`match` would have produced.
        """
        budget = budget or self.budget
        info: Dict[str, object] = {
            "extra": {"precompute_seconds": self._precompute_seconds}
        }
        return MatchStream(
            self.iter_matches(query, budget=budget),
            query_name=query.name,
            algorithm=self.name,
            budget=budget,
            info=info,
            keep_occurrences=keep_occurrences,
        )

    def match(self, query: PatternQuery, budget: Optional[Budget] = None) -> EngineResult:
        """Evaluate ``query`` and wrap the outcome in an :class:`EngineResult`.

        A thin driver over :meth:`iter_matches`: the stream is drained to
        completion and finalised into a :class:`MatchReport`.
        """
        budget = budget or self.budget
        start = time.perf_counter()
        report = self.match_stream(query, budget=budget).report()
        if not report.status.is_solved():
            # Match the historical eager shape: a failed evaluation reports
            # its elapsed time under matching_seconds with no occurrences.
            report = MatchReport(
                query_name=query.name,
                algorithm=self.name,
                status=report.status,
                matching_seconds=time.perf_counter() - start,
            )
        return EngineResult(report=report, precompute_seconds=self._precompute_seconds)

    def count(self, query: PatternQuery, budget: Optional[Budget] = None) -> int:
        """Number of occurrences of ``query``, without materialising them.

        Routed through :meth:`iter_matches` with a counting drain, so
        ``max_matches`` / deadline budgets short-circuit the enumeration
        without ever building the occurrence list.  A non-solved
        termination (timeout, cancellation, memory budget) stops the
        drain and returns the matches counted *so far*; use :meth:`match`
        when the terminal status matters.
        """
        stream = self.match_stream(query, budget=budget, keep_occurrences=False)
        for _ in stream:
            pass
        return stream.num_yielded

    # ------------------------------------------------------------------ #
    # EXPLAIN / EXPLAIN ANALYZE
    # ------------------------------------------------------------------ #

    def _describe_plan(self, graph: DataGraph, query: PatternQuery) -> QueryPlan:
        """The engine's operator tree for ``query`` (plan-only skeleton).

        The default is a single opaque evaluate operator; engines with a
        real planner override this to expose their operator pipeline with
        per-operator cardinality estimates.  The children must be listed in
        the same order as the actual-counter dicts the engine's
        :meth:`_iter_evaluate` flushes into ``profile["operators"]``.
        """
        return QueryPlan(
            query=query.name or "query",
            engine=self.name,
            analyze=False,
            root=PlanOperator(op="evaluate", label=f"Evaluate [{self.name}]"),
        )

    def explain(
        self,
        query: PatternQuery,
        analyze: bool = False,
        budget: Optional[Budget] = None,
    ) -> QueryPlan:
        """The engine's :class:`QueryPlan` for ``query``.

        Plan-only mode never enumerates (it runs only the engine's planner
        over precomputed statistics).  ``analyze=True`` executes the query
        under ``budget`` with per-operator counters threaded through
        :meth:`iter_matches` and attaches the actuals; the root operator's
        actual row count equals the ``num_matches`` of the run's
        :class:`MatchReport`.
        """
        budget = budget or self.budget
        graph, rewritten = self._graph_for(query)
        plan = self._describe_plan(graph, rewritten)
        plan.query = query.name or "query"
        plan.analyze = analyze
        expanded = graph is not self.graph
        plan.artifacts.setdefault("expanded_graph", expanded)
        if expanded:
            plan.artifacts.setdefault("descendant_mode", self.descendant_mode)
        if not analyze:
            return plan
        profile: Dict[str, object] = {}
        info: Dict[str, object] = {
            "extra": {"precompute_seconds": self._precompute_seconds}
        }
        stream = MatchStream(
            self.iter_matches(query, budget=budget, profile=profile),
            query_name=query.name,
            algorithm=self.name,
            budget=budget,
            info=info,
            keep_occurrences=False,
        )
        for _ in stream:
            pass
        report = stream.report()
        operators = profile.get("operators") or []
        for child, actual in zip(plan.root.children, operators):
            child.actual = dict(actual)
        plan.root.actual = {"rows": profile.get("root_rows", report.num_matches)}
        plan.execution = {
            "status": report.status.value,
            "rows": report.num_matches,
            "matching_seconds": report.matching_seconds,
            "enumeration_seconds": report.enumeration_seconds,
        }
        return plan
