"""Simplified in-Python stand-ins for the query engines the paper compares to.

The paper benchmarks GM against four external systems — EmptyHeaded (EH),
GraphflowDB (GF), RapidMatch (RM) and Neo4j — none of which can be bundled
here.  Each engine below reproduces the *algorithmic idea* that drives the
corresponding system's behaviour in the paper's experiments:

* :class:`BinaryJoinEngine` (Neo4j-like): per-edge scans combined with
  Selinger-style binary joins, no worst-case-optimal joins, no reachability
  index (descendant edges require an explicit transitive-closure expansion);
* :class:`RelationalEngine` (EmptyHeaded-like): materialises every edge
  relation up front (the expensive "precomputation step"), then hash-joins;
* :class:`WCOJEngine` (GraphflowDB-like): builds a catalog of subgraph
  cardinalities per label pattern (expensive precomputation, grows with the
  label alphabet) and then runs node-at-a-time worst-case-optimal joins
  directly on the data graph;
* :class:`TreeDecompEngine` (RapidMatch-like): spanning-tree candidate
  filtering followed by WCO-style enumeration with a density-driven order.

All four only support edge-to-edge (child) semantics natively, mirroring the
original systems; descendant edges must be rewritten through a transitive
closure (see :func:`expand_descendant_edges`), which is exactly the
experimental setup of Fig. 18.

Execution is incremental-first: every engine implements a lazy
``_iter_evaluate`` generator, :meth:`Engine.iter_matches` is the public
streaming primitive (GF and RM yield each embedding as the innermost
extension completes; EH and Neo4j stream their projection tails over
materialised join pipelines), and ``match()`` / ``count()`` are thin
drivers that drain the iterator.
"""

from repro.engines.base import Engine, EngineResult, expand_descendant_edges
from repro.engines.binary_join import BinaryJoinEngine
from repro.engines.relational import RelationalEngine
from repro.engines.wcoj import WCOJEngine, Catalog
from repro.engines.treedecomp import TreeDecompEngine

__all__ = [
    "Engine",
    "EngineResult",
    "expand_descendant_edges",
    "BinaryJoinEngine",
    "RelationalEngine",
    "WCOJEngine",
    "Catalog",
    "TreeDecompEngine",
]
